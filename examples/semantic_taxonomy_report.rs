//! The full taxonomy, live: run all three semantic types plus the
//! traditional baseline on the same captured frames and print a Table
//! 1-style comparison — including the text pipeline's actual "text".
//!
//! Run with: `cargo run --release --example semantic_taxonomy_report`

use holo_gpu::Device;
use semholo::image::{ImageConfig, ImagePipeline};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{Content, SceneSource, SemHoloConfig, SemanticPipeline};

fn main() {
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.5);
    let device = Device::a100();

    let mut pipelines: Vec<(&str, Box<dyn SemanticPipeline>)> = vec![
        (
            "keypoint",
            Box::new(KeypointPipeline::new(KeypointConfig { resolution: 128, ..Default::default() }, 42)),
        ),
        (
            "image",
            Box::new(ImagePipeline::new(ImageConfig { pretrain_steps: 150, ..Default::default() }, 42)),
        ),
        ("text", Box::new(TextPipeline::new(TextConfig::default(), 42))),
        ("traditional", Box::new(TraditionalPipeline::new(MeshWire::Compressed, 14))),
    ];

    println!("taxonomy of holographic-communication semantics (paper Table 1), measured:\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>20} {:>12}",
        "semantics", "payload(B)", "extract", "reconstruct", "quality", "output"
    );
    for (name, pipeline) in &mut pipelines {
        // Warm up stateful pipelines on frame 0 (codebook / NeRF cold start).
        let warm = scene.frame(0);
        if let Ok(enc) = pipeline.encode(&warm) {
            let _ = pipeline.decode(&enc.payload);
        }
        let frame = scene.frame(5);
        let enc = pipeline.encode(&frame).expect("encode");
        let extract = enc.extract.time_on(&device).expect("extract");
        let rec = pipeline.decode(&enc.payload).expect("decode");
        let recon = rec.recon.time_on(&device).expect("recon");
        let q = pipeline.quality(&frame, &rec.content);
        let quality = match (q.chamfer, q.psnr_db) {
            (Some(c), _) => format!("{:.1} mm chamfer", c * 1000.0),
            (None, Some(p)) => format!("{p:.1} dB PSNR"),
            _ => "-".into(),
        };
        println!(
            "{:>12} {:>12} {:>11.1} ms {:>11.1} ms {:>20} {:>12}",
            name,
            enc.payload.len(),
            extract.as_secs_f64() * 1e3,
            recon.as_secs_f64() * 1e3,
            quality,
            rec.content.format_name()
        );
    }

    // Show what the "text" actually looks like on the wire.
    println!("\na fragment of the text channel (VQ tokens rendered as pseudo-words):");
    let mut text_pipe = TextPipeline::new(TextConfig { use_delta: false, ..Default::default() }, 42);
    let frame = scene.frame(3);
    let _ = text_pipe.encode(&frame).expect("cold start");
    let enc = text_pipe.encode(&frame).unwrap();
    if let Ok(rec) = text_pipe.decode(&enc.payload) {
        if let Content::Cloud(cloud) = &rec.content {
            let caption = {
                // Re-derive the caption for display.
                use holo_textsem::caption::Captioner;
                use holo_textsem::cells::CellPartition;
                use holo_textsem::vq::Codebook;
                let partition = CellPartition::body_volume(16);
                let features: Vec<_> =
                    partition.features(&frame.captured_cloud().points).into_iter().map(|(_, f)| f).collect();
                let mut rng = holo_math::Pcg32::new(1);
                let codebook = Codebook::train(&features, 128, 6, &mut rng);
                Captioner { partition, codebook }.caption(&frame.captured_cloud().points)
            };
            let text = caption.as_text();
            let words: Vec<&str> = text.split(' ').take(12).collect::<Vec<_>>();
            println!("  \"{} ...\" ({} tokens total)", words.join(" "), caption.len());
            println!("  decoded back into a {}-point cloud at the receiver", cloud.len());
        }
    }
}
