//! Unequal protection head-to-head: weighted vs uniform at an equal
//! redundancy budget.
//!
//! Runs the UEP sweep (every non-clean stream plan plus the
//! queue-pressure `burst5_squeeze`) twice per plan — once with the
//! uniform policy (same FEC stripe and retry schedule for every
//! frame) and once with the importance-weighted policy (keyframes
//! duplicated, deltas striped wider, tails unprotected, doomed
//! retries abandoned) — and writes the canonical `UEP_report.json`
//! dominance document. Both policies spend *exactly* the same parity
//! frames and scheduled retries; only the allocation differs.
//!
//! Run with: `cargo run --release --example uep_comparison`

use holo_chaos::{run_uep_scenarios, uep_report};

fn main() {
    // SEMHOLO_EXAMPLE_QUICK is deliberately ignored: the whole sweep
    // is a few ms of virtual-time simulation, and the quick and full
    // artifacts must be the same bytes for scripts/verify.sh's
    // double-run comparison.
    let seed = 42;
    let cells = run_uep_scenarios(seed);

    println!("UEP sweep: {} plans x 2 policies (seed {seed})\n", cells.len() / 2);
    println!(
        "{:<20} {:>8} {:>8} {:>6} {:>10} {:>6} {:>8} {:>8}",
        "plan", "policy", "usable", "late", "abandoned", "lost", "fec_fix", "retx_fix"
    );
    for cell in &cells {
        println!(
            "{:<20} {:>8} {:>5}/{:<3} {:>5} {:>10} {:>6} {:>8} {:>8}",
            cell.plan,
            cell.policy,
            cell.usable,
            cell.frames,
            cell.late,
            cell.abandoned,
            cell.lost,
            cell.recovered_fec,
            cell.recovered_retx
        );
    }

    let spec = holo_obs::SloSpec::telepresence();
    let doc = uep_report(seed, &cells, &spec);
    println!("\nper-plan verdicts ({}):", spec.name);
    for cell in doc.get("cells").and_then(|c| c.as_array()).into_iter().flatten() {
        let plan = cell.get("plan").and_then(|p| p.as_str()).unwrap_or("?");
        let strict = matches!(
            cell.get("strictly_better"),
            Some(holo_runtime::ser::JsonValue::Bool(true))
        );
        println!(
            "  {:<20} {}",
            plan,
            if strict { "weighted strictly better" } else { "weighted >= uniform" }
        );
    }
    let json = doc.render();
    std::fs::write("UEP_report.json", &json).expect("write UEP_report.json");
    println!(
        "\nweighted dominates: {:?}, strict wins: {:?}",
        doc.get("dominates"),
        doc.get("strict_wins")
    );
    println!("wrote UEP_report.json ({} bytes, canonical)", json.len());
    println!("same seed, same bytes: re-running this example reproduces the file exactly.");
}
