//! The amortization frontier: when does a pre-built Gaussian avatar
//! pay for itself?
//!
//! Runs the gaussian, mesh, and keypoint tiers over the same captured
//! clip, measures each tier's startup bytes and steady-state rate, and
//! computes the break-even call duration — the point beyond which the
//! gaussian tier's big one-time prebuild blob plus tiny per-frame
//! updates undercut the rival's total wire bytes. Two canonical
//! artifacts come out:
//!
//! - `BENCH_gaussian_amortization.json` — the measured cost model in
//!   bench-entry schema, so `scripts/bench_gate.sh` can regression-gate
//!   it. Every value is derived from encoded byte counts, never from
//!   wall clocks, so the file is byte-identical across runs and thread
//!   counts.
//! - `GAUSSIAN_frontier.json` — break-even duration vs mesh and
//!   keypoints as a function of prebuild size and update rate.
//!
//! Run with: `cargo run --release --example gaussian_amortization`

use holo_gaussian::{break_even_seconds, FrontierReport, GaussianPipeline, TierCost};
use holo_runtime::bench::BenchResult;
use holo_runtime::ser::{JsonValue, ToJson};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

const FPS: f64 = 30.0;

/// Mean steady-state payload bytes per frame, skipping the cold-start
/// frame (codebook / prebuild work happens there).
fn steady_payload(pipeline: &mut dyn SemanticPipeline, scene: &SceneSource, frames: usize) -> f64 {
    let mut total = 0usize;
    for i in 1..frames {
        total += pipeline.encode(&scene.frame(i)).expect("encode").payload.len();
    }
    total as f64 / (frames - 1) as f64
}

/// One deterministic bench entry: the measured value rides the `_ns`
/// fields (bytes, bps, or nanoseconds — see the entry name), with a
/// flat distribution since nothing was sampled from a clock.
fn entry(name: &str, value: f64) -> BenchResult {
    BenchResult {
        group: "gaussian_amortization".into(),
        name: name.into(),
        samples: 1,
        iters_per_sample: 1,
        median_ns: value,
        p95_ns: value,
        mean_ns: value,
        min_ns: value,
        max_ns: value,
    }
}

fn main() {
    let config =
        SemHoloConfig { capture_resolution: (48, 36), camera_count: 2, ..Default::default() };
    let scene = SceneSource::new(&config, 0.5);
    let frames = 15;

    // Gaussian tier: the first encode runs the offline prebuild; every
    // later frame is a tiny update. One payload per frame — the update
    // stream never skips, so the usable-frame rate matches the rivals'.
    let mut gaussian = GaussianPipeline::default();
    let _cold = gaussian.encode(&scene.frame(0)).expect("prebuild");
    let g_payload = steady_payload(&mut gaussian, &scene, frames);
    let prebuild = gaussian.prebuild_bytes();

    // Rival tiers ship zero startup bytes and pay per frame forever.
    let mut mesh = TraditionalPipeline::new(MeshWire::Compressed, 14);
    let _cold = mesh.encode(&scene.frame(0)).expect("mesh warmup");
    let m_payload = steady_payload(&mut mesh, &scene, frames);
    let mut keypoints =
        KeypointPipeline::new(KeypointConfig { resolution: 64, ..Default::default() }, 42);
    let _cold = keypoints.encode(&scene.frame(0)).expect("keypoint warmup");
    let k_payload = steady_payload(&mut keypoints, &scene, frames);

    let tier = |name: &str, prebuild_bytes: u64, payload: f64| TierCost {
        name: name.into(),
        prebuild_bytes,
        steady_bps: payload * 8.0 * FPS,
    };
    let g = tier("gaussian", prebuild as u64, g_payload);
    let m = tier("mesh", 0, m_payload);
    let k = tier("keypoints", 0, k_payload);

    println!("tier cost models ({frames} frames at {FPS:.0} fps, {}x{} / {} cams):\n",
        config.capture_resolution.0, config.capture_resolution.1, config.camera_count);
    println!("{:>12} {:>16} {:>14}", "tier", "prebuild(B)", "steady(kbps)");
    for t in [&m, &g, &k] {
        println!("{:>12} {:>16} {:>14.1}", t.name, t.prebuild_bytes, t.steady_bps / 1e3);
    }

    let be_mesh = break_even_seconds(&g, &m);
    let be_keypoints = break_even_seconds(&g, &k);
    println!("\nbreak-even vs mesh:      {be_mesh:.2} s");
    println!("break-even vs keypoints: {be_keypoints:.2} s");

    // The honesty checks behind the headline number: short calls favor
    // the rival, long calls favor the amortized tier.
    assert!(be_mesh > 0.0, "gaussian must cost something up front");
    assert!(g.steady_bps < m.steady_bps, "updates must undercut mesh steady-state");
    assert!(
        g.total_bytes(be_mesh * 0.5) > m.total_bytes(be_mesh * 0.5),
        "short calls must honestly favor mesh"
    );
    assert!(
        g.total_bytes(be_mesh * 2.0) < m.total_bytes(be_mesh * 2.0),
        "long calls must favor the amortized tier"
    );
    println!(
        "a {:.0} s call: gaussian {:.0} KB total vs mesh {:.0} KB total",
        be_mesh * 2.0,
        g.total_bytes(be_mesh * 2.0) / 1e3,
        m.total_bytes(be_mesh * 2.0) / 1e3
    );

    // The frontier: what if the prebuild were bigger (denser rigs) or
    // the update stream richer? Fixed grid + the measured point.
    let sizes = [prebuild as u64, 100_000, 1_000_000, 10_000_000];
    let rates = [g.steady_bps, 50e3, 100e3, 200e3];
    let report = FrontierReport::sweep(vec![m.clone(), g.clone(), k.clone()], &sizes, &rates);
    std::fs::write("GAUSSIAN_frontier.json", report.to_json().render() + "\n")
        .expect("write GAUSSIAN_frontier.json");
    println!(
        "\nwrote GAUSSIAN_frontier.json ({} cells over {} prebuild sizes x {} update rates)",
        report.grid.len(),
        sizes.len(),
        rates.len()
    );

    // The bench artifact: byte-derived values in bench-entry schema so
    // the regression gate watches codec efficiency drift. `*_ns` carries
    // bytes / bps / break-even-nanoseconds per the entry name.
    let results = vec![
        entry("prebuild_bytes", prebuild as f64),
        entry("update_payload_bytes", g_payload),
        entry("mesh_payload_bytes", m_payload),
        entry("keypoint_payload_bytes", k_payload),
        entry("gaussian_steady_bps", g.steady_bps),
        entry("break_even_vs_mesh_ns", be_mesh * 1e9),
        entry("break_even_vs_keypoints_ns", be_keypoints * 1e9),
    ];
    let doc = JsonValue::obj([
        ("bench", "gaussian_amortization".to_json()),
        ("results", results.to_json()),
    ]);
    std::fs::write("BENCH_gaussian_amortization.json", doc.render() + "\n")
        .expect("write BENCH_gaussian_amortization.json");
    println!("wrote BENCH_gaussian_amortization.json (canonical: byte-derived, no wall clocks)");
}
