//! Telesurgery: latency-critical telepresence with a foveated hybrid.
//!
//! The paper names telesurgery as a headline use case of live holographic
//! communication — the regime where the 100 ms end-to-end budget is
//! non-negotiable and the surgeon's gaze concentrates on a small working
//! region. That is exactly the profile the §3.1 foveated hybrid targets:
//! ship the true mesh only where the surgeon looks, keypoints elsewhere.
//!
//! This example sweeps the foveal radius over an LTE-like variable link
//! and shows the bandwidth/quality/latency triangle, with saccade
//! landing prediction keeping the fovea ahead of the surgeon's eye.
//!
//! Run with: `cargo run --release --example telesurgery`

use holo_net::trace::BandwidthTrace;
use semholo::foveated::{FoveatedConfig, FoveatedPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{SceneSource, SemHoloConfig};

fn main() {
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 1.0);
    // SEMHOLO_EXAMPLE_QUICK=1 trims the slice for CI smoke runs.
    let frames = if std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok() { 5 } else { 12 };

    println!("telesurgery scenario: foveated hybrid over a variable LTE-like link\n");
    println!(
        "{:>12} {:>14} {:>12} {:>16} {:>18}",
        "fovea(deg)", "payload(KB)", "bw(Mbps)", "delivered", "foveal chamfer"
    );
    for radius in [6.0f32, 12.0, 20.0, 30.0] {
        let mut pipeline = FoveatedPipeline::new(
            FoveatedConfig {
                foveal_radius_deg: radius,
                peripheral_resolution: 48,
                predict_saccades: true,
                ..Default::default()
            },
            2.0,
            42,
        );
        let mut session = Session::new(SessionConfig {
            trace: BandwidthTrace::lte(3),
            quality_every: 4,
            ..Default::default()
        });
        let report = session.run(&mut pipeline, &scene, frames).expect("session");
        println!(
            "{:>12.0} {:>14.1} {:>12.2} {:>13}/{:<2} {:>15}",
            radius,
            report.payload.mean() / 1024.0,
            report.required_bps / 1e6,
            report.delivered,
            report.frames.len(),
            report
                .mean_chamfer
                .map(|c| format!("{:.1} mm", c * 1000.0))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!();
    println!("larger foveae buy quality where the surgeon looks at the cost of bandwidth;");
    println!("the periphery rides on 1.6 KB keypoint frames either way (paper ablation A).");
}
