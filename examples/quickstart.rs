//! Quickstart: one frame through the keypoint-semantics pipeline.
//!
//! Builds a synthetic talking participant, extracts the 1.91 KB pose
//! payload, ships it over a simulated 25 Mbps broadband link, and
//! reconstructs the hologram at the receiver — printing the numbers the
//! paper's argument turns on (payload size, bandwidth, reconstruction
//! cost, quality).
//!
//! Run with: `cargo run --release --example quickstart`

use holo_gpu::Device;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{Content, SceneSource, SemHoloConfig, SemanticPipeline};

fn main() {
    // 1. A scene: synthetic participant captured by a virtual RGB-D rig.
    let config = SemHoloConfig::default();
    println!("setting up scene (motion: {:?}, {} fps)...", config.motion, config.fps);
    let scene = SceneSource::new(&config, 1.0);
    let frame = scene.frame(10);

    // 2. Sender: detect keypoints, fit SMPL-X parameters, compress.
    let mut pipeline = KeypointPipeline::new(
        KeypointConfig { resolution: 128, ..Default::default() },
        42,
    );
    let encoded = pipeline.encode(&frame).expect("extraction");
    println!(
        "semantic payload: {} bytes ({:.2} KB; raw pose payload is {} bytes = 1.91 KB)",
        encoded.payload.len(),
        encoded.payload.len() as f64 / 1024.0,
        holo_body::params::PosePayload::WIRE_SIZE,
    );
    println!(
        "bandwidth at 30 FPS: {:.2} Mbps (the raw mesh would need {:.1} Mbps)",
        encoded.payload.len() as f64 * 8.0 * 30.0 / 1e6,
        frame.posed_mesh().raw_size_bytes() as f64 * 8.0 * 30.0 / 1e6,
    );

    // 3. Receiver: reconstruct the body from the payload.
    let reconstructed = pipeline.decode(&encoded.payload).expect("reconstruction");
    let Content::Mesh(mesh) = &reconstructed.content else { unreachable!() };
    println!("reconstructed mesh: {} vertices, {} faces", mesh.vertex_count(), mesh.face_count());

    // 4. The catch (paper §4): reconstruction cost on real hardware.
    let a100 = Device::a100();
    let recon = reconstructed.recon.time_on(&a100).expect("A100 fits");
    println!(
        "modeled X-Avatar-class reconstruction on an A100: {:.0} ms -> {:.2} FPS (paper: <3 FPS)",
        recon.as_secs_f64() * 1e3,
        1.0 / recon.as_secs_f64()
    );

    // 5. Quality against the ground-truth capture.
    let q = pipeline.quality(&frame, &reconstructed.content);
    println!(
        "quality vs ground truth: {:.1} mm chamfer, f-score {:.2} (cloth detail is unrecoverable from keypoints)",
        q.chamfer.unwrap() * 1000.0,
        q.f_score.unwrap()
    );

    // 6. Observability: run a short session with the holo-trace recorder
    // on and show where the milliseconds go. Every span is stamped in
    // virtual SimTime, so TRACE_quickstart.json is byte-identical across
    // runs of the same seed (open it in chrome://tracing or Perfetto).
    let frames = if std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok() { 5 } else { 30 };
    let mut session = Session::new(SessionConfig::default());
    let trace_path = std::path::Path::new("TRACE_quickstart.json");
    let (report, trace) = session
        .run_traced(&mut pipeline, &scene, frames, trace_path)
        .expect("traced session");
    println!(
        "\ntraced session: {}/{frames} frames delivered, mean e2e {:.1} ms",
        report.delivered,
        report.e2e_ms.mean()
    );
    println!("{}", trace.table());
    println!("chrome://tracing trace written to {}", trace_path.display());
}
