//! Fleet capacity: how many rooms does a sharded SFU fleet sustain,
//! and which resource breaks first?
//!
//! Runs the holo-fleet monotone capacity search over growing node
//! counts, prints the rooms/subscribers curve with first-bottleneck
//! attribution, then writes the definitive measurement for the largest
//! fleet to `FLEET_capacity.json` — canonical bytes, byte-identical
//! across reruns and `SEMHOLO_THREADS` settings. A representative
//! spanning fleet is then traced, its latency attributed stage by
//! stage (`holo-obs`), and the SLO verdicts written to
//! `SLO_fleet.json` with the same byte-identity guarantee.
//!
//! Run with: `cargo run --release --example fleet_capacity`
//! (`SEMHOLO_EXAMPLE_QUICK=1` shrinks frames and the search ceiling.)

use holo_fleet::{fleet_capacity, FleetCapacityConfig, FleetTopology, PolicyKind};
use holo_runtime::ser::ToJson;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

fn main() {
    let quick = std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok();
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.5);
    let make_pipeline = |room: usize| -> Box<dyn SemanticPipeline> {
        Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 32, ..Default::default() },
            room as u64,
        ))
    };

    // Modest per-node egress so the capacity search converges in the
    // tens of rooms: the point is the curve's shape and the bottleneck
    // labels, not datacenter-scale numbers.
    let egress_bps = 60e6;
    let cascade_bps = 400e6;
    let frames = if quick { 3 } else { 5 };
    let max_rooms = 256;

    println!("fleet capacity, keypoint semantics, {egress_bps:.0e} bps node egress");
    println!("(least-loaded placement, rooms of 4, 100 Mbps access links)\n");
    println!(
        "{:>6} {:>8} {:>13} {:>13} {:>22} {:>14}",
        "nodes", "regions", "max rooms", "subscribers", "first bottleneck", "cascade saved"
    );

    let mut last = None;
    let mut prev: Option<(usize, usize)> = None;
    for (regions, nodes_per_region) in [(1usize, 1usize), (2, 1), (2, 2), (2, 4)] {
        let nodes = regions * nodes_per_region;
        let cfg = FleetCapacityConfig {
            topology: FleetTopology::uniform(
                regions,
                nodes_per_region,
                egress_bps,
                cascade_bps,
                1.0,
                20.0,
            ),
            room_size: 4,
            access_bps: 100e6,
            frames,
            seed: 42,
            policy: PolicyKind::LeastLoaded,
            max_rooms,
            min_usable_rate: 0.9,
        };
        let m = fleet_capacity(&cfg, &scene, &make_pipeline).expect("fleet capacity");
        // Cascade savings show up when several subscribers of one
        // stream share a remote node (copies collapse); spread-out
        // fleets honestly report 0%.
        let saved = m.report.as_ref().map_or(0.0, |r| r.cascade_savings());
        println!(
            "{:>6} {:>8} {:>13} {:>13} {:>22} {:>13.0}%",
            nodes,
            regions,
            m.max_rooms,
            m.total_subscribers,
            m.bottleneck,
            saved * 100.0
        );
        if let Some((prev_nodes, prev_rooms)) = prev {
            assert!(
                m.max_rooms > prev_rooms,
                "{nodes} nodes must sustain more rooms than {prev_nodes} ({} vs {prev_rooms})",
                m.max_rooms
            );
        }
        prev = Some((nodes, m.max_rooms));
        last = Some(m);
    }

    let m = last.expect("at least one fleet measured");
    if let Some(report) = &m.report {
        println!();
        println!(
            "largest fleet: {} rooms, fleet Jain fairness {:.4}, bottleneck utilization {:.2}",
            report.rooms, report.fleet_jain_fairness, report.bottleneck_utilization
        );
    }
    println!(
        "closed-form bound at the same rates: {} subscribers (placement-blind)",
        m.closed_form_subscribers
    );
    let artifact = m.to_json().render();
    std::fs::write("FLEET_capacity.json", &artifact).expect("write FLEET_capacity.json");
    println!("\nwrote FLEET_capacity.json ({} bytes, canonical)", artifact.len());

    // Judge a representative spanning fleet against the telepresence
    // SLO and attribute every delivered frame's latency to stages —
    // the cascade hop is carved out explicitly, so "how much of p99 is
    // the inter-node mesh" is a number, not a guess.
    // The amortized spec also floors the gaussian tier — skipped for
    // rooms that never route it, judged wherever prebuilt avatars ride.
    let spec = holo_obs::SloSpec::telepresence_amortized();
    let obs_cfg = holo_fleet::FleetConfig {
        topology: FleetTopology::uniform(2, 1, egress_bps, cascade_bps, 1.0, 20.0),
        rooms: vec![
            holo_fleet::RoomSpec { participant_regions: vec![0, 0, 1, 1], access_bps: 100e6 },
            holo_fleet::RoomSpec::uniform(3, 0, 100e6),
        ],
        policy: PolicyKind::LeastLoaded,
        frames,
        seed: 42,
        ..Default::default()
    };
    let obs = holo_fleet::run_fleet_observed(&obs_cfg, &scene, &make_pipeline, &spec)
        .expect("observed fleet");
    println!("\nlatency attribution (2-node spanning fleet, {} frame paths):", obs.attribution.frames);
    print!("{}", obs.attribution.table());
    println!("SLO verdicts ({}):", spec.name);
    println!("  fleet   {}", obs.fleet_verdict.line());
    for (node, v) in &obs.node_verdicts {
        println!("  node {node}  {}", v.line());
    }
    let doc = obs.to_json().render();
    std::fs::write("SLO_fleet.json", &doc).expect("write SLO_fleet.json");
    println!("wrote SLO_fleet.json ({} bytes, canonical)", doc.len());
}
