//! Remote collaboration over constrained broadband — the paper's
//! motivating telepresence scenario.
//!
//! Two sites hold a meeting over a 25 Mbps link (the U.S. broadband
//! standard the paper cites). We run the same session three ways —
//! traditional raw mesh, traditional compressed mesh, and keypoint
//! semantics — and print the session reports side by side: delivery
//! ratio, bandwidth, end-to-end latency against the 100 ms budget, and
//! QoE.
//!
//! Run with: `cargo run --release --example remote_collaboration`

use holo_net::trace::BandwidthTrace;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{qoe_score, QoeWeights, SceneSource, SemHoloConfig, SemanticPipeline};

fn run(name: &str, pipeline: &mut dyn SemanticPipeline, scene: &SceneSource, frames: usize) {
    let mut session = Session::new(SessionConfig {
        trace: BandwidthTrace::us_broadband(7),
        quality_every: 5,
        ..Default::default()
    });
    let report = session.run(pipeline, scene, frames).expect("session");
    let qoe = qoe_score(&report, &QoeWeights::default());
    println!("--- {name} ---");
    println!(
        "  delivered {}/{} frames | mean payload {:.1} KB | required bandwidth {:.2} Mbps",
        report.delivered,
        report.frames.len(),
        report.payload.mean() / 1024.0,
        report.required_bps / 1e6
    );
    if report.e2e_ms.count() > 0 {
        println!(
            "  e2e latency: mean {:.0} ms, p95 {:.0} ms | within 100 ms budget: {:.0}%",
            report.e2e_ms.mean(),
            report.e2e_ms.percentile(95.0).unwrap_or(f64::NAN),
            report.within_100ms() * 100.0
        );
    }
    println!(
        "  sustainable pipeline rate: {:.2} FPS | quality: {} | QoE score {qoe:.2}",
        report.sustainable_fps,
        report
            .mean_chamfer
            .map(|c| format!("{:.1} mm chamfer", c * 1000.0))
            .unwrap_or_else(|| "-".into()),
    );
}

fn main() {
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    println!("remote collaboration over 25 Mbps broadband, 30 FPS, 20-frame meeting slice\n");
    let scene = SceneSource::new(&config, 1.0);
    // SEMHOLO_EXAMPLE_QUICK=1 trims the slice for CI smoke runs.
    let frames = if std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok() { 6 } else { 20 };

    let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
    run("traditional, raw mesh (paper: 95 Mbps class)", &mut raw, &scene, frames);

    let mut compressed = TraditionalPipeline::new(MeshWire::Compressed, 14);
    run("traditional, Draco-class compression (paper: 10 Mbps class)", &mut compressed, &scene, frames);

    let mut keypoints =
        KeypointPipeline::new(KeypointConfig { resolution: 128, ..Default::default() }, 42);
    run("SemHolo keypoint semantics (paper: 0.3 Mbps class)", &mut keypoints, &scene, frames);

    println!();
    println!("the trade the paper documents: keypoints fit in a sliver of the link,");
    println!("but the receiver-side reconstruction becomes the bottleneck (<1-3 FPS).");
}
