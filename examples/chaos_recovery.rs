//! Surviving a lossy link: deterministic fault injection + recovery.
//!
//! Injects ~5% Gilbert–Elliott burst loss into a 50 Mbps link and
//! compares four protection strategies for a 30 fps hologram stream —
//! nothing, XOR-parity FEC(4,1), RTO-scheduled retransmission, and
//! both. Then runs the full chaos matrix (streams × plans ×
//! mechanisms, sessions, rooms with the semantic degradation ladder)
//! and writes the canonical `RESILIENCE_chaos.json` report, which is
//! byte-identical for a given seed. Every matrix cell is then judged
//! against the telepresence SLO (`holo-obs`) and the verdicts land in
//! `SLO_report.json`, equally byte-identical.
//!
//! Run with: `cargo run --release --example chaos_recovery`

use holo_chaos::{
    run_gaussian_scenarios, run_scenarios, run_stream_scenario, FaultPlan, Mechanisms,
    StreamConfig,
};

fn main() {
    let quick = std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok();
    let seed = 42;

    // 1. One faulted stream, four protection strategies.
    let cfg = StreamConfig {
        frames: if quick { 60 } else { 150 },
        ..Default::default()
    };
    let plan = FaultPlan::burst5(seed);
    println!(
        "stream: {} frames at {:.0} fps, {} B payloads on a {:.0} Mbps link",
        cfg.frames,
        cfg.fps,
        cfg.payload_bytes,
        cfg.link_bps / 1e6
    );
    println!("fault plan: {} (Gilbert-Elliott burst loss, seed {seed})\n", plan.name);
    println!(
        "{:<22} {:>9} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "mechanism", "delivered", "usable", "usable_rate", "fec_fix", "retx_fix", "overhead"
    );
    let mut baseline_usable = 0usize;
    for mech in
        [Mechanisms::baseline(), Mechanisms::fec(), Mechanisms::retransmit(), Mechanisms::full()]
    {
        let o = run_stream_scenario(&plan, &mech, &cfg);
        if o.mechanism == "baseline" {
            baseline_usable = o.usable;
        }
        println!(
            "{:<22} {:>5}/{:<3} {:>7} {:>12.3} {:>9} {:>9} {:>8.2}x",
            o.mechanism,
            o.delivered,
            o.frames,
            o.usable,
            o.usable_rate,
            o.recovered_fec,
            o.recovered_retx,
            o.overhead
        );
    }
    let full = run_stream_scenario(&plan, &Mechanisms::full(), &cfg);
    println!(
        "\nFEC(4,1)+retransmit keeps {}x the usable frames of the unprotected baseline.",
        if baseline_usable > 0 { full.usable / baseline_usable.max(1) } else { full.usable }
    );

    // 2. The full matrix: stream plans x mechanisms, session loss
    // policies, and rooms where the semantic ladder (mesh -> keypoints
    // -> text) is the resilience mechanism.
    println!("\nrunning the full chaos matrix (seed {seed})...");
    let mut report = run_scenarios(seed);
    for room in &report.rooms {
        println!(
            "room '{}': starved subscriber usable {:.3}, {} degraded frames, {} ladder downgrades, kept flowing: {}",
            room.plan,
            room.starved_usable_rate,
            room.degraded,
            room.ladder_downgrades,
            room.kept_flowing
        );
    }
    let path = std::path::Path::new("RESILIENCE_chaos.json");
    std::fs::write(path, report.render()).expect("write resilience report");
    println!(
        "\ncanonical report ({} stream cells, {} sessions, {} rooms) written to {}",
        report.streams.len(),
        report.sessions.len(),
        report.rooms.len(),
        path.display()
    );
    println!("same seed, same bytes: re-running this example reproduces the file exactly.");

    // 3. The fourth rung under fire: a bandwidth squeeze sized between
    // the gaussian and mesh floors, run once with the starved
    // subscriber holding the prebuilt avatar blob and once without.
    // (Appended after the canonical report is written, so
    // RESILIENCE_chaos.json stays byte-identical to the 3-tier era.)
    println!("\ngaussian squeeze (4-tier ladder, prebuild-gated):");
    report.gaussian = run_gaussian_scenarios(seed);
    for g in &report.gaussian {
        println!(
            "  {} ({}): gaussian {} / keypoints {} frames ({:.0}% gaussian), usable {:.3}, kept flowing: {}",
            g.plan,
            if g.prebuilt { "prebuilt" } else { "cold" },
            g.gaussian_delivered,
            g.keypoints_delivered,
            g.gaussian_fraction * 100.0,
            g.starved_usable_rate,
            g.kept_flowing
        );
    }

    // 4. Judge every matrix cell — including the gaussian cells —
    // against the amortized telepresence SLO and write the
    // machine-readable verdict document. Objectives the aggregates
    // can't answer come back skipped, never silently passed; the bytes
    // are canonical (same seed, same file).
    let spec = holo_obs::SloSpec::telepresence_amortized();
    println!("\nSLO verdicts ({}):", spec.name);
    for (cell, verdict) in report.slo_verdicts(&spec) {
        println!("  {cell:<42} {}", verdict.line());
    }
    let slo = report.slo_report(&spec).render();
    std::fs::write("SLO_report.json", &slo).expect("write SLO_report.json");
    println!("wrote SLO_report.json ({} bytes, canonical)", slo.len());
}
