//! Conference capacity: how many holographic participants fit on a
//! 25 Mbps U.S. broadband link, per semantics type?
//!
//! Two answers, side by side: the closed-form mean-bandwidth bound
//! (`core::conference`) and the empirical capacity measured by the
//! holo-conf SFU simulation, which also sees egress queueing,
//! keyframe/delta loss coupling, and latency.
//!
//! Run with: `cargo run --release --example conference_capacity`
//! (`SEMHOLO_EXAMPLE_QUICK=1` shrinks the simulated probes for CI.)

use holo_conf::{measure_max_room_size, CapacityConfig};
use semholo::conference::{compare_capacity, conference_capacity};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

fn main() {
    let quick = std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok();
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.4);
    let broadband = 25e6;

    // --- Closed-form: mean stream bits vs. access bits. ---
    let mut pipelines: Vec<(&str, Box<dyn SemanticPipeline>)> = vec![
        ("traditional raw mesh", Box::new(TraditionalPipeline::new(MeshWire::Raw, 14))),
        ("traditional compressed", Box::new(TraditionalPipeline::new(MeshWire::Compressed, 14))),
        (
            "keypoint semantics",
            Box::new(KeypointPipeline::new(KeypointConfig { resolution: 64, ..Default::default() }, 42)),
        ),
        ("text semantics", Box::new(TextPipeline::new(TextConfig::default(), 42))),
    ];

    println!("conference capacity on a 25 Mbps access link (SFU: 1 upload + N-1 downloads)\n");
    println!("closed-form bound (mean bandwidth only):");
    println!("{:>24} {:>14} {:>22}", "pipeline", "stream", "max participants");
    for (name, p) in &mut pipelines {
        // Warm up stateful pipelines.
        let _ = p.encode(&scene.frame(0));
        let report = conference_capacity(p.as_mut(), &scene, 6, 4, broadband).expect("capacity");
        println!(
            "{:>24} {:>9.2} Mbps {:>22}",
            name,
            report.stream_bps / 1e6,
            report.max_participants
        );
    }

    // --- Simulated: the holo-conf SFU room, grown until it breaks. ---
    let cap_cfg = CapacityConfig {
        frames: if quick { 3 } else { 6 },
        access_bps: broadband,
        cap: if quick { 16 } else { 48 },
        ..Default::default()
    };
    println!();
    println!(
        "simulated SFU rooms (>= {:.0}% usable frames per subscriber, cap {}):",
        cap_cfg.criteria.min_usable_rate * 100.0,
        cap_cfg.cap
    );
    println!(
        "{:>24} {:>12} {:>12} {:>12}",
        "pipeline", "closed-form", "simulated", "gap"
    );
    let mut make_kp = || -> Box<dyn SemanticPipeline> {
        Box::new(KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 42))
    };
    let m = measure_max_room_size(&scene, &cap_cfg, &mut make_kp).expect("simulated capacity");
    let cmp = compare_capacity(m.closed_form, m.max_size);
    println!(
        "{:>24} {:>12} {:>11}{} {:>11.2}x",
        "keypoint semantics",
        cmp.closed_form,
        cmp.simulated,
        if m.capped { "+" } else { " " },
        cmp.ratio
    );
    println!();
    println!("the gap is the bound's blind spot: synchronized capture bursts pile");
    println!("into the SFU's bounded egress queues, and every dropped delta poisons");
    println!("the frames chained to it — none of which mean bandwidth can see.");
    println!();
    println!("the paper's argument, quantified: semantic streams turn a 2-person");
    println!("mesh call into a room of dozens on the same U.S. broadband line.");
}
