//! Conference capacity: how many holographic participants fit on a
//! 25 Mbps U.S. broadband link, per semantics type?
//!
//! Run with: `cargo run --release --example conference_capacity`

use semholo::conference::conference_capacity;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

fn main() {
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    let scene = SceneSource::new(&config, 0.4);
    let broadband = 25e6;

    let mut pipelines: Vec<(&str, Box<dyn SemanticPipeline>)> = vec![
        ("traditional raw mesh", Box::new(TraditionalPipeline::new(MeshWire::Raw, 14))),
        ("traditional compressed", Box::new(TraditionalPipeline::new(MeshWire::Compressed, 14))),
        (
            "keypoint semantics",
            Box::new(KeypointPipeline::new(KeypointConfig { resolution: 64, ..Default::default() }, 42)),
        ),
        ("text semantics", Box::new(TextPipeline::new(TextConfig::default(), 42))),
    ];

    println!("conference capacity on a 25 Mbps access link (SFU: 1 upload + N-1 downloads)\n");
    println!("{:>24} {:>14} {:>22}", "pipeline", "stream", "max participants");
    for (name, p) in &mut pipelines {
        // Warm up stateful pipelines.
        let _ = p.encode(&scene.frame(0));
        let report = conference_capacity(p.as_mut(), &scene, 6, 4, broadband).expect("capacity");
        println!(
            "{:>24} {:>9.2} Mbps {:>22}",
            name,
            report.stream_bps / 1e6,
            report.max_participants
        );
    }
    println!();
    println!("the paper's argument, quantified: semantic streams turn a 2-person");
    println!("mesh call into a room of dozens on the same U.S. broadband line.");
}
