//! Fuzzing every wire decoder, deterministically.
//!
//! Sweeps the full `holo-fuzz` target registry — every public decoder
//! that ever sees network bytes — with 10 000 seeded mutants per
//! target (truncations, bit flips, splices, length-field inflation),
//! and enforces the three-legged hostile-input contract: never panic,
//! never allocate past the declared cap, round-trip valid input. This
//! binary installs the tracking allocator, so the cap check is real.
//!
//! Writes the canonical `FUZZ_report.json`: same seed, same bytes
//! (`scripts/verify.sh` runs it twice and byte-compares). Exits
//! non-zero on any contract violation.
//!
//! Run with: `cargo run --release --example fuzz_sweep`
//! (`SEMHOLO_EXAMPLE_QUICK=1` shrinks the sweep for CI smoke runs.)

use holo_fuzz::{run_sweep, FuzzConfig, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let quick = std::env::var("SEMHOLO_EXAMPLE_QUICK").is_ok();
    let cfg = FuzzConfig { seed: 7, mutations_per_target: if quick { 400 } else { 10_000 } };

    println!(
        "fuzz sweep: seed {}, {} mutants per target, allocation caps enforced\n",
        cfg.seed, cfg.mutations_per_target
    );
    let report = run_sweep(&cfg);

    println!(
        "{:<24} {:>7} {:>8} {:>8} {:>7} {:>12} {:>8}",
        "target", "corpus", "accepted", "rejected", "panics", "max_alloc", "over_cap"
    );
    for t in &report.targets {
        println!(
            "{:<24} {:>4}/{:<2} {:>8} {:>8} {:>7} {:>10}KB {:>8}",
            t.name,
            t.corpus_ok,
            t.corpus,
            t.accepted,
            t.rejected,
            t.panics,
            t.max_alloc / 1024,
            t.cap_exceeded,
        );
    }

    let json = report.render();
    std::fs::write("FUZZ_report.json", &json).expect("write FUZZ_report.json");
    println!("\nwrote FUZZ_report.json ({} bytes, canonical)", json.len());

    assert!(report.alloc_tracking, "tracking allocator not installed?");
    if !report.clean() {
        for t in report.targets.iter().filter(|t| !t.clean()) {
            eprintln!(
                "CONTRACT VIOLATION: {} (panics {}, over-cap {}, corpus {}/{})",
                t.name, t.panics, t.cap_exceeded, t.corpus_ok, t.corpus
            );
        }
        std::process::exit(1);
    }
    println!("hostile-input contract holds: 0 panics, 0 over-cap allocations");
}
