//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, not just the fixtures the unit tests use.

use holo_body::params::{PosePayload, SmplxParams};
use holo_body::skeleton::{Skeleton, JOINT_COUNT};
use holo_math::{Pcg32, Quat, Vec3};
use holo_runtime::check::{any, collection};
use holo_runtime::{holo_prop, prop_assert, prop_assert_eq, prop_assume};

/// Strategy: a plausible random pose from a seed.
fn pose(seed: u64) -> SmplxParams {
    let mut rng = Pcg32::new(seed);
    SmplxParams::random_plausible(&mut rng)
}

holo_prop! {
    #![cases(48)]

    /// FK must preserve bone lengths for any pose: rotations are rigid.
    fn fk_preserves_bone_lengths(seed in any::<u64>()) {
        let sk = Skeleton::neutral();
        let rest = sk.rest_positions();
        let posed = sk.forward_kinematics(&pose(seed));
        let world = posed.positions();
        for j in 1..JOINT_COUNT {
            let p = holo_body::skeleton::PARENTS[j] as usize;
            let rest_len = rest[j].distance(rest[p]);
            let posed_len = world[j].distance(world[p]);
            prop_assert!(
                (rest_len - posed_len).abs() < 1e-4,
                "joint {j}: rest {rest_len} vs posed {posed_len}"
            );
        }
    }

    /// Pose wire format: serialize-parse is the identity on joint
    /// positions (the quantity that matters downstream), for any pose.
    fn pose_payload_roundtrip_preserves_fk(seed in any::<u64>()) {
        let sk = Skeleton::neutral();
        let p = pose(seed);
        let payload = PosePayload::new(p.clone(), vec![]);
        let back = PosePayload::from_bytes(&payload.to_bytes()).unwrap();
        let a = sk.forward_kinematics(&p).positions();
        let b = sk.forward_kinematics(&back.params).positions();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((*x - *y).length() < 1e-3, "{x:?} vs {y:?}");
        }
    }

    /// Quaternion axis-angle double roundtrip is stable (no drift), for
    /// any rotation magnitude below 2 pi.
    fn axis_angle_roundtrip_stable(x in -3.0f32..3.0, y in -3.0f32..3.0, z in -3.0f32..3.0) {
        let v = Vec3::new(x, y, z);
        prop_assume!(v.length() < std::f32::consts::TAU - 0.1);
        let q1 = Quat::from_axis_angle_vec(v);
        let v2 = q1.to_axis_angle();
        let q2 = Quat::from_axis_angle_vec(v2);
        prop_assert!(q1.angle_to(q2) < 1e-3);
    }

    /// The LZMA codec is the identity composed with itself for pose
    /// payloads carrying arbitrary keypoints.
    fn lzma_identity_on_payloads(seed in any::<u64>(), n_kp in 0usize..120) {
        let mut rng = Pcg32::new(seed);
        let kps: Vec<Vec3> = (0..n_kp)
            .map(|_| Vec3::new(rng.normal(), rng.normal(), rng.normal()))
            .collect();
        let bytes = PosePayload::new(pose(seed), kps).to_bytes();
        let c = holo_compress::lzma::lzma_compress(&bytes);
        prop_assert_eq!(holo_compress::lzma::lzma_decompress(&c).unwrap(), bytes);
    }

    /// Mesh codec: face count invariant and bounded vertex error for
    /// random closed surfaces (spheres of random placement/size).
    fn mesh_codec_face_invariant(
        cx in -2.0f32..2.0,
        cy in -2.0f32..2.0,
        r in 0.2f32..1.5,
        rings in 4u32..12,
        segs in 6u32..16,
    ) {
        let mesh = holo_mesh::TriMesh::uv_sphere(Vec3::new(cx, cy, 0.0), r, rings, segs);
        let cfg = holo_compress::meshcodec::MeshCodecConfig { position_bits: 12 };
        let data = holo_compress::meshcodec::encode_mesh(&mesh, &cfg);
        let decoded = holo_compress::meshcodec::decode_mesh(&data).unwrap();
        prop_assert_eq!(decoded.face_count(), mesh.face_count());
        // Every decoded vertex within ~2 quantization steps of the sphere.
        let step = mesh.bounds().longest_side() / ((1u64 << 12) - 1) as f32;
        for v in &decoded.vertices {
            let err = ((*v - Vec3::new(cx, cy, 0.0)).length() - r).abs();
            prop_assert!(err < step * 4.0 + 1e-4, "radius error {err} vs step {step}");
        }
    }

    /// Gaze classification output length always matches input length.
    fn gaze_classify_total(seed in any::<u64>(), secs in 1u32..8) {
        let mut synth = holo_gaze::trace::GazeSynthesizer::new(
            holo_gaze::trace::GazeTraceConfig::default(),
            seed,
        );
        let samples = synth.generate(secs as f32);
        let classes = holo_gaze::classify::classify_trace(&samples);
        prop_assert_eq!(classes.len(), samples.len());
    }

    /// Network transport conservation: every offered frame is either
    /// complete or counted dropped; wire bytes at least payload bytes.
    fn transport_accounting(seed in any::<u64>(), n in 1usize..30, size in 1usize..20_000) {
        use holo_net::link::{Link, LinkConfig};
        use holo_net::trace::BandwidthTrace;
        use holo_net::transport::{FrameTransport, LossPolicy};
        let mut rng = Pcg32::new(seed);
        let link = Link::new(
            LinkConfig { loss_rate: rng.range_f32(0.0, 0.2), ..Default::default() },
            BandwidthTrace::Constant { bps: rng.range_f32(1e6, 100e6) as f64 },
            seed,
        );
        let mut t = FrameTransport::new(link, LossPolicy::RetransmitOnce);
        let mut complete = 0u64;
        for i in 0..n {
            let r = t.send_frame(
                holo_runtime::bytes::Bytes::from(vec![0u8; size]),
                holo_net::SimTime::from_millis(i as u64 * 33),
            );
            if r.complete {
                complete += 1;
                prop_assert!(r.latency.is_some());
            }
            prop_assert!(r.wire_bytes as usize >= size);
        }
        prop_assert_eq!(complete, t.receiver.frames_complete);
        prop_assert_eq!(
            t.receiver.frames_complete + t.receiver.frames_dropped,
            n as u64
        );
    }

    /// Streaming summary statistics agree with direct computation.
    fn summary_matches_direct(values in collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = holo_math::Summary::new();
        for &v in &values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.min(), min);
    }
}

/// Non-property cross-crate invariant: the capture rig's fused cloud is
/// always inside the (expanded) body bounds for arbitrary clip frames.
#[test]
fn fused_clouds_stay_inside_body_bounds() {
    use holo_body::surface::{BodySdf, SurfaceDetail};
    let config = semholo::SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    let scene = semholo::SceneSource::new(&config, 0.3);
    for frame in scene.frames(4) {
        let sdf = BodySdf::from_pose(&Skeleton::neutral(), &frame.params, SurfaceDetail::full());
        let bounds = holo_mesh::sdf::Sdf::bounds(&sdf).expanded(0.05);
        let cloud = frame.captured_cloud();
        let inside = cloud.points.iter().filter(|p| bounds.contains(**p)).count();
        assert!(
            inside as f32 / cloud.len().max(1) as f32 > 0.99,
            "fused points escaping body bounds: {inside}/{}",
            cloud.len()
        );
    }
}
