//! Foveated-hybrid integration: gaze, mesh cutting, stitching, and the
//! bandwidth split across the full stack.

use semholo::foveated::{FoveatedConfig, FoveatedPipeline};
use semholo::{Content, SceneSource, SemHoloConfig, SemanticPipeline};

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    SceneSource::new(&config, 0.6)
}

fn pipeline(radius: f32, seed: u64) -> FoveatedPipeline {
    FoveatedPipeline::new(
        FoveatedConfig {
            foveal_radius_deg: radius,
            peripheral_resolution: 40,
            ..Default::default()
        },
        1.0,
        seed,
    )
}

#[test]
fn byte_split_tracks_the_radius() {
    let scene = scene();
    let frame = scene.frame(0);
    let mut small = pipeline(5.0, 7);
    let mut large = pipeline(25.0, 7);
    let _ = small.encode(&frame).unwrap();
    let (fov_small, pose_small) = small.last_split;
    let _ = large.encode(&frame).unwrap();
    let (fov_large, pose_large) = large.last_split;
    // Keypoint side is radius-independent; foveal mesh side grows.
    assert_eq!(pose_small, pose_large, "pose payload must not depend on the fovea");
    assert!(fov_large > fov_small, "foveal bytes {fov_small} -> {fov_large}");
}

#[test]
fn stitched_mesh_covers_both_regions() {
    let scene = scene();
    let frame = scene.frame(2);
    let mut p = pipeline(15.0, 9);
    let enc = p.encode(&frame).unwrap();
    let rec = p.decode(&enc.payload).unwrap();
    let Content::Mesh(mesh) = &rec.content else { panic!() };
    // The stitched mesh must span the whole body (head to feet), not
    // just the fovea.
    let b = mesh.bounds();
    assert!(b.size().y > 1.2, "stitched mesh height {:?}", b.size());
    assert!(mesh.face_count() > 1000);
}

#[test]
fn deterministic_across_runs() {
    let run = |seed: u64| {
        let scene = scene();
        let mut p = pipeline(12.0, seed);
        let mut out = Vec::new();
        for frame in scene.frames(3) {
            out.push(p.encode(&frame).unwrap().payload.to_vec());
        }
        out
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4), "different gaze seeds must differ");
}

#[test]
fn gaze_prediction_stays_in_field_of_view() {
    let mut p = pipeline(10.0, 11);
    for i in 0..200 {
        let g = p.predicted_gaze_at(i as f32 / 60.0);
        assert!(g.x.abs() < 60.0 && g.y.abs() < 60.0, "predicted gaze {g:?} out of FOV");
    }
}

#[test]
fn simplified_periphery_is_an_option() {
    // LoD for the periphery: clustering the peripheral reconstruction
    // keeps the body shape at a fraction of the triangles.
    let scene = scene();
    let frame = scene.frame(1);
    let mut p = pipeline(10.0, 13);
    let enc = p.encode(&frame).unwrap();
    let rec = p.decode(&enc.payload).unwrap();
    let Content::Mesh(mesh) = &rec.content else { panic!() };
    let lod = holo_mesh::simplify::simplify_cluster(mesh, 48);
    assert!(lod.face_count() * 2 < mesh.face_count());
    let q = holo_mesh::metrics::compare_meshes(mesh, &lod, 3000, 0.05, 5);
    assert!(q.chamfer < 0.05, "LoD chamfer {}", q.chamfer);
}
