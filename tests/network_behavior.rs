//! Network-facing integration: pipelines under realistic link regimes.

use holo_net::link::LinkConfig;
use holo_net::trace::BandwidthTrace;
use semholo::image::{ImageConfig, ImagePipeline};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};
use std::time::Duration;

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    SceneSource::new(&config, 0.6)
}

fn session_with(bps: f64) -> Session {
    Session::new(SessionConfig {
        trace: BandwidthTrace::Constant { bps },
        link: LinkConfig { max_queue_delay: Duration::from_millis(150), ..Default::default() },
        ..Default::default()
    })
}

#[test]
fn keypoints_survive_a_1mbps_link_raw_mesh_does_not() {
    let scene = scene();
    let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 1);
    let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
    let kp_report = session_with(1e6).run(&mut kp, &scene, 8).unwrap();
    let raw_report = session_with(1e6).run(&mut raw, &scene, 8).unwrap();
    assert_eq!(kp_report.delivered, 8, "keypoints must fit 1 Mbps");
    assert!(
        raw_report.delivered < 4,
        "raw meshes cannot fit 1 Mbps at 30 FPS (delivered {})",
        raw_report.delivered
    );
}

#[test]
fn network_latency_grows_as_link_shrinks() {
    let scene = scene();
    let mean_net = |bps: f64| {
        let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let report = session_with(bps).run(&mut trad, &scene, 5).unwrap();
        let delivered: Vec<f64> = report
            .frames
            .iter()
            .filter(|f| f.delivered)
            .map(|f| f.network_ms)
            .collect();
        delivered.iter().sum::<f64>() / delivered.len().max(1) as f64
    };
    let fast = mean_net(200e6);
    let slow = mean_net(15e6);
    assert!(slow > fast * 1.5, "fast {fast:.1} ms vs slow {slow:.1} ms");
}

#[test]
fn image_pipeline_adapts_resolution_to_bandwidth() {
    let scene = scene();
    let mut p = ImagePipeline::new(
        ImageConfig { pretrain_steps: 40, finetune_steps: 3, ..Default::default() },
        2,
    );
    // Starved link: lowest rung.
    p.set_bandwidth_hint(100e3);
    let frame = scene.frame(0);
    let small = p.encode(&frame).unwrap().payload.len();
    // Fat link: top rung.
    p.set_bandwidth_hint(1e9);
    let large = p.encode(&scene.frame(1)).unwrap().payload.len();
    assert!(large > small * 2, "ABR must change payload size: {small} -> {large}");
}

#[test]
fn lossy_link_retransmission_recovers_keypoint_frames() {
    let scene = scene();
    let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
    let mut session = Session::new(SessionConfig {
        trace: BandwidthTrace::Constant { bps: 50e6 },
        link: LinkConfig { loss_rate: 0.08, ..Default::default() },
        ..Default::default()
    });
    let report = session.run(&mut kp, &scene, 12).unwrap();
    // Single-packet frames with one retransmission round: ~99%+ delivery.
    assert!(report.delivered >= 11, "delivered {}/12", report.delivered);
}

#[test]
fn lte_trace_produces_variable_latency() {
    let scene = scene();
    let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
    // Short dwell so the 10-frame window crosses several channel states.
    let mut session = Session::new(SessionConfig {
        trace: BandwidthTrace::Lte { states: vec![3e6, 10e6, 30e6, 60e6], dwell_s: 0.1, seed: 9 },
        ..Default::default()
    });
    let report = session.run(&mut trad, &scene, 10).unwrap();
    let delivered: Vec<f64> = report
        .frames
        .iter()
        .filter(|f| f.delivered)
        .map(|f| f.network_ms)
        .collect();
    assert!(delivered.len() >= 5);
    let min = delivered.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = delivered.iter().cloned().fold(0.0, f64::max);
    assert!(max > min * 1.3, "LTE latency should vary: {min:.1}..{max:.1} ms");
}
