//! Latency attribution and SLO verdicts: cross-crate conformance.
//!
//! Three contracts from `holo-obs` are pinned here against the real
//! simulations (not synthetic spans):
//!
//! 1. **Exact tiling** — for every delivered frame the per-stage
//!    budgets sum, in integer microseconds, to the measured end-to-end
//!    latency. No rounding residue, at session, room, and fleet scale.
//! 2. **Thread invariance** — SLO verdict documents are byte-identical
//!    across `SEMHOLO_THREADS` settings, like every other canonical
//!    artifact.
//! 3. **Merge exactness** — `LatencySketch::absorb` produces the same
//!    state as single-pass recording, for arbitrary inputs.

use holo_conf::{ParticipantConfig, Room, RoomConfig};
use holo_fleet::{run_fleet_observed, FleetConfig, FleetTopology, PolicyKind, RoomSpec};
use holo_obs::{Attribution, AttributionOptions, LatencySketch, SloSpec, Stage};
use holo_runtime::check::{any, collection};
use holo_runtime::par;
use holo_runtime::{holo_prop, prop_assert, prop_assert_eq};
use holo_trace::SpanEvent;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};
use std::sync::Mutex;

/// The trace enable flag and the thread override are process-wide;
/// serialize the tests that touch either.
static TRACE_FLAG: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

fn scene() -> SceneSource {
    let config =
        SemHoloConfig { capture_resolution: (48, 36), camera_count: 2, ..Default::default() };
    SceneSource::new(&config, 0.5)
}

/// Run `f` with tracing force-enabled; hand back its output plus the
/// recorded spans, restoring the previous enable state.
fn traced<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanEvent>) {
    let was = holo_trace::enabled();
    holo_trace::enable();
    holo_trace::reset();
    let out = f();
    let spans = holo_trace::with_recorder(|r| std::mem::take(&mut r.spans));
    holo_trace::reset();
    if !was {
        holo_trace::disable();
    }
    (out, spans)
}

#[test]
fn session_attribution_tiles_every_delivered_frame() {
    let _guard = lock();
    let (report, spans) = traced(|| {
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
        Session::new(SessionConfig::default()).run(&mut pipeline, &scene(), 8).unwrap()
    });
    let mut attr = Attribution::default();
    attr.ingest_spans(&spans, &AttributionOptions::default()).expect("tiling must hold");
    let out = attr.finish();
    assert_eq!(out.frames as usize, report.delivered, "one path per delivered frame");
    assert_eq!(out.incomplete as usize, report.frames.len() - report.delivered);
    assert!(out.tiles_exactly(), "stage budgets must sum exactly to e2e");
    assert_eq!(out.e2e.count, out.frames);
    for stage in [Stage::Extract, Stage::Encode, Stage::Uplink, Stage::Decode, Stage::Render] {
        assert!(out.stage(stage).total_us > 0, "stage {stage:?} must carry time");
    }
    // Sessions never cross an SFU or a cascade.
    assert_eq!(out.stage(Stage::SfuForward).total_us, 0);
    assert_eq!(out.stage(Stage::CascadeHop).total_us, 0);
}

#[test]
fn room_attribution_tiles_every_usable_copy() {
    let _guard = lock();
    let (report, spans) = traced(|| {
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 5,
            seed: 42,
            share_encoder: true,
            ..Default::default()
        };
        let mut pipes: Vec<Box<dyn SemanticPipeline>> = vec![Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            7,
        ))];
        Room::new(cfg).unwrap().run(&scene(), &mut pipes).unwrap()
    });
    let mut attr = Attribution::default();
    attr.ingest_spans(&spans, &AttributionOptions::default()).expect("tiling must hold");
    let out = attr.finish();
    let usable: usize = report.subscribers.iter().map(|s| s.usable).sum();
    assert_eq!(out.frames as usize, usable, "one path per usable (subscriber, frame) copy");
    assert!(out.tiles_exactly());
    // Room paths decompose into extract/uplink/forward/decode/render.
    for stage in [Stage::Extract, Stage::Uplink, Stage::SfuForward, Stage::Decode, Stage::Render] {
        assert!(out.stage(stage).total_us > 0, "stage {stage:?} must carry time");
    }
    // Per-lane budgets cover every subscriber lane that received frames.
    let lanes_with_frames =
        report.subscribers.iter().filter(|s| s.usable > 0).count();
    assert_eq!(out.per_lane.len(), lanes_with_frames);
}

#[test]
fn slo_documents_are_byte_identical_across_thread_counts() {
    let _guard = lock();
    let spec = SloSpec::telepresence();
    let fleet_doc = || {
        let cfg = FleetConfig {
            topology: FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 40.0),
            rooms: vec![
                RoomSpec { participant_regions: vec![0, 0, 1], access_bps: 25e6 },
                RoomSpec::uniform(3, 0, 25e6),
            ],
            policy: PolicyKind::RoundRobin,
            frames: 4,
            seed: 9,
            ..Default::default()
        };
        let make = |room: usize| -> Box<dyn SemanticPipeline> {
            Box::new(KeypointPipeline::new(
                KeypointConfig { resolution: 24, ..Default::default() },
                room as u64,
            ))
        };
        run_fleet_observed(&cfg, &scene(), &make, &spec).unwrap().to_json().render()
    };
    let room_doc = || {
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 5,
            seed: 42,
            share_encoder: true,
            ..Default::default()
        };
        let mut pipes: Vec<Box<dyn SemanticPipeline>> = vec![Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            7,
        ))];
        let report = Room::new(cfg).unwrap().run(&scene(), &mut pipes).unwrap();
        report
            .slo_verdicts(&spec)
            .iter()
            .map(|v| v.line())
            .chain([report.slo_room(&spec).line()])
            .collect::<Vec<_>>()
            .join("\n")
    };
    par::set_thread_override(Some(1));
    let fleet_1 = fleet_doc();
    let room_1 = room_doc();
    par::set_thread_override(Some(8));
    let fleet_8 = fleet_doc();
    let room_8 = room_doc();
    par::set_thread_override(None);
    assert_eq!(fleet_1, fleet_8, "SLO_fleet document must not depend on thread count");
    assert_eq!(room_1, room_8, "room SLO verdicts must not depend on thread count");
    holo_runtime::ser::parse(&fleet_1).expect("fleet SLO doc parses");
}

holo_prop! {
    #![cases(64)]

    /// Sketch merge is exact: absorbing two independently-recorded
    /// sketches equals recording everything into one, for arbitrary
    /// values (including overflow past 2^40 µs).
    fn sketch_absorb_equals_single_pass(
        a in collection::vec(any::<u64>(), 0..40),
        b in collection::vec(any::<u64>(), 0..40),
    ) {
        let mut single = LatencySketch::default();
        let mut left = LatencySketch::default();
        let mut right = LatencySketch::default();
        for &v in &a {
            single.record(v);
            left.record(v);
        }
        for &v in &b {
            single.record(v);
            right.record(v);
        }
        left.absorb(&right);
        prop_assert_eq!(left.count, single.count);
        prop_assert_eq!(left.sum_us, single.sum_us);
        prop_assert_eq!(left.min_us, single.min_us);
        prop_assert_eq!(left.max_us, single.max_us);
        prop_assert_eq!(left.overflow, single.overflow);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile_us(q), single.quantile_us(q), "q={}", q);
        }
        prop_assert!(
            left.to_json().render() == single.to_json().render(),
            "merged sketch must serialize identically"
        );
    }
}
