//! Integration tests for the holo-conf SFU: determinism, consistency
//! with the point-to-point `Session` reference path, and agreement
//! between the simulated room capacity and `core::conference`'s
//! closed-form bound.

use holo_conf::{
    measure_max_room_size, CapacityConfig, ParticipantConfig, Room, RoomConfig,
};
use holo_net::trace::BandwidthTrace;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    SceneSource::new(&config, 0.5)
}

fn kp(seed: u64) -> Box<dyn SemanticPipeline> {
    // Keypoint stage costs are GPU-modeled (deterministic), which the
    // byte-identity assertions below rely on.
    Box::new(KeypointPipeline::new(
        KeypointConfig { resolution: 32, ..Default::default() },
        seed,
    ))
}

/// A heterogeneous, lossy, ABR-enabled room reproduces its report byte
/// for byte from the same seed — across independently constructed
/// rooms and pipelines.
#[test]
fn same_seed_is_byte_identical_even_under_stress() {
    let scene = scene();
    let run = || {
        let mut participants = ParticipantConfig::uniform_room(4, 25e6);
        // One congested subscriber and one lossy uplink stress every
        // RNG path: queue drops, ABR decisions, retransmissions.
        participants[2].downlink_trace = BandwidthTrace::Constant { bps: 100e3 };
        participants[3].uplink.loss_rate = 0.3;
        let cfg = RoomConfig {
            participants,
            frames: 8,
            queue_capacity: 2,
            ladder: Some(holo_net::abr::Ladder::standard()),
            seed: 77,
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        room.run(&scene, &mut vec![kp(7)]).unwrap()
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.render(), r2.render(), "same seed must reproduce bytes");
    // The stress actually exercised the lossy paths.
    assert!(
        r1.queue_dropped > 0 || r1.downlink_lost > 0 || r1.uplink_lost > 0,
        "stress room was unexpectedly clean"
    );
}

/// A 2-participant room where everything except participant 0's uplink
/// is ideal must report the same per-frame latencies as the
/// point-to-point `Session` over that uplink (same link config, trace,
/// and seed).
#[test]
fn two_party_room_matches_session_reference() {
    let scene = scene();
    let frames = 8;
    let link_seed = 11;
    let trace = BandwidthTrace::Constant { bps: 25e6 };

    // Reference: the point-to-point session.
    let mut session = Session::new(SessionConfig {
        trace: trace.clone(),
        seed: link_seed,
        ..Default::default()
    });
    let session_report = session.run(kp(3).as_mut(), &scene, frames).unwrap();

    // Room: participant 0 sends over the *same* link; everything else
    // (its downlink, participant 1 entirely) is ideal, so subscriber
    // 1's latency is the uplink path plus reconstruction and render —
    // exactly the session's formula.
    let mut p0 = ParticipantConfig::ideal();
    p0.uplink = holo_net::link::LinkConfig::default();
    p0.uplink_trace = trace;
    p0.uplink_seed = Some(link_seed);
    let p1 = ParticipantConfig::ideal();
    let cfg = RoomConfig {
        participants: vec![p0, p1],
        frames,
        keyframe_interval: 1, // every frame self-contained, as in Session
        ..Default::default()
    };
    let mut room = Room::new(cfg).unwrap();
    let room_report = room.run(&scene, &mut vec![kp(3), kp(9)]).unwrap();
    let sub = &room_report.subscribers[1];

    assert_eq!(
        sub.usable as usize, session_report.delivered,
        "both paths must deliver the same frames from the same link seed"
    );
    let s = &session_report.e2e_ms;
    let r = &sub.e2e_ms;
    assert_eq!(s.count(), r.count());
    // The room quantizes send times to SimTime microseconds and adds a
    // terabit hop through the SFU: sub-millisecond slack.
    assert!((s.mean() - r.mean()).abs() < 1.0, "mean {} vs {}", s.mean(), r.mean());
    assert!((s.min() - r.min()).abs() < 1.0, "min {} vs {}", s.min(), r.min());
    assert!((s.max() - r.max()).abs() < 1.0, "max {} vs {}", s.max(), r.max());
    for p in [50.0, 95.0] {
        let sp = s.percentile(p).unwrap();
        let rp = r.percentile(p).unwrap();
        assert!((sp - rp).abs() < 1.0, "p{p} {sp} vs {rp}");
    }
}

/// The simulated capacity never exceeds the closed-form mean-bandwidth
/// bound: the simulation sees queueing, loss coupling, and latency on
/// top of the bits the bound counts.
#[test]
fn simulated_capacity_stays_under_closed_form_bound() {
    let scene = scene();
    let cap_cfg = CapacityConfig {
        frames: 4,
        access_bps: 100e6,
        cap: 32,
        ..Default::default()
    };
    let mut make = || kp(42);
    let m = measure_max_room_size(&scene, &cap_cfg, &mut make).unwrap();
    assert!(m.stream_bps > 0.0);
    assert!(m.max_size >= 2, "a 100 Mbps link must host at least a 1:1 call");
    if !m.capped {
        assert!(
            m.max_size <= m.closed_form,
            "simulated {} must not beat the closed-form bound {}",
            m.max_size,
            m.closed_form
        );
    }
    // The probe log must be consistent with the reported capacity.
    for p in &m.probes {
        if p.size <= m.max_size {
            assert!(p.fits, "probe {} under max {} must fit", p.size, m.max_size);
        }
    }
    assert!(m.probes.iter().any(|p| !p.fits || m.capped), "search never found the edge");
}
