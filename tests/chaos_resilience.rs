//! Acceptance tests for the chaos/resilience subsystem: protected
//! streams beat the unprotected baseline under burst loss, the
//! semantic degradation ladder never stalls a subscriber, and the
//! whole scenario matrix replays byte-identically from its seed.

use holo_chaos::{
    gaussian_squeeze_plan, room_collapse_plan, run_gaussian_room_scenario,
    run_gaussian_scenarios, run_room_scenario, run_scenarios, run_session_scenario,
    run_stream_scenario, FaultPlan, Mechanisms, StreamConfig,
};
use holo_conf::degrade::{DegradationLadder, DegradeState};
use holo_net::time::SimTime;
use holo_net::transport::LossPolicy;
use holo_runtime::ser::ToJson;

/// The headline criterion: with FEC(4,1) + retransmission, a stream
/// under ~5% Gilbert–Elliott burst loss retains at least 2x the usable
/// frame rate of the unprotected baseline — and stays usable in
/// absolute terms, not just relative ones.
#[test]
fn fec_plus_retransmit_doubles_usable_rate_under_burst_loss() {
    let cfg = StreamConfig::default();
    let plan = FaultPlan::burst5(11);
    let base = run_stream_scenario(&plan, &Mechanisms::baseline(), &cfg);
    let full = run_stream_scenario(&plan, &Mechanisms::full(), &cfg);
    assert!(
        full.usable as f64 >= 2.0 * base.usable as f64,
        "protected usable {} vs baseline {}",
        full.usable,
        base.usable
    );
    assert!(full.usable_rate > 0.5, "protected stream unusable: {}", full.usable_rate);
    // Both mechanisms contributed, and the report knows which frames
    // they saved.
    assert!(full.recovered_retx > 0, "retransmission never engaged");
    assert!(full.delivered > base.delivered);
    // Protection is not free: parity + retries cost wire bytes.
    assert!(full.overhead > base.overhead);
}

/// Each mechanism covers the failure mode the other cannot: FEC
/// rebuilds isolated losses with zero extra round trips, while the
/// retransmit backoff schedule is the only thing that reaches past a
/// 300 ms outage (which kills parity along with the data).
#[test]
fn mechanisms_cover_complementary_failure_modes() {
    let cfg = StreamConfig::default();
    let fec_under_burst = run_stream_scenario(&FaultPlan::burst5(11), &Mechanisms::fec(), &cfg);
    assert!(fec_under_burst.recovered_fec > 0, "FEC never rebuilt a frame");
    assert_eq!(fec_under_burst.recovered_retx, 0);

    let flap = FaultPlan::flapping(5);
    let fec_under_flap = run_stream_scenario(&flap, &Mechanisms::fec(), &cfg);
    let retx_under_flap = run_stream_scenario(&flap, &Mechanisms::retransmit(), &cfg);
    assert!(
        retx_under_flap.delivered > fec_under_flap.delivered,
        "retransmit {} should outlast the flap, FEC {} cannot",
        retx_under_flap.delivered,
        fec_under_flap.delivered
    );
    assert_eq!(retx_under_flap.delivered, cfg.frames, "backoff rides out both flaps");
}

/// The ladder criterion: when a subscriber's downlink collapses to
/// ~0.2% capacity, the SFU walks the mesh → keypoints → text ladder
/// instead of stalling — degraded frames keep flowing and stay usable.
#[test]
fn ladder_never_stalls_a_starved_subscriber() {
    let out = run_room_scenario(&room_collapse_plan(7), 3, 12, 2);
    assert!(out.ladder_downgrades >= 1, "ladder never engaged: {out:?}");
    assert!(out.degraded > 0, "no degraded frames flowed: {out:?}");
    assert!(out.kept_flowing, "starved subscriber stalled: {out:?}");
    assert!(out.starved_usable_rate > 0.5, "starved port mostly unusable: {out:?}");
}

/// Churn is an accounting matter, not a failure: a participant who
/// joins late and leaves early shrinks expectations, and everyone who
/// is present stays near-perfectly usable. The late joiner lands
/// mid-GOP with a poisoned delta chain — the ladder's poison rule
/// drops it one tier to self-contained snapshots, so it is usable from
/// its very first frame instead of stalling until the next keyframe.
#[test]
fn churn_shrinks_expectations_without_hurting_anyone() {
    let out = run_room_scenario(&FaultPlan::churny(7, 3), 3, 10, 2);
    assert!(out.kept_flowing);
    assert!(out.min_usable_rate > 0.9, "clean churny room degraded: {out:?}");
    assert!(
        out.ladder_downgrades >= 1 && out.degraded > 0,
        "the mid-GOP joiner should be re-keyed via the ladder: {out:?}"
    );
}

/// The end-to-end session recovers whole frames via fragment
/// retransmission under burst loss — and the drop policy, by
/// definition, never does.
#[test]
fn session_recovery_follows_the_loss_policy() {
    let plan = FaultPlan::burst5(11);
    let drop = run_session_scenario(&plan, LossPolicy::DropFrame);
    let retx = run_session_scenario(&plan, LossPolicy::RetransmitOnce);
    assert_eq!(drop.recovered, 0);
    assert!(retx.delivered >= drop.delivered);
    assert_eq!(retx.frames, drop.frames);
}

/// Corruption is a detected failure, not a silent one: under burst
/// loss plus ~3% payload corruption, every corrupted frame is caught
/// by the envelope CRC and dropped, and the full mechanism set still
/// recovers to a usable rate no worse than the *unprotected* stream
/// under the same loss plan without corruption.
#[test]
fn corrupted_frames_are_detected_dropped_and_recovered() {
    let cfg = StreamConfig::default();
    let corrupt = run_stream_scenario(&FaultPlan::burst5_corrupt(11), &Mechanisms::full(), &cfg);
    assert!(corrupt.corrupt_detected > 0, "no corruption injected: {corrupt:?}");
    let base = run_stream_scenario(&FaultPlan::burst5(11), &Mechanisms::baseline(), &cfg);
    assert!(
        corrupt.usable_rate >= base.usable_rate,
        "corruption broke recovery: {} < {}",
        corrupt.usable_rate,
        base.usable_rate
    );
    // Without a PayloadCorrupt window, the corruption stream is never
    // consulted — pre-corruption scenarios replay byte-identically.
    let plain = run_stream_scenario(&FaultPlan::burst5(11), &Mechanisms::full(), &cfg);
    assert_eq!(plain.corrupt_detected, 0);
}

/// The fourth rung is opt-in by construction: under the same squeeze
/// plan, the starved subscriber rides gaussian updates only when it
/// holds the sender's prebuilt avatar blob — without it the ladder
/// skips straight to keypoints, and nobody stalls either way.
#[test]
fn starvation_skips_the_gaussian_tier_without_the_prebuild() {
    let plan = gaussian_squeeze_plan(7);
    let warm = run_gaussian_room_scenario(&plan, 3, 12, 2, true);
    let cold = run_gaussian_room_scenario(&plan, 3, 12, 2, false);
    assert!(warm.gaussian_delivered > 0, "prebuilt subscriber never rode gaussian: {warm:?}");
    assert!(warm.gaussian_fraction > 0.5, "gaussian should dominate the squeeze: {warm:?}");
    assert_eq!(cold.gaussian_delivered, 0, "gated tier leaked without the blob: {cold:?}");
    assert!(cold.keypoints_delivered > 0, "cold subscriber should land on keypoints: {cold:?}");
    assert!(warm.kept_flowing && cold.kept_flowing, "a squeeze must not stall anyone");
}

/// Climbing *into* the gaussian tier is keyframe-gated: a late-arriving
/// prebuild blob opens the rung, but the upgrade waits for the
/// stability window and then for a keyframe, where the tiny update
/// stream's delta chain can sync.
#[test]
fn upgrade_into_the_gaussian_tier_waits_for_a_keyframe() {
    let mut s = DegradeState::new(DegradationLadder::amortized());
    let ms = SimTime::from_millis;
    s.decide(ms(0), 130e3, false, true); // below the gaussian floor -> keypoints
    assert_eq!(s.level(), 2);
    s.set_prebuild_ready(true);
    assert_eq!(s.decide(ms(100), 300e3, false, false), 2, "window just started");
    assert_eq!(s.decide(ms(700), 300e3, false, false), 2, "deltas cannot enter the chain");
    assert_eq!(s.decide(ms(733), 300e3, false, true), 1, "keyframe admits the climb");
    assert!(!s.self_contained(), "gaussian updates ride a delta chain");
}

/// The gaussian sweep is as replayable as the rest of the matrix — and
/// additive: the base scenario report is byte-for-byte unchanged by the
/// four-tier ladder existing.
#[test]
fn the_gaussian_sweep_is_byte_identical_and_additive() {
    let a = run_gaussian_scenarios(42);
    let b = run_gaussian_scenarios(42);
    assert_eq!(a.len(), 2, "prebuilt + cold cells");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json().render(), y.to_json().render());
    }
    let mut base = run_scenarios(42);
    let base_bytes = base.render();
    base.gaussian = run_gaussian_scenarios(42);
    let extended = base.render();
    assert_ne!(base_bytes, extended);
    assert!(
        extended.starts_with(&base_bytes[..base_bytes.len() - 1]),
        "gaussian section must extend the report, not rewrite it"
    );
}

/// Same seed, same bytes — across the *entire* matrix: every stream
/// plan × mechanism cell, every session, every room. This is what
/// makes chaos results regression-diffable.
#[test]
fn the_scenario_matrix_is_byte_identical_per_seed() {
    let a = run_scenarios(42);
    let b = run_scenarios(42);
    assert_eq!(a.render(), b.render(), "same seed must reproduce the report bytes");
    let c = run_scenarios(43);
    assert_ne!(a.render(), c.render(), "the seed must be observable in the report");
    // The matrix has the advertised shape.
    assert_eq!(a.streams.len(), 24, "6 plans x 4 mechanism sets");
    assert_eq!(a.sessions.len(), 4, "2 plans x 2 loss policies");
    assert_eq!(a.rooms.len(), 2, "collapse + churn");
    // And the clean/baseline corner is lossless, anchoring the scale.
    let clean = a.stream("clean", "baseline").expect("clean baseline cell");
    assert_eq!(clean.usable, clean.frames);
}
