//! Cross-pipeline integration: the taxonomy's ordering claims must hold
//! when all pipelines observe the same scene.

use semholo::image::{ImageConfig, ImagePipeline};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::text::{TextConfig, TextPipeline};
use semholo::traditional::{MeshWire, TraditionalPipeline};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (64, 48),
        camera_count: 3,
        ..Default::default()
    };
    SceneSource::new(&config, 0.4)
}

#[test]
fn payload_size_ordering_matches_table1() {
    let scene = scene();
    let frame = scene.frame(3);
    let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 1);
    let mut txt = TextPipeline::new(TextConfig::default(), 1);
    let mut comp = TraditionalPipeline::new(MeshWire::Compressed, 14);
    let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
    let kp_b = kp.encode(&frame).unwrap().payload.len();
    let txt_b = txt.encode(&frame).unwrap().payload.len();
    let comp_b = comp.encode(&frame).unwrap().payload.len();
    let raw_b = raw.encode(&frame).unwrap().payload.len();
    // Semantic payloads are an order of magnitude below even compressed
    // meshes; raw meshes are an order above compressed.
    assert!(kp_b * 10 < comp_b, "keypoint {kp_b} vs compressed mesh {comp_b}");
    assert!(txt_b * 10 < comp_b, "text {txt_b} vs compressed mesh {comp_b}");
    assert!(comp_b * 4 < raw_b, "compressed {comp_b} vs raw {raw_b}");
}

#[test]
fn traditional_quality_at_least_keypoint_quality() {
    let scene = scene();
    let frame = scene.frame(3);
    let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 96, ..Default::default() }, 2);
    let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
    let kp_rec = {
        let enc = kp.encode(&frame).unwrap();
        kp.decode(&enc.payload).unwrap()
    };
    let trad_rec = {
        let enc = trad.encode(&frame).unwrap();
        trad.decode(&enc.payload).unwrap()
    };
    let kp_q = kp.quality(&frame, &kp_rec.content).chamfer.unwrap();
    let trad_q = trad.quality(&frame, &trad_rec.content).chamfer.unwrap();
    assert!(
        trad_q <= kp_q * 1.2,
        "traditional ({trad_q}) must not be clearly worse than keypoints ({kp_q})"
    );
}

#[test]
fn all_pipelines_roundtrip_every_frame_kind() {
    let scene = scene();
    let mut pipelines: Vec<Box<dyn SemanticPipeline>> = vec![
        Box::new(KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3)),
        Box::new(TextPipeline::new(TextConfig::default(), 3)),
        Box::new(TraditionalPipeline::new(MeshWire::Compressed, 12)),
        Box::new(ImagePipeline::new(
            ImageConfig { pretrain_steps: 60, finetune_steps: 4, ..Default::default() },
            3,
        )),
    ];
    for p in &mut pipelines {
        for frame in scene.frames(3) {
            let enc = p.encode(&frame).unwrap_or_else(|e| panic!("{:?} encode: {e}", p.kind()));
            assert!(!enc.payload.is_empty());
            let rec = p.decode(&enc.payload).unwrap_or_else(|e| panic!("{:?} decode: {e}", p.kind()));
            let q = p.quality(&frame, &rec.content);
            assert!(
                q.chamfer.is_some() || q.psnr_db.is_some(),
                "{:?} must produce a quality metric",
                p.kind()
            );
        }
    }
}

#[test]
fn semantic_kinds_are_distinct() {
    let kinds = [
        KeypointPipeline::new(Default::default(), 1).kind(),
        TextPipeline::new(Default::default(), 1).kind(),
        TraditionalPipeline::new(MeshWire::Raw, 14).kind(),
        ImagePipeline::new(Default::default(), 1).kind(),
    ];
    for (i, a) in kinds.iter().enumerate() {
        for b in &kinds[i + 1..] {
            assert_ne!(a, b);
        }
    }
}
