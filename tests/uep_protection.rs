//! Acceptance for semantic-importance unequal protection (DESIGN.md
//! §14): at an *equal* redundancy budget, the importance-weighted
//! policy must never lose to uniform protection, and must strictly
//! beat it on at least half the sweep — judged by SLO verdicts in a
//! byte-identical `UEP_report.json`.

use holo_chaos::{run_uep_scenarios, uep_report, uep_sweep_plans};
use holo_runtime::par;
use holo_runtime::ser::JsonValue;
use holo_uep::UepPolicy;

const SEED: u64 = 42;

fn report_doc() -> JsonValue {
    let cells = run_uep_scenarios(SEED);
    uep_report(SEED, &cells, &holo_obs::SloSpec::telepresence())
}

/// The headline claim: weighted ≥ uniform in every cell, strictly
/// better in at least half, and the report says so via verdicts.
#[test]
fn weighted_dominates_uniform_at_seed_42() {
    let cells = run_uep_scenarios(SEED);
    assert_eq!(cells.len(), 2 * uep_sweep_plans(SEED).len());
    let mut strict = 0usize;
    for pair in cells.chunks(2) {
        let (uniform, weighted) = (&pair[0], &pair[1]);
        assert_eq!(uniform.policy, "uniform");
        assert_eq!(weighted.policy, "weighted");
        assert_eq!(uniform.plan, weighted.plan);
        assert!(
            weighted.usable >= uniform.usable,
            "{}: weighted usable {} < uniform {}",
            uniform.plan,
            weighted.usable,
            uniform.usable
        );
        if weighted.usable > uniform.usable {
            strict += 1;
        }
    }
    assert!(
        strict * 2 >= cells.len() / 2,
        "weighted strictly better in only {strict} of {} plans",
        cells.len() / 2
    );

    let doc = report_doc();
    assert_eq!(doc.get("dominates"), Some(&JsonValue::Bool(true)));
    assert_eq!(doc.get("pass"), Some(&JsonValue::Bool(true)));
}

/// The comparison is honest only if both policies spend the same
/// redundancy: identical parity-frame and scheduled-retry budgets in
/// every cell, straight from the policies' own accounting.
#[test]
fn both_policies_spend_the_same_budget() {
    use holo_net::wire::PayloadKind;
    let (uniform, weighted) = (UepPolicy::uniform(), UepPolicy::weighted());
    assert_eq!(uniform.parity_frames(150, 10, PayloadKind::Mesh), 37);
    assert_eq!(weighted.parity_frames(150, 10, PayloadKind::Mesh), 37);
    assert_eq!(uniform.scheduled_retries(150, 10, PayloadKind::Mesh), 450);
    assert_eq!(weighted.scheduled_retries(150, 10, PayloadKind::Mesh), 450);

    for pair in run_uep_scenarios(SEED).chunks(2) {
        let (u, w) = (&pair[0], &pair[1]);
        assert_eq!(u.parity_frames, w.parity_frames, "{}: parity budget differs", u.plan);
        assert_eq!(
            u.retries_scheduled, w.retries_scheduled,
            "{}: retry budget differs",
            u.plan
        );
    }
    let doc = report_doc();
    let equal = doc.get("budget").and_then(|b| b.get("equal"));
    assert_eq!(equal, Some(&JsonValue::Bool(true)));
}

/// Abandonment is a *decision*, not a failure: every frame lands in
/// exactly one of delivered / abandoned / lost, and a cell that
/// abandons retries still accounts for the frames it gave up on.
#[test]
fn abandoned_frames_are_never_counted_as_losses() {
    let cells = run_uep_scenarios(SEED);
    let mut abandoned_total = 0usize;
    for cell in &cells {
        assert_eq!(
            cell.delivered + cell.abandoned + cell.lost,
            cell.frames,
            "{}/{}: unaccounted frames",
            cell.plan,
            cell.policy
        );
        if cell.policy == "uniform" {
            assert_eq!(cell.abandoned, 0, "{}: uniform never abandons", cell.plan);
        }
        abandoned_total += cell.abandoned;
        for class in &cell.classes {
            assert_eq!(
                class.delivered + class.abandoned + class.lost,
                class.frames,
                "{}/{}/{}: unaccounted class frames",
                cell.plan,
                cell.policy,
                class.class
            );
            if matches!(class.class.as_str(), "critical" | "high") {
                assert_eq!(
                    class.abandoned, 0,
                    "{}/{}: {} frames must never be abandoned",
                    cell.plan, cell.policy, class.class
                );
            }
        }
    }
    assert!(abandoned_total > 0, "the sweep must exercise abandonment somewhere");
}

/// Same seed, same bytes — run to run and across thread counts.
#[test]
fn uep_report_is_byte_identical() {
    let first = report_doc().render();
    let second = report_doc().render();
    assert_eq!(first, second, "same-seed re-run changed UEP_report bytes");

    let mut renders = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        renders.push(report_doc().render());
    }
    par::set_thread_override(None);
    assert_eq!(renders[0], renders[1], "thread count changed UEP_report bytes");
    assert_eq!(renders[0], first, "thread override changed UEP_report bytes");
}

/// The uep section appends to the resilience report without touching
/// the bytes of what came before it — the same suffix-only contract
/// the gaussian tier established.
#[test]
fn uep_section_is_a_pure_suffix_of_the_resilience_report() {
    let mut report = holo_chaos::run_scenarios(7);
    let base = report.render();
    report.uep = run_uep_scenarios(7);
    let with = report.render();
    assert!(with.len() > base.len());
    assert!(
        with.starts_with(&base[..base.len() - 1]),
        "uep section rewrote earlier report bytes"
    );
    let verdicts = report.slo_verdicts(&holo_obs::SloSpec::telepresence());
    assert!(
        verdicts.iter().any(|(cell, _)| cell.starts_with("uep/")),
        "uep cells missing from slo_verdicts"
    );
}
