//! Conformance: `holo_runtime::bytes` must match the documented
//! behaviour of the `bytes` crate it replaced, for arbitrary inputs.
//!
//! These properties pin the semantics the rest of the workspace relies
//! on — O(1) views that alias the same allocation, split arithmetic,
//! and `put_*`/`get_*` round-trips — so a future reimplementation (or
//! a return to the external crate) can be validated against them.

use holo_runtime::bytes::{Bytes, BytesMut};
use holo_runtime::check::{any, collection};
use holo_runtime::{holo_prop, prop_assert, prop_assert_eq, prop_assume};

holo_prop! {
    #![cases(64)]

    /// `Bytes::from(vec)` is a faithful view of the vec.
    fn from_vec_roundtrip(data in collection::vec(any::<u8>(), 0..512)) {
        let b = Bytes::from(data.clone());
        prop_assert_eq!(b.len(), data.len());
        prop_assert_eq!(b.to_vec(), data);
    }

    /// `slice(lo..hi)` equals the same slice of the source vec, and
    /// clones observe the same contents.
    fn slice_matches_vec_slice(
        data in collection::vec(any::<u8>(), 1..512),
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let (lo, hi) = (a % data.len(), b % data.len());
        prop_assume!(lo <= hi);
        let bytes = Bytes::from(data.clone());
        let s = bytes.slice(lo..hi);
        prop_assert_eq!(&s[..], &data[lo..hi]);
        let c = s.clone();
        prop_assert_eq!(&c[..], &data[lo..hi]);
        // The parent view is unaffected by slicing.
        prop_assert_eq!(bytes.to_vec(), data);
    }

    /// Slicing a slice composes like slicing the vec twice.
    fn slice_composes(data in collection::vec(any::<u8>(), 4..256)) {
        let n = data.len();
        let outer = Bytes::from(data.clone()).slice(1..n - 1);
        let inner = outer.slice(1..outer.len() - 1);
        prop_assert_eq!(&inner[..], &data[2..n - 2]);
    }

    /// `split_to(k)` + remainder reassemble the original; lengths
    /// conserve (the documented `bytes` split arithmetic).
    fn split_to_conserves(data in collection::vec(any::<u8>(), 0..512), k in any::<usize>()) {
        let mut b = Bytes::from(data.clone());
        let at = if data.is_empty() { 0 } else { k % (data.len() + 1) };
        let head = b.split_to(at);
        prop_assert_eq!(head.len() + b.len(), data.len());
        let mut rejoined = head.to_vec();
        rejoined.extend_from_slice(&b);
        prop_assert_eq!(rejoined, data);
    }

    /// `split_off(k)` mirrors `split_to`: self keeps the prefix.
    fn split_off_conserves(data in collection::vec(any::<u8>(), 0..512), k in any::<usize>()) {
        let mut b = Bytes::from(data.clone());
        let at = if data.is_empty() { 0 } else { k % (data.len() + 1) };
        let tail = b.split_off(at);
        prop_assert_eq!(&b[..], &data[..at]);
        prop_assert_eq!(&tail[..], &data[at..]);
    }

    /// `BytesMut` put -> `freeze` -> get round-trips every integer
    /// width in both byte orders, in arbitrary interleavings.
    fn put_get_roundtrip(ops in collection::vec(any::<u64>(), 0..64)) {
        let mut m = BytesMut::new();
        for &v in &ops {
            match v % 5 {
                0 => m.put_u8(v as u8),
                1 => m.put_u16(v as u16),
                2 => m.put_u32_le(v as u32),
                3 => m.put_u64(v),
                _ => m.put_f32_le(f32::from_bits((v as u32) & 0x7F7F_FFFF)),
            }
        }
        let mut b = m.freeze();
        for &v in &ops {
            match v % 5 {
                0 => prop_assert_eq!(b.get_u8(), v as u8),
                1 => prop_assert_eq!(b.get_u16(), v as u16),
                2 => prop_assert_eq!(b.get_u32_le(), v as u32),
                3 => prop_assert_eq!(b.get_u64(), v),
                _ => prop_assert_eq!(
                    b.get_f32_le().to_bits(),
                    (v as u32) & 0x7F7F_FFFF
                ),
            }
        }
        prop_assert!(b.is_empty(), "leftover bytes: {}", b.len());
    }

    /// `advance` + `truncate` behave like narrowing the vec.
    fn advance_truncate(
        data in collection::vec(any::<u8>(), 0..256),
        a in any::<usize>(),
        t in any::<usize>(),
    ) {
        let mut b = Bytes::from(data.clone());
        let adv = if data.is_empty() { 0 } else { a % (data.len() + 1) };
        b.advance(adv);
        prop_assert_eq!(&b[..], &data[adv..]);
        let keep = t % (b.len() + 1);
        b.truncate(keep);
        prop_assert_eq!(&b[..], &data[adv..adv + keep]);
    }

    /// Equality is content equality, independent of how the view was
    /// constructed (direct vs slice of a larger buffer).
    fn eq_is_content_eq(data in collection::vec(any::<u8>(), 0..128)) {
        let direct = Bytes::from(data.clone());
        let mut padded = vec![0xAAu8; 3];
        padded.extend_from_slice(&data);
        padded.push(0x55);
        let sliced = Bytes::from(padded).slice(3..3 + data.len());
        prop_assert_eq!(direct.clone(), sliced);
        prop_assert_eq!(direct, data);
    }

    /// `BytesMut::split_to` keeps builder semantics: both halves
    /// concatenate to the original and stay independently writable.
    fn bytesmut_split_to(data in collection::vec(any::<u8>(), 1..128), k in any::<usize>()) {
        let at = k % (data.len() + 1);
        let mut m = BytesMut::from(data.as_slice());
        let mut head = m.split_to(at);
        prop_assert_eq!(&head[..], &data[..at]);
        prop_assert_eq!(&m[..], &data[at..]);
        head.put_u8(0xEE);
        m.put_u8(0xFF);
        prop_assert_eq!(head.len(), at + 1);
        prop_assert_eq!(m.len(), data.len() - at + 1);
    }
}

/// Out-of-range operations must panic exactly like the `bytes` crate
/// documents (not silently clamp): these are the contract the codecs
/// rely on to catch framing bugs.
#[test]
fn out_of_range_panics() {
    use std::panic::catch_unwind;
    let b = Bytes::from(vec![1u8, 2, 3]);
    assert!(catch_unwind(|| b.slice(2..5)).is_err());
    assert!(catch_unwind(|| b.slice(4..)).is_err());
    assert!(catch_unwind(|| b.clone().split_to(4)).is_err());
    assert!(catch_unwind(|| b.clone().split_off(4)).is_err());
    assert!(catch_unwind(|| b.clone().get_u32()).is_err());
    // In-range equivalents do not panic.
    assert_eq!(b.slice(2..3), vec![3u8]);
    assert_eq!(b.clone().split_to(3), vec![1u8, 2, 3]);
}

/// Freezing and re-slicing never copies: a megabyte payload fanned out
/// into many packet views stays one allocation (the property the
/// network simulator's packetizer depends on).
#[test]
fn packetize_like_usage_is_zero_copy() {
    let mut m = BytesMut::with_capacity(1 << 20);
    m.resize(1 << 20, 0x42);
    let frame = m.freeze();
    let payloads: Vec<Bytes> =
        (0..(1 << 20) / 1200).map(|i| frame.slice(i * 1200..(i + 1) * 1200)).collect();
    for (i, p) in payloads.iter().enumerate() {
        assert_eq!(p.len(), 1200);
        assert_eq!(p[0], 0x42);
        // Aliasing check: the slice's first byte lives inside the
        // frame's allocation, at the expected offset.
        let base = frame.as_ref().as_ptr() as usize;
        assert_eq!(p.as_ref().as_ptr() as usize, base + i * 1200);
    }
}
