//! Parallel determinism: every canonical artifact — `RoomReport`,
//! `ResilienceReport`, `FUZZ_report`, chrome traces, metric snapshots —
//! is byte-identical across `SEMHOLO_THREADS` 1, 2, and 8.
//!
//! This is the conformance suite for the fork-join pool's contract:
//! fixed partitioning, canonical-order merge, and the trace recorder's
//! `(start_us, lane, seq)` re-sort at scope exit. Each artifact's FNV-1a
//! digest is additionally checked against a golden pinned here, so a
//! regression that changes the bytes *identically at every thread
//! count* (e.g. a silent seed change) still fails loudly.

use holo_chaos::harness::run_scenarios;
use holo_conf::{ParticipantConfig, Room, RoomConfig};
use holo_fleet::{run_fleet, run_fleet_observed, FleetConfig, FleetTopology, RoomSpec};
use holo_fuzz::{run_sweep, FuzzConfig};
use holo_runtime::par;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::semantics::SemanticPipeline;
use semholo::{SceneSource, SemHoloConfig};

/// FNV-1a over the artifact bytes: stable, dependency-free, and enough
/// to pin "these exact bytes" in a golden.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scene() -> SceneSource {
    let config =
        SemHoloConfig { capture_resolution: (48, 36), camera_count: 2, ..Default::default() };
    SceneSource::new(&config, 0.5)
}

fn room_report() -> String {
    let cfg = RoomConfig {
        participants: ParticipantConfig::uniform_room(3, 25e6),
        frames: 5,
        seed: 42,
        share_encoder: true,
        ..Default::default()
    };
    let mut pipelines: Vec<Box<dyn SemanticPipeline>> = vec![Box::new(KeypointPipeline::new(
        KeypointConfig { resolution: 24, ..Default::default() },
        7,
    ))];
    Room::new(cfg).unwrap().run(&scene(), &mut pipelines).unwrap().render()
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        topology: FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 20.0),
        rooms: vec![
            RoomSpec::uniform(3, 0, 25e6),
            RoomSpec { participant_regions: vec![0, 1, 1], access_bps: 25e6 },
        ],
        frames: 4,
        seed: 9,
        ..Default::default()
    }
}

fn fleet_make(room: usize) -> Box<dyn SemanticPipeline> {
    Box::new(KeypointPipeline::new(
        KeypointConfig { resolution: 24, ..Default::default() },
        room as u64,
    ))
}

fn fleet_report() -> String {
    run_fleet(&fleet_cfg(), &scene(), &fleet_make).unwrap().report.render()
}

/// The SLO + attribution document for the same fleet: verdicts, node
/// floors, and the exact stage budgets all ride on spans recorded by
/// parallel workers, so this digest pins the whole observability path.
fn fleet_slo_doc() -> String {
    let spec = holo_obs::SloSpec::telepresence();
    run_fleet_observed(&fleet_cfg(), &scene(), &fleet_make, &spec)
        .unwrap()
        .to_json()
        .render()
}

/// One full artifact set at the current thread count:
/// `(room, resilience, fuzz, chrome trace, metric snapshot, fleet,
/// SLO_fleet)` digests.
fn artifact_digests() -> [u64; 7] {
    let room = fnv1a64(room_report().as_bytes());
    let resilience = fnv1a64(run_scenarios(42).render().as_bytes());
    // 600 mutants per target spans three fixed 250-mutant chunks, so
    // the cross-chunk fold is exercised, not just chunk 0.
    let fuzz = fnv1a64(
        run_sweep(&FuzzConfig { seed: 7, mutations_per_target: 600 }).render().as_bytes(),
    );
    // A traced chaos matrix: worker spans (chaos.outage) and counters
    // (chaos.*) must merge into the caller's recorder identically.
    // Only the counters section is digested — histograms may hold
    // wall-clock values (the compress codecs' timing histograms), which
    // are excluded from the byte-identity guarantee by design.
    holo_trace::enable();
    holo_trace::reset();
    let _ = run_scenarios(42);
    let chrome = fnv1a64(holo_trace::chrome_trace().as_bytes());
    let counters = holo_trace::snapshot_json()
        .get("counters")
        .expect("snapshot has a counters section")
        .render();
    let snapshot = fnv1a64(counters.as_bytes());
    holo_trace::disable();
    holo_trace::reset();
    let fleet = fnv1a64(fleet_report().as_bytes());
    let slo = fnv1a64(fleet_slo_doc().as_bytes());
    [room, resilience, fuzz, chrome, snapshot, fleet, slo]
}

/// Goldens for the artifact set (order: room, resilience, fuzz, chrome,
/// snapshot, fleet, SLO_fleet). Pinned from a `SEMHOLO_THREADS=1` run;
/// the test proves every other thread count produces the same bytes.
const GOLDEN: [u64; 7] = [
    0xdc36754bb8f72046,
    0xb17b12f6b905488f,
    0xbba744d99b255107,
    0x6c7cc21eb89536be,
    0xf458be6318ffbe6a,
    0x8fe6f3f4bc3ff94e,
    0xc832c977a97ed3b5,
];

#[test]
fn reports_and_traces_byte_identical_at_threads_1_2_8() {
    // One test drives all thread counts: the override is process-wide,
    // so splitting this into per-count tests would race.
    let names = [
        "RoomReport",
        "ResilienceReport",
        "FUZZ_report",
        "chrome_trace",
        "metrics",
        "FleetReport",
        "SLO_fleet",
    ];
    for t in [1usize, 2, 8] {
        par::set_thread_override(Some(t));
        let digests = artifact_digests();
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                digests[i], GOLDEN[i],
                "{name} diverged at SEMHOLO_THREADS={t}: {:#018x} != golden {:#018x}",
                digests[i], GOLDEN[i]
            );
        }
    }
    par::set_thread_override(None);
}
