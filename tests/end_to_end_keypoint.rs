//! End-to-end integration: the keypoint proof-of-concept pipeline across
//! every substrate crate (body -> capture -> keypoints -> compress ->
//! net -> mesh -> gpu).

use holo_net::trace::BandwidthTrace;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{Content, SceneSource, SemHoloConfig, SemanticPipeline};

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    SceneSource::new(&config, 0.6)
}

#[test]
fn full_session_is_deterministic() {
    let run = || {
        let scene = scene();
        let mut p = KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 9);
        let mut payloads = Vec::new();
        for frame in scene.frames(5) {
            payloads.push(p.encode(&frame).unwrap().payload.to_vec());
        }
        payloads
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must produce byte-identical payloads");
}

#[test]
fn different_seeds_differ() {
    let scene = scene();
    let mut p1 = KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 1);
    let mut p2 = KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 2);
    let f = scene.frame(0);
    assert_ne!(
        p1.encode(&f).unwrap().payload,
        p2.encode(&f).unwrap().payload,
        "different detector seeds must differ"
    );
}

#[test]
fn session_report_accounts_every_frame() {
    let scene = scene();
    let mut p = KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
    let mut session = Session::new(SessionConfig {
        trace: BandwidthTrace::Constant { bps: 10e6 },
        quality_every: 3,
        ..Default::default()
    });
    let report = session.run(&mut p, &scene, 9).unwrap();
    assert_eq!(report.frames.len(), 9);
    assert_eq!(report.payload.count(), 9);
    // Every delivered frame has finite latency components.
    for f in report.frames.iter().filter(|f| f.delivered) {
        assert!(f.e2e_ms.is_finite());
        assert!(f.extract_ms >= 0.0);
        assert!(f.network_ms > 0.0);
        assert!(f.reconstruct_ms > 0.0);
    }
    assert!(report.mean_chamfer.is_some());
}

#[test]
fn reconstruction_tracks_the_pose() {
    // The reconstructed mesh must follow the sender's motion: compare
    // wrist-area occupancy between two distant frames.
    let scene = scene();
    let mut p = KeypointPipeline::new(KeypointConfig { resolution: 64, ..Default::default() }, 5);
    let get_mesh = |p: &mut KeypointPipeline, i: usize| {
        let f = scene.frame(i);
        let enc = p.encode(&f).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(m) = rec.content else { panic!() };
        (f, m)
    };
    let (f0, m0) = get_mesh(&mut p, 0);
    let (f1, m1) = get_mesh(&mut p, 15);
    // Ground-truth wrist positions for both frames.
    let sk = holo_body::Skeleton::neutral();
    let w0 = sk.forward_kinematics(&f0.params).position(holo_body::Joint::RightWrist);
    let w1 = sk.forward_kinematics(&f1.params).position(holo_body::Joint::RightWrist);
    let near = |mesh: &holo_mesh::TriMesh, q: holo_math::Vec3| {
        mesh.vertices.iter().filter(|v| v.distance(q) < 0.07).count()
    };
    assert!(near(&m0, w0) > 0, "frame-0 mesh must cover frame-0 wrist");
    assert!(near(&m1, w1) > 0, "frame-15 mesh must cover frame-15 wrist");
}

#[test]
fn quality_floor_from_cloth_detail() {
    // Even a high-resolution keypoint reconstruction cannot beat the
    // cloth-detail floor: the bare surface differs from the full one.
    let scene = scene();
    let frame = scene.frame(0);
    let mut p = KeypointPipeline::new(KeypointConfig { resolution: 96, ..Default::default() }, 7);
    let enc = p.encode(&frame).unwrap();
    let rec = p.decode(&enc.payload).unwrap();
    let q = p.quality(&frame, &rec.content);
    // Chamfer cannot reach zero: cloth folds are unrecoverable.
    assert!(q.chamfer.unwrap() > 0.002, "suspiciously perfect: {:?}", q.chamfer);
    assert!(q.chamfer.unwrap() < 0.06, "implausibly bad: {:?}", q.chamfer);
}

#[test]
fn payload_survives_bit_corruption_without_panic() {
    let scene = scene();
    let mut p = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 11);
    let enc = p.encode(&scene.frame(0)).unwrap();
    let mut rng = holo_math::Pcg32::new(1);
    for _ in 0..50 {
        let mut corrupted = enc.payload.to_vec();
        let i = rng.index(corrupted.len());
        corrupted[i] ^= 1 << rng.range_u32(8);
        // Must not panic; error or garbage mesh both acceptable.
        let _ = p.decode(&corrupted);
    }
    // Truncations too.
    for cut in [0, 1, 10, enc.payload.len() / 2] {
        let _ = p.decode(&enc.payload[..cut]);
    }
}
