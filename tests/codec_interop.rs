//! Codec interop: the compression substrate against real content from
//! the body/scene substrates, plus adversarial robustness.

use holo_body::params::{PosePayload, SmplxParams};
use holo_body::{MotionKind, MotionSynthesizer};
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::meshcodec::{decode_mesh, encode_mesh, MeshCodecConfig};
use holo_compress::texture::{Texture, TextureCodec};
use holo_math::Pcg32;
use holo_runtime::check::{any, collection};
use holo_runtime::{holo_prop, prop_assert_eq};

#[test]
fn lzma_roundtrips_a_whole_motion_clip() {
    let mut synth = MotionSynthesizer::new(5);
    for kind in [MotionKind::Idle, MotionKind::Talking, MotionKind::Waving, MotionKind::Walking] {
        let clip = synth.clip(kind, 1.0, 30.0);
        for frame in &clip.frames {
            let payload = PosePayload::new(frame.clone(), vec![]).to_bytes();
            let compressed = lzma_compress(&payload);
            assert_eq!(lzma_decompress(&compressed).unwrap(), payload, "{kind:?}");
        }
    }
}

#[test]
fn mesh_codec_roundtrips_posed_bodies_across_a_clip() {
    let model = holo_body::BodyModel::standard();
    let mut synth = MotionSynthesizer::new(7);
    let clip = synth.clip(MotionKind::Walking, 0.3, 10.0);
    for frame in &clip.frames {
        let mesh = model.pose_mesh(frame);
        let encoded = encode_mesh(&mesh, &MeshCodecConfig::default());
        let decoded = decode_mesh(&encoded).unwrap();
        assert_eq!(decoded.face_count(), mesh.face_count());
        // Draco-class ratio on every frame, not just one.
        let ratio = mesh.raw_size_bytes() as f64 / encoded.len() as f64;
        assert!(ratio > 5.0, "frame ratio {ratio:.1}");
    }
}

#[test]
fn pose_payload_parse_never_panics_on_corruption() {
    let mut rng = Pcg32::new(1);
    let payload = PosePayload::new(SmplxParams::default(), vec![]).to_bytes();
    for _ in 0..500 {
        let mut corrupted = payload.clone();
        for _ in 0..rng.range_u32(8) + 1 {
            let i = rng.index(corrupted.len());
            corrupted[i] = rng.next_u32() as u8;
        }
        let _ = PosePayload::from_bytes(&corrupted);
    }
}

#[test]
fn texture_codec_on_rendered_captures() {
    // Compress actual render output (not just synthetic patterns).
    use holo_capture::camera::{Camera, CameraIntrinsics};
    use holo_capture::noise::DepthNoiseModel;
    use holo_capture::render::{render_rgbd, ShadingConfig};
    use holo_mesh::sdf::SdfSphere;

    let sdf = SdfSphere { center: holo_math::Vec3::new(0.0, 1.0, 0.0), radius: 0.5 };
    let cam = Camera::look_at(
        CameraIntrinsics::from_fov(64, 64, 1.0),
        holo_math::Vec3::new(0.0, 1.0, 2.0),
        holo_math::Vec3::new(0.0, 1.0, 0.0),
    );
    let mut rng = Pcg32::new(2);
    let frame = render_rgbd(&sdf, &cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut rng);
    let compressed = TextureCodec::compress(&frame.color);
    let decompressed = TextureCodec::decompress(&compressed).unwrap();
    assert!(frame.color.psnr(&decompressed) > 25.0);
    assert_eq!(compressed.len(), TextureCodec::compressed_size(64, 64));
}

holo_prop! {
    #![cases(32)]

    fn lzma_roundtrip_arbitrary(data in collection::vec(any::<u8>(), 0..2048)) {
        let c = lzma_compress(&data);
        prop_assert_eq!(lzma_decompress(&c).unwrap(), data);
    }

    fn lzma_decompress_never_panics(data in collection::vec(any::<u8>(), 0..512)) {
        let _ = lzma_decompress(&data);
    }

    fn mesh_decode_never_panics(data in collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_mesh(&data);
    }

    fn texture_decompress_never_panics(data in collection::vec(any::<u8>(), 0..512)) {
        let _ = TextureCodec::decompress(&data);
    }

    fn texture_roundtrip_arbitrary_images(
        w in 1u32..40,
        h in 1u32..40,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::new(seed);
        let mut tex = Texture::new(w, h);
        for y in 0..h {
            for x in 0..w {
                tex.set(x, y, [rng.next_u32() as u8, rng.next_u32() as u8, rng.next_u32() as u8]);
            }
        }
        let d = TextureCodec::decompress(&TextureCodec::compress(&tex)).unwrap();
        prop_assert_eq!((d.width, d.height), (w, h));
    }
}
