//! Trace determinism: holo-trace's chrome://tracing export is
//! byte-identical across runs of the same seed, because every span is
//! stamped in virtual `SimTime` rather than wall clock. These tests pin
//! that property for both the point-to-point session and the N-party
//! room, plus the contract that a disabled recorder stays empty.

use holo_conf::{ParticipantConfig, Room, RoomConfig};
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::session::{Session, SessionConfig};
use semholo::{SceneSource, SemHoloConfig, SemanticPipeline};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The enable flag is process-wide; serialize tests that toggle or
/// observe it so parallel test threads don't race each other.
static TRACE_FLAG: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

fn scene() -> SceneSource {
    let config = SemHoloConfig {
        capture_resolution: (48, 36),
        camera_count: 2,
        ..Default::default()
    };
    SceneSource::new(&config, 0.5)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(name)
}

#[test]
fn session_trace_is_byte_identical_across_runs() {
    let _guard = lock();
    let scene = scene();
    let run = |path: &Path| {
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
        let mut session = Session::new(SessionConfig::default());
        session.run_traced(&mut pipeline, &scene, 6, path).unwrap()
    };
    let p1 = tmp("semholo_trace_det_session_a.json");
    let p2 = tmp("semholo_trace_det_session_b.json");
    let (_, t1) = run(&p1);
    let (_, t2) = run(&p2);
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    assert!(!b1.is_empty());
    assert_eq!(b1, b2, "same-seed session traces must be byte-identical");
    assert_eq!(t1.table(), t2.table());
    // The five pipeline stages cover every frame.
    for stage in ["extract", "encode", "transmit", "decode", "render"] {
        assert_eq!(t1.get(stage).map(|s| s.count), Some(6), "stage {stage}");
    }
    holo_runtime::ser::parse(std::str::from_utf8(&b1).unwrap())
        .expect("chrome trace must be valid JSON");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn room_trace_is_byte_identical_across_runs() {
    let _guard = lock();
    let scene = scene();
    let run = |path: &Path| {
        let cfg = RoomConfig {
            participants: ParticipantConfig::uniform_room(3, 25e6),
            frames: 4,
            seed: 11,
            share_encoder: true,
            ..Default::default()
        };
        let mut room = Room::new(cfg).unwrap();
        let mut pipes: Vec<Box<dyn SemanticPipeline>> = vec![Box::new(KeypointPipeline::new(
            KeypointConfig { resolution: 24, ..Default::default() },
            7,
        ))];
        room.run_traced(&scene, &mut pipes, path).unwrap()
    };
    let p1 = tmp("semholo_trace_det_room_a.json");
    let p2 = tmp("semholo_trace_det_room_b.json");
    let (r1, t1) = run(&p1);
    let (_, t2) = run(&p2);
    assert_eq!(r1.participants, 3);
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    assert_eq!(b1, b2, "same-seed room traces must be byte-identical");
    assert_eq!(t1.table(), t2.table());
    // 3 senders x 4 frames, each fanned out to 2 subscribers.
    assert_eq!(t1.get("room.extract").map(|s| s.count), Some(12));
    assert_eq!(t1.get("room.uplink").map(|s| s.count), Some(12));
    assert_eq!(t1.get("room.forward").map(|s| s.count), Some(24));
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn disabled_recorder_stays_empty() {
    let _guard = lock();
    if holo_trace::enabled() {
        // SEMHOLO_TRACE=1 in the environment: the disabled-path contract
        // can't be observed in this process.
        return;
    }
    holo_trace::reset();
    let scene = scene();
    let mut pipeline =
        KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
    let mut session = Session::new(SessionConfig::default());
    session.run(&mut pipeline, &scene, 3).unwrap();
    let (spans, counters) = holo_trace::with_recorder(|r| {
        (r.spans.len(), r.metrics.counters.len())
    });
    assert_eq!(spans, 0, "disabled tracing must record no spans");
    assert_eq!(counters, 0, "disabled tracing must record no counters");
}
