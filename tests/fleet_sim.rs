//! Fleet-level conformance: embedding fidelity, the cascade invariant,
//! and thread-count byte-identity.
//!
//! The fleet's contract has three load-bearing claims:
//! 1. a 1-node fleet is *exactly* a standalone `holo_conf::Room` — the
//!    embedding adds nothing unless a room spans nodes;
//! 2. cascade forwarding ships one copy per (publisher, edge, frame),
//!    never one per remote subscriber, and the saving is measured in
//!    bytes on the inter-node links;
//! 3. `SEMHOLO_THREADS` is a pure wall-clock knob: the `FleetReport`
//!    renders byte-identically at 1, 2, and 8 threads.

use holo_conf::{ParticipantConfig, Room, RoomConfig};
use holo_fleet::{
    room_seed, run_fleet, FleetConfig, FleetTopology, PolicyKind, RoomSpec,
};
use holo_runtime::par;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::semantics::SemanticPipeline;
use semholo::{SceneSource, SemHoloConfig};

fn scene() -> SceneSource {
    let config =
        SemHoloConfig { capture_resolution: (48, 36), camera_count: 2, ..Default::default() };
    SceneSource::new(&config, 0.5)
}

fn make_pipeline(room: usize) -> Box<dyn SemanticPipeline> {
    Box::new(KeypointPipeline::new(
        KeypointConfig { resolution: 24, ..Default::default() },
        room as u64,
    ))
}

#[test]
fn one_node_fleet_reproduces_standalone_room_byte_for_byte() {
    let scene = scene();
    let fleet_cfg = FleetConfig {
        topology: FleetTopology::single(1e9),
        rooms: vec![RoomSpec::uniform(3, 0, 25e6)],
        frames: 5,
        seed: 42,
        ..Default::default()
    };
    let run = run_fleet(&fleet_cfg, &scene, &make_pipeline).unwrap();

    // The standalone twin: same participants, same derived room seed,
    // same pipeline seed the fleet hands room 0.
    let standalone_cfg = RoomConfig {
        participants: ParticipantConfig::uniform_room(3, 25e6),
        frames: 5,
        keyframe_interval: fleet_cfg.keyframe_interval,
        latency_budget_ms: fleet_cfg.latency_budget_ms,
        seed: room_seed(42, 0),
        share_encoder: true,
        ..Default::default()
    };
    let mut pipelines = vec![make_pipeline(0)];
    let standalone =
        Room::new(standalone_cfg).unwrap().run(&scene, &mut pipelines).unwrap();
    assert_eq!(
        run.rooms[0].render(),
        standalone.render(),
        "a 1-node fleet must add nothing to the embedded room"
    );
    // And the fleet knows no cascade traffic existed.
    assert_eq!(run.report.cascade_bytes_offered, 0);
    assert_eq!(run.report.first_bottleneck.contains("cascade"), false);
}

#[test]
fn cascade_ships_one_copy_per_link_and_beats_naive_forwarding() {
    // A 6-party room split 3/3 across two single-node regions; home is
    // node 0 (majority tie breaks low).
    let frames = 4;
    let cfg = FleetConfig {
        topology: FleetTopology::uniform(2, 1, 1e9, 1e9, 1.0, 20.0),
        rooms: vec![RoomSpec {
            participant_regions: vec![0, 0, 0, 1, 1, 1],
            access_bps: 50e6,
        }],
        policy: PolicyKind::RoundRobin,
        frames,
        seed: 7,
        ..Default::default()
    };
    let run = run_fleet(&cfg, &scene(), &make_pipeline).unwrap();
    assert_eq!(run.placements[0].home, 0);

    let edge = |from: usize, to: usize| {
        run.report
            .cascade_edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .unwrap_or_else(|| panic!("missing cascade edge {from}->{to}"))
    };
    // Uplink leg: publishers 3,4,5 each ship one copy per frame 1->0.
    let e10 = edge(1, 0);
    assert_eq!(e10.offered_copies as usize, 3 * frames);
    // Fan-out leg: every publisher has >= 1 subscriber on node 1, so
    // 0->1 carries exactly one copy per publisher per frame — 6, not
    // the per-subscriber 15.
    let e01 = edge(0, 1);
    assert_eq!(e01.offered_copies as usize, 6 * frames);

    // Byte accounting. All copies of a frame share its wire size, so
    // with W = total wire bytes of one stream over the run:
    //   cascade = 3W (uplinks) + 6W (fan-out) = 9W = 3 * e10_bytes
    //   naive   = 3W + (3*3 + 3*2)W          = 18W = 6 * e10_bytes
    assert_eq!(run.report.cascade_bytes_offered, 3 * e10.offered_bytes);
    assert_eq!(run.report.naive_bytes_offered, 6 * e10.offered_bytes);
    assert!(
        run.report.cascade_bytes_offered < run.report.naive_bytes_offered,
        "cascade must save inter-node bytes"
    );
    assert!((run.report.cascade_savings() - 0.5).abs() < 1e-12, "9W of 18W saved");
}

#[test]
fn fleet_report_byte_identical_across_thread_counts() {
    let cfg = FleetConfig {
        topology: FleetTopology::uniform(2, 2, 1e9, 1e9, 1.0, 20.0),
        rooms: vec![
            RoomSpec::uniform(3, 0, 25e6),
            RoomSpec { participant_regions: vec![0, 1, 1], access_bps: 25e6 },
            RoomSpec::uniform(4, 1, 25e6),
            RoomSpec { participant_regions: vec![0, 0, 1], access_bps: 10e6 },
        ],
        frames: 4,
        seed: 9,
        ..Default::default()
    };
    let scene = scene();
    let render_at = |threads: usize| {
        par::set_thread_override(Some(threads));
        let run = run_fleet(&cfg, &scene, &make_pipeline).unwrap();
        par::set_thread_override(None);
        (run.report.render(), run.rooms.iter().map(|r| r.render()).collect::<Vec<_>>())
    };
    let (report1, rooms1) = render_at(1);
    for t in [2usize, 8] {
        let (report_t, rooms_t) = render_at(t);
        assert_eq!(report1, report_t, "FleetReport diverged at SEMHOLO_THREADS={t}");
        assert_eq!(rooms1, rooms_t, "per-room reports diverged at SEMHOLO_THREADS={t}");
    }
}
