//! Hostile-wire acceptance: every decoder survives systematic
//! truncation and corruption (DESIGN.md §9).
//!
//! Where `examples/fuzz_sweep.rs` samples the hostile-input space with
//! seeded mutants, this test walks parts of it *exhaustively*: every
//! 1-byte truncation prefix of every corpus item for every decode
//! target, and every single-bit flip of a wire envelope. The fuzz
//! registry doubles as the test's work list, so a decoder added there
//! is automatically swept here too.

use holo_fuzz::{registry, Mutator};
use holo_net::wire::{PayloadKind, WireFrame, MAX_WIRE_PAYLOAD, WIRE_HEADER_BYTES};
use holo_runtime::bytes::Bytes;
use holo_runtime::check::{any, collection};
use holo_runtime::ser::DecodeError;
use holo_runtime::{holo_prop, prop_assert, prop_assert_eq};

const SEED: u64 = 7;

/// Every prefix of every corpus item decodes without panicking — a
/// frame that stops mid-field is the single most common hostile input.
/// (Whether a given prefix is an `Err` depends on the format: range
/// coders can terminate early on a shorter valid stream. Panicking or
/// hanging is the only forbidden outcome; strict formats are pinned
/// strict below.)
#[test]
fn every_truncation_of_every_corpus_item_is_survived() {
    let mut decodes = 0usize;
    for target in registry(SEED) {
        for item in &target.corpus {
            for cut in 0..item.len() {
                let _ = (target.decode)(&item[..cut]);
                decodes += 1;
            }
            (target.decode)(item).unwrap_or_else(|e| {
                panic!("{}: untruncated corpus item must decode: {e}", target.name)
            });
        }
    }
    assert!(decodes > 2_000, "truncation sweep too small: {decodes}");
}

/// Length-framed formats must call every truncation what it is: an
/// error, never a silent partial success.
#[test]
fn strict_formats_reject_every_truncation() {
    for target in registry(SEED) {
        if !matches!(
            target.name,
            "net.wire_frame"
                | "net.uep_header"
                | "body.pose_payload"
                | "core.raw_mesh"
                | "gaussian.prebuild"
        ) {
            continue;
        }
        for item in &target.corpus {
            for cut in 0..item.len() {
                assert!(
                    (target.decode)(&item[..cut]).is_err(),
                    "{}: truncation to {cut}/{} bytes decoded",
                    target.name,
                    item.len()
                );
            }
        }
    }
}

/// Seeded bit-flips across every target: no panic, and for the
/// CRC-framed wire envelope, *every* flip is rejected.
#[test]
fn seeded_bit_flips_never_panic_and_crc_catches_all() {
    for target in registry(SEED) {
        let mut mutator = Mutator::new(SEED ^ target.corpus.len() as u64);
        for _ in 0..500 {
            let (mutant, _) = mutator.next_mutant(&target.corpus);
            let _ = (target.decode)(&mutant);
        }
        if matches!(target.name, "net.wire_frame" | "net.uep_header") {
            for item in &target.corpus {
                for bit in 0..item.len() * 8 {
                    let mut flipped = item.clone();
                    flipped[bit / 8] ^= 1 << (bit % 8);
                    assert!(
                        (target.decode)(&flipped).is_err(),
                        "{} accepted a flip of bit {bit}",
                        target.name
                    );
                }
            }
        }
    }
}

/// The gaussian tier's wire path end to end: a real keyframe rides a
/// `GaussianUpdate` envelope, every single-bit flip of that envelope is
/// caught by the CRC, and the naked update stream survives truncation
/// and garbage without panicking.
#[test]
fn gaussian_update_frames_survive_the_hostile_wire() {
    let targets = registry(SEED);
    let update = targets
        .iter()
        .find(|t| t.name == "gaussian.update")
        .expect("gaussian.update registered");
    let key = update.corpus.first().expect("corpus has a keyframe");

    let envelope = WireFrame::new(PayloadKind::GaussianUpdate, 3, Bytes::from(key.clone()));
    let decoded = WireFrame::decode(&envelope.encode()).expect("own encoding decodes");
    assert!(matches!(decoded.kind, PayloadKind::GaussianUpdate));
    assert_eq!(decoded.payload.as_ref(), &key[..]);
    let encoded = envelope.encode();
    for bit in 0..encoded.len() * 8 {
        let mut flipped = encoded.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        assert!(
            WireFrame::decode(&flipped).is_err(),
            "gaussian envelope accepted a flip of bit {bit}"
        );
    }

    for cut in 0..key.len() {
        let _ = (update.decode)(&key[..cut]);
    }
    assert!((update.decode)(&[0xDE; 64]).is_err(), "update decoder accepted garbage");
    let prebuild = targets
        .iter()
        .find(|t| t.name == "gaussian.prebuild")
        .expect("gaussian.prebuild registered");
    assert!((prebuild.decode)(&[0xDE; 64]).is_err(), "prebuild decoder accepted garbage");
}

/// The typed taxonomy is load-bearing: specific corruptions land in
/// their specific variants.
#[test]
fn decode_errors_carry_their_taxonomy() {
    let frame = WireFrame::new(PayloadKind::Text, 5, Bytes::from(vec![1u8, 2, 3])).encode();
    // Header cut: Truncated, with the missing field's honest numbers.
    match WireFrame::decode(&frame[..10]) {
        Err(DecodeError::Truncated { needed, available }) => {
            assert!(needed > available, "shortfall must be real: {needed} vs {available}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    // Wrong magic: BadMagic.
    let mut bad_magic = frame.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(WireFrame::decode(&bad_magic), Err(DecodeError::BadMagic { .. })));
    // Payload flip: BadChecksum.
    let mut bad_payload = frame.clone();
    *bad_payload.last_mut().unwrap() ^= 0x01;
    assert!(matches!(WireFrame::decode(&bad_payload), Err(DecodeError::BadChecksum { .. })));
    // Forged length field (offset 14): LimitExceeded before allocation.
    let mut inflated = frame;
    inflated[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    match WireFrame::decode(&inflated) {
        Err(DecodeError::LimitExceeded { limit, .. }) => {
            assert_eq!(limit, MAX_WIRE_PAYLOAD as u64);
        }
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

/// The UEP header's taxonomy under targeted forgeries: semantically
/// absurd stripe geometry must be caught even when the CRC is honestly
/// recomputed over the forged fields (an attacker controls the whole
/// 19 bytes, so the CRC alone proves nothing about semantics).
#[test]
fn uep_header_rejects_honestly_checksummed_forgeries() {
    use holo_net::wire::{crc32, ImportanceClass, UepHeader, UEP_HEADER_BYTES};
    let valid = UepHeader {
        class: ImportanceClass::High,
        parity: false,
        abandonable: true,
        k: 4,
        r: 2,
        group: 7,
        index: 3,
        deadline_ms: 150,
    };
    let bytes = valid.encode();
    assert_eq!(bytes.len(), UEP_HEADER_BYTES);
    assert_eq!(UepHeader::decode(&bytes).expect("own encoding decodes"), valid);

    // Re-checksum a forged body so only the semantic checks stand
    // between the forgery and acceptance. Byte layout: magic(4)
    // class(1) flags(1) k(1) r(1) group(4) index(1) deadline(2) crc(4).
    let forge = |patch: &dyn Fn(&mut Vec<u8>)| {
        let mut b = valid.encode();
        patch(&mut b);
        let crc = crc32(&b[4..UEP_HEADER_BYTES - 4]);
        b[UEP_HEADER_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
        UepHeader::decode(&b)
    };
    assert!(forge(&|b| b[4] = 9).is_err(), "unknown class accepted");
    assert!(forge(&|b| b[5] = 0xFF).is_err(), "unknown flag bits accepted");
    assert!(forge(&|b| b[6] = 0).is_err(), "k = 0 accepted");
    assert!(forge(&|b| b[7] = 200).is_err(), "r > k accepted");
    assert!(forge(&|b| b[12] = 4).is_err(), "data index >= k accepted");
    assert!(
        forge(&|b| {
            b[5] = 0b01; // parity flag
            b[12] = 2; // index >= r
        })
        .is_err(),
        "parity index >= r accepted"
    );
    // Trailing bytes after a fully valid header are rejected too.
    let mut long = valid.encode();
    long.push(0);
    assert!(UepHeader::decode(&long).is_err(), "trailing byte accepted");
}

holo_prop! {
    #![cases(64)]

    /// WireFrame round-trips any payload bit-for-bit, and the decoded
    /// header fields survive too.
    fn wire_frame_roundtrips_any_payload(data in collection::vec(any::<u8>(), 0..4096), seq in any::<u64>()) {
        let frame = WireFrame::new(PayloadKind::Keypoints, seq, Bytes::from(data.clone()));
        let decoded = WireFrame::decode(&frame.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded.payload.as_ref(), &data[..]);
        prop_assert_eq!(decoded.seq, seq);
        prop_assert!(matches!(decoded.kind, PayloadKind::Keypoints));
    }

    /// Arbitrary bytes never decode as a frame unless they really are
    /// one (probability of forging a CRC32 + magic by chance in 64
    /// draws is negligible) — and never panic.
    fn wire_frame_rejects_arbitrary_bytes(data in collection::vec(any::<u8>(), 0..256)) {
        prop_assert!(WireFrame::decode(&data).is_err());
    }

    /// Envelope size accounting is exact for any payload size.
    fn wire_frame_size_is_header_plus_payload(data in collection::vec(any::<u8>(), 0..2048)) {
        let n = data.len();
        let encoded = WireFrame::new(PayloadKind::Control, 0, Bytes::from(data)).encode();
        prop_assert_eq!(encoded.len(), WIRE_HEADER_BYTES + n);
        prop_assert_eq!(encoded.len(), WireFrame::wire_bytes(n));
    }
}
