#!/usr/bin/env bash
# Perf regression gate: compare fresh BENCH_*.json artifacts against
# the committed baselines in baselines/bench/ with per-metric
# tolerances (see crates/holo-obs/src/gate.rs for the policy: a metric
# regresses when median_ns exceeds tolerance x baseline AND the
# absolute delta clears a noise floor; bench rows that exist on only
# one side — machine-dependent names like detected_cores=N — warn, not
# fail). Writes the machine-readable delta report to
# BENCH_gate_report.json.
#
# Usage:
#   scripts/bench_gate.sh [CURRENT_DIR]   # default: repo root (fresh artifacts)
#   scripts/bench_gate.sh --self-test     # prove the gate catches a 2x slowdown
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=baselines/bench
echo "==> building bench_gate"
cargo build -q --release --offline -p holo-obs --bin bench_gate
GATE=target/release/bench_gate

if [ "${1:-}" = "--self-test" ]; then
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/clean" "$tmp/slow"
  cp "$BASELINE"/BENCH_*.json "$tmp/clean/"
  cp "$BASELINE"/BENCH_*.json "$tmp/slow/"
  echo "==> self-test 1/2: identical copies must pass"
  "$GATE" compare "$BASELINE" "$tmp/clean" --report "$tmp/clean_report.json"
  echo "==> self-test 2/2: injected 2x slowdown must fail"
  "$GATE" scale "$tmp/slow/BENCH_fig2_quality.json" 2.0 "$tmp/slow/BENCH_fig2_quality.json"
  if "$GATE" compare "$BASELINE" "$tmp/slow" --report "$tmp/slow_report.json" >/dev/null; then
    echo "bench_gate self-test FAILED: a 2x slowdown passed the gate" >&2
    exit 1
  fi
  grep -q '"regressed"' "$tmp/slow_report.json" \
    || { echo "delta report did not record the regression" >&2; exit 1; }
  echo "bench_gate self-test OK: identical baselines pass, 2x slowdown fails"
  exit 0
fi

CURRENT="${1:-.}"
# The gaussian amortization bench is byte-derived (payload sizes and
# break-even durations, no wall clocks), so it gets a far tighter
# tolerance than the timing benches: any drift is a codec change. The
# UEP dominance permille rows are equally byte-derived (usable-frame
# rates from seeded virtual time); its honest stream timings keep the
# default tolerance via longest-prefix override matching.
"$GATE" compare "$BASELINE" "$CURRENT" --report BENCH_gate_report.json \
  --override "gaussian_amortization/=1.05" \
  --override "uep_dominance/usable_permille=1.05"
