#!/usr/bin/env bash
# Tier-1 verify for the SemHolo reproduction.
#
# The workspace is hermetic: every dependency is an in-tree crate (see
# crates/holo-runtime), so everything below runs from a cold cargo
# cache with no network. --offline makes any accidental reintroduction
# of a registry dependency fail loudly instead of hanging on a fetch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> example smoke runs (SEMHOLO_EXAMPLE_QUICK=1)"
for example in quickstart remote_collaboration telesurgery \
    semantic_taxonomy_report conference_capacity fleet_capacity \
    chaos_recovery fuzz_sweep gaussian_amortization uep_comparison; do
  echo "--> example: ${example}"
  SEMHOLO_EXAMPLE_QUICK=1 \
    cargo run -q --release --offline --example "${example}" >/dev/null
done

echo "==> trace smoke: SEMHOLO_TRACE=1 quickstart, twice, byte-identical"
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_TRACE=1 \
  cargo run -q --release --offline --example quickstart >/dev/null
mv TRACE_quickstart.json /tmp/semholo_trace_run1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_TRACE=1 \
  cargo run -q --release --offline --example quickstart >/dev/null
# The chrome trace is stamped in virtual SimTime: same seed, same bytes.
cmp /tmp/semholo_trace_run1.json TRACE_quickstart.json
# And it must be valid trace-event JSON with the five stage spans.
for stage in extract encode transmit decode render; do
  grep -q "\"name\":\"${stage}\"" TRACE_quickstart.json \
    || { echo "trace missing stage ${stage}"; exit 1; }
done
rm -f /tmp/semholo_trace_run1.json

echo "==> chaos smoke: seeded scenario matrix, twice, byte-identical"
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example chaos_recovery >/dev/null
mv RESILIENCE_chaos.json /tmp/semholo_chaos_run1.json
mv SLO_report.json /tmp/semholo_slo_run1.json
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example chaos_recovery >/dev/null
# The whole fault matrix is seeded virtual time: same seed, same bytes —
# and so are the SLO verdicts judged from it.
cmp /tmp/semholo_chaos_run1.json RESILIENCE_chaos.json
cmp /tmp/semholo_slo_run1.json SLO_report.json
rm -f /tmp/semholo_chaos_run1.json /tmp/semholo_slo_run1.json

echo "==> fuzz smoke: seeded decoder sweep, twice, byte-identical"
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example fuzz_sweep >/dev/null
mv FUZZ_report.json /tmp/semholo_fuzz_run1.json
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example fuzz_sweep >/dev/null
# Mutants, corpora, and tallies all derive from the seed: same bytes.
cmp /tmp/semholo_fuzz_run1.json FUZZ_report.json
rm -f /tmp/semholo_fuzz_run1.json

echo "==> fleet smoke: capacity search, twice, byte-identical"
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example fleet_capacity >/dev/null
mv FLEET_capacity.json /tmp/semholo_fleet_run1.json
mv SLO_fleet.json /tmp/semholo_slofleet_run1.json
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example fleet_capacity >/dev/null
# Placement, probes, and every embedded room are seeded virtual time:
# same seed, same bytes — including the attribution + SLO document.
cmp /tmp/semholo_fleet_run1.json FLEET_capacity.json
cmp /tmp/semholo_slofleet_run1.json SLO_fleet.json
rm -f /tmp/semholo_fleet_run1.json /tmp/semholo_slofleet_run1.json

echo "==> gaussian smoke: amortization frontier, twice, byte-identical"
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example gaussian_amortization >/dev/null
mv BENCH_gaussian_amortization.json /tmp/semholo_gauss_run1.json
mv GAUSSIAN_frontier.json /tmp/semholo_frontier_run1.json
SEMHOLO_EXAMPLE_QUICK=1 \
  cargo run -q --release --offline --example gaussian_amortization >/dev/null
# Every value is byte-derived (payload sizes, break-even durations) —
# no wall clocks, so the artifacts reproduce exactly.
cmp /tmp/semholo_gauss_run1.json BENCH_gaussian_amortization.json
cmp /tmp/semholo_frontier_run1.json GAUSSIAN_frontier.json
rm -f /tmp/semholo_gauss_run1.json /tmp/semholo_frontier_run1.json

echo "==> uep smoke: weighted-vs-uniform sweep, twice, byte-identical"
cargo run -q --release --offline --example uep_comparison >/dev/null
mv UEP_report.json /tmp/semholo_uep_run1.json
cargo run -q --release --offline --example uep_comparison >/dev/null
# The dominance document is seeded virtual time end to end: same seed,
# same bytes — verdicts, budgets, and per-class tallies included.
cmp /tmp/semholo_uep_run1.json UEP_report.json
rm -f /tmp/semholo_uep_run1.json

echo "==> cross-thread gate: SEMHOLO_THREADS=1 vs =8, byte-identical"
# The fork-join pool's contract (DESIGN.md §10): thread count changes
# wall-clock time only, never bytes. Run the chaos matrix and the fuzz
# sweep at both extremes and cmp the artifacts.
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=1 \
  cargo run -q --release --offline --example chaos_recovery >/dev/null
mv RESILIENCE_chaos.json /tmp/semholo_chaos_t1.json
mv SLO_report.json /tmp/semholo_slo_t1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=8 \
  cargo run -q --release --offline --example chaos_recovery >/dev/null
cmp /tmp/semholo_chaos_t1.json RESILIENCE_chaos.json
# SLO verdicts must not know how many workers judged the run.
cmp /tmp/semholo_slo_t1.json SLO_report.json
rm -f /tmp/semholo_chaos_t1.json /tmp/semholo_slo_t1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=1 \
  cargo run -q --release --offline --example fuzz_sweep >/dev/null
mv FUZZ_report.json /tmp/semholo_fuzz_t1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=8 \
  cargo run -q --release --offline --example fuzz_sweep >/dev/null
cmp /tmp/semholo_fuzz_t1.json FUZZ_report.json
rm -f /tmp/semholo_fuzz_t1.json
# Fleet: rooms fan out across the pool, cascade merge is sequential —
# the report must not know how many workers ran it.
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=1 \
  cargo run -q --release --offline --example fleet_capacity >/dev/null
mv FLEET_capacity.json /tmp/semholo_fleet_t1.json
mv SLO_fleet.json /tmp/semholo_slofleet_t1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=8 \
  cargo run -q --release --offline --example fleet_capacity >/dev/null
cmp /tmp/semholo_fleet_t1.json FLEET_capacity.json
cmp /tmp/semholo_slofleet_t1.json SLO_fleet.json
rm -f /tmp/semholo_fleet_t1.json /tmp/semholo_slofleet_t1.json
# Gaussian amortization: byte-derived artifacts must not know the
# thread count either.
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=1 \
  cargo run -q --release --offline --example gaussian_amortization >/dev/null
mv BENCH_gaussian_amortization.json /tmp/semholo_gauss_t1.json
SEMHOLO_EXAMPLE_QUICK=1 SEMHOLO_THREADS=8 \
  cargo run -q --release --offline --example gaussian_amortization >/dev/null
cmp /tmp/semholo_gauss_t1.json BENCH_gaussian_amortization.json
rm -f /tmp/semholo_gauss_t1.json
# UEP: the sweep fans plan x policy cells across the pool; the
# dominance verdicts must not know how many workers judged them.
SEMHOLO_THREADS=1 \
  cargo run -q --release --offline --example uep_comparison >/dev/null
mv UEP_report.json /tmp/semholo_uep_t1.json
SEMHOLO_THREADS=8 \
  cargo run -q --release --offline --example uep_comparison >/dev/null
cmp /tmp/semholo_uep_t1.json UEP_report.json
rm -f /tmp/semholo_uep_t1.json

if command -v cargo-clippy >/dev/null 2>&1; then
  echo "==> cargo clippy -p holo-runtime -p holo-trace -p holo-chaos -p holo-uep -p holo-fuzz -- -D warnings"
  cargo clippy -q --offline -p holo-runtime --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-trace --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-chaos --no-deps --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-uep --no-deps --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-fuzz --no-deps --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-fleet --no-deps --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-obs --no-deps --all-targets -- -D warnings
  cargo clippy -q --offline -p holo-gaussian --no-deps --all-targets -- -D warnings
else
  echo "==> clippy unavailable; skipping lint step"
fi

echo "==> bench gate self-test: injected 2x slowdown must fail the gate"
bash scripts/bench_gate.sh --self-test

echo "==> cargo bench -q --offline -- --quick"
cargo bench -q --offline --workspace -- --quick

echo "==> bench reports:"
ls -1 BENCH_*.json

echo "==> bench gate: fresh artifacts vs committed baselines (advisory)"
# --quick sampling on a shared machine is too noisy to hard-fail tier-1
# verify; the delta report still lands in BENCH_gate_report.json and a
# regression is printed loudly. CI perf runs invoke the gate directly
# (scripts/bench_gate.sh) where it does fail the build.
bash scripts/bench_gate.sh . \
  || echo "WARNING: bench gate flagged regressions (see BENCH_gate_report.json)"

echo "verify: OK"
