#!/usr/bin/env bash
# Tier-1 verify for the SemHolo reproduction.
#
# The workspace is hermetic: every dependency is an in-tree crate (see
# crates/holo-runtime), so everything below runs from a cold cargo
# cache with no network. --offline makes any accidental reintroduction
# of a registry dependency fail loudly instead of hanging on a fetch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> example smoke runs (SEMHOLO_EXAMPLE_QUICK=1)"
for example in quickstart remote_collaboration telesurgery \
    semantic_taxonomy_report conference_capacity; do
  echo "--> example: ${example}"
  SEMHOLO_EXAMPLE_QUICK=1 \
    cargo run -q --release --offline --example "${example}" >/dev/null
done

echo "==> cargo bench -q --offline -- --quick"
cargo bench -q --offline --workspace -- --quick

echo "==> bench reports:"
ls -1 BENCH_*.json

echo "verify: OK"
