//! Workspace host crate for the SemHolo reproduction.
//!
//! This crate exists to anchor the workspace-level `examples/` (runnable
//! scenario binaries) and `tests/` (cross-crate integration and property
//! tests); the library surface lives in the member crates:
//!
//! - [`semholo`] — the paper's contribution (pipelines, sessions, QoE).
//! - `holo-*` — the substrates (math, mesh, body, compress, capture,
//!   keypoints, neural, textsem, gaze, net, gpu).
//!
//! See `README.md` for the map and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology and results.

/// Re-export of the core crate for convenience in examples and tests.
pub use semholo;
