//! Opt-in allocation tracking for the fuzz sweep.
//!
//! The hostile-input contract bounds not just what a decoder *returns*
//! but what it *allocates on the way*: a forged length field must be
//! rejected before it sizes a `Vec`, not after. To observe that, the
//! fuzz binary (and only the fuzz binary) installs [`TrackingAllocator`]
//! as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: holo_fuzz::TrackingAllocator = holo_fuzz::TrackingAllocator;
//! ```
//!
//! The allocator forwards to the system allocator and keeps **per
//! thread** counters — live bytes and a high-water mark — in const-init
//! `thread_local!` cells (no lazy init, no destructor, so the hooks are
//! allocation-free and safe even during TLS teardown). Per-thread is
//! what makes the sweep parallelizable: each decode call runs entirely
//! on one fork-join worker, so its watermark bracket sees only its own
//! allocations and the measured peaks are identical at any
//! `SEMHOLO_THREADS`. Global counters would interleave concurrent
//! decodes and corrupt every delta.
//!
//! A buffer allocated on one thread and freed on another (e.g. a work
//! chunk handed to a worker) decrements the freeing thread's live
//! count, which saturates at zero; that can only happen *between*
//! watermark brackets, and [`reset_watermark`] re-baselines, so decode
//! deltas stay exact. When the allocator is *not* installed (library
//! consumers, ordinary test binaries), the counters never move,
//! [`installed`] stays false, and the harness skips the cap check — the
//! sweep still verifies "never panics" and "round-trips".

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static LIVE: Cell<usize> = const { Cell::new(0) };
    static PEAK: Cell<usize> = const { Cell::new(0) };
}

/// A counting wrapper around the system allocator (see module docs).
pub struct TrackingAllocator;

fn on_alloc(size: usize) {
    INSTALLED.store(true, Relaxed);
    // `try_with`: never panic inside the allocator, even if a late
    // allocation lands while this thread's TLS is being torn down.
    let _ = LIVE.try_with(|live| {
        let now = live.get() + size;
        live.set(now);
        let _ = PEAK.try_with(|peak| peak.set(peak.get().max(now)));
    });
}

fn on_dealloc(size: usize) {
    let _ = LIVE.try_with(|live| live.set(live.get().saturating_sub(size)));
}

// SAFETY: pure pass-through to `System`; the counters carry no safety
// obligations.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_dealloc(layout.size());
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// True once the tracking allocator has served at least one allocation
/// — i.e. it is this binary's global allocator.
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// Bytes currently allocated by this thread (0 when not installed).
pub fn live_bytes() -> usize {
    LIVE.try_with(Cell::get).unwrap_or(0)
}

/// Reset this thread's high-water mark to its current live count;
/// returns the baseline the next [`peak_since`] call should subtract.
pub fn reset_watermark() -> usize {
    LIVE.try_with(|live| {
        let now = live.get();
        let _ = PEAK.try_with(|peak| peak.set(now));
        now
    })
    .unwrap_or(0)
}

/// Peak bytes this thread allocated above `baseline` since the matching
/// [`reset_watermark`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.try_with(Cell::get).unwrap_or(0).saturating_sub(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_inert_without_installation() {
        // This test binary does not install the allocator, so nothing
        // moves — which is exactly the library-consumer contract.
        let base = reset_watermark();
        let v = vec![0u8; 1 << 16];
        assert_eq!(peak_since(base), 0);
        assert!(!installed());
        drop(v);
    }
}
