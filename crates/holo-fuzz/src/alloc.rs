//! Opt-in allocation tracking for the fuzz sweep.
//!
//! The hostile-input contract bounds not just what a decoder *returns*
//! but what it *allocates on the way*: a forged length field must be
//! rejected before it sizes a `Vec`, not after. To observe that, the
//! fuzz binary (and only the fuzz binary) installs [`TrackingAllocator`]
//! as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: holo_fuzz::TrackingAllocator = holo_fuzz::TrackingAllocator;
//! ```
//!
//! The allocator forwards to the system allocator and keeps two relaxed
//! atomic counters: live bytes and a high-water mark. The harness
//! resets the mark around each decode call and compares the delta
//! against the target's declared cap. When the allocator is *not*
//! installed (library consumers, ordinary test binaries), the counters
//! never move, [`installed`] stays false, and the harness skips the cap
//! check — the sweep still verifies "never panics" and "round-trips".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A counting wrapper around the system allocator (see module docs).
pub struct TrackingAllocator;

fn on_alloc(size: usize) {
    INSTALLED.store(true, Relaxed);
    let live = LIVE.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Relaxed);
}

// SAFETY: pure pass-through to `System`; the counters carry no safety
// obligations.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_dealloc(layout.size());
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// True once the tracking allocator has served at least one allocation
/// — i.e. it is this binary's global allocator.
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// Bytes currently allocated (0 when not installed).
pub fn live_bytes() -> usize {
    LIVE.load(Relaxed)
}

/// Reset the high-water mark to the current live count; returns the
/// baseline the next [`peak_since`] call should subtract.
pub fn reset_watermark() -> usize {
    let live = LIVE.load(Relaxed);
    PEAK.store(live, Relaxed);
    live
}

/// Peak bytes allocated above `baseline` since the matching
/// [`reset_watermark`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Relaxed).saturating_sub(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_inert_without_installation() {
        // This test binary does not install the allocator, so nothing
        // moves — which is exactly the library-consumer contract.
        let base = reset_watermark();
        let v = vec![0u8; 1 << 16];
        assert_eq!(peak_since(base), 0);
        assert!(!installed());
        drop(v);
    }
}
