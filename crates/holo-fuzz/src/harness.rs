//! The sweep: mutate → decode → tally, and the canonical report.
//!
//! [`run_sweep`] drives every registry target through
//! `mutations_per_target` seeded mutants inside `catch_unwind` (with
//! the panic hook silenced for the duration, so a sweep over millions
//! of rejects does not spray backtraces). Per decode call it measures
//! the peak-allocation delta when the fuzz binary installed
//! [`crate::TrackingAllocator`].
//!
//! The sweep fans out over the deterministic fork-join pool. Each
//! target's mutant budget is cut into fixed [`CHUNK_MUTANTS`]-sized
//! chunks with their own derived mutator seeds, the flattened
//! `targets × chunks` work list runs through
//! `holo_trace::parallel::par_map`, and the per-chunk tallies fold back
//! per target in chunk order. Because the chunk layout and seeds are a
//! pure function of the config — never of the thread count — the report
//! is byte-identical across `SEMHOLO_THREADS=1..N`.
//!
//! The resulting [`FuzzReport`] contains only seed-determined numbers —
//! no wall clock, no addresses, fixed taxonomy order — and renders
//! through `holo_runtime::ser`'s canonical JSON, so two same-seed runs
//! produce byte-identical `FUZZ_report.json`. That byte-compare is part
//! of `scripts/verify.sh`.

use crate::alloc;
use crate::mutate::{Mutator, MUTATION_NAMES};
use crate::targets::{registry, Target};
use holo_runtime::ser::{JsonValue, ToJson};
use std::panic::{self, AssertUnwindSafe};

/// Fixed taxonomy order for per-kind reject counts (matches
/// `DecodeError::kind`).
const KINDS: [&str; 5] = ["truncated", "bad_magic", "bad_checksum", "limit_exceeded", "corrupt"];

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; corpora, mutants, and the report all derive from it.
    pub seed: u64,
    /// Mutants per decode target (the acceptance floor is 10 000).
    pub mutations_per_target: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self { seed: 7, mutations_per_target: 10_000 }
    }
}

/// One target's sweep outcome.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// Target name from the registry.
    pub name: String,
    /// Corpus size.
    pub corpus: usize,
    /// Corpus items that round-tripped (must equal `corpus`).
    pub corpus_ok: usize,
    /// Mutants decoded.
    pub mutations: usize,
    /// Mutants the decoder accepted (decoded to `Ok`).
    pub accepted: usize,
    /// Mutants rejected with a typed error.
    pub rejected: usize,
    /// Rejections per taxonomy kind, in [`struct@KINDS`] order.
    pub rejected_by_kind: [usize; 5],
    /// Panics caught (the contract demands zero).
    pub panics: usize,
    /// Largest peak-allocation delta observed across calls, bytes
    /// (0 when the tracking allocator is not installed).
    pub max_alloc: usize,
    /// The target's declared cap, bytes.
    pub alloc_cap: usize,
    /// Calls whose peak allocation exceeded the cap (must be zero).
    pub cap_exceeded: usize,
    /// Per-mutator-family mutant counts, in
    /// [`MUTATION_NAMES`] order.
    pub by_family: [usize; 5],
}

impl TargetReport {
    /// True when this target upheld the whole hostile-input contract.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.cap_exceeded == 0 && self.corpus_ok == self.corpus
    }
}

impl ToJson for TargetReport {
    fn to_json(&self) -> JsonValue {
        let kinds = JsonValue::obj(
            KINDS.iter().zip(self.rejected_by_kind).map(|(k, n)| (*k, n.to_json())),
        );
        let families = JsonValue::obj(
            MUTATION_NAMES.iter().zip(self.by_family).map(|(k, n)| (*k, n.to_json())),
        );
        JsonValue::obj([
            ("name", self.name.to_json()),
            ("corpus", self.corpus.to_json()),
            ("corpus_ok", self.corpus_ok.to_json()),
            ("mutations", self.mutations.to_json()),
            ("accepted", self.accepted.to_json()),
            ("rejected", self.rejected.to_json()),
            ("rejected_by_kind", kinds),
            ("panics", self.panics.to_json()),
            ("max_alloc", self.max_alloc.to_json()),
            ("alloc_cap", self.alloc_cap.to_json()),
            ("cap_exceeded", self.cap_exceeded.to_json()),
            ("by_family", families),
        ])
    }
}

/// The whole sweep's outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Master seed.
    pub seed: u64,
    /// Mutants per target.
    pub mutations_per_target: usize,
    /// Whether allocation caps were actually enforced (the tracking
    /// allocator was installed in this binary).
    pub alloc_tracking: bool,
    /// Per-target outcomes, registry order.
    pub targets: Vec<TargetReport>,
}

impl FuzzReport {
    /// True when every target upheld the contract.
    pub fn clean(&self) -> bool {
        self.targets.iter().all(TargetReport::clean)
    }

    /// Total panics across targets.
    pub fn panics(&self) -> usize {
        self.targets.iter().map(|t| t.panics).sum()
    }

    /// Canonical JSON (deterministic order; seed-determined values
    /// only).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("seed", self.seed.to_json()),
            ("mutations_per_target", self.mutations_per_target.to_json()),
            ("alloc_tracking", self.alloc_tracking.to_json()),
            ("targets", self.targets.to_json()),
        ])
    }

    /// The canonical `FUZZ_report.json` bytes.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// Stable per-target seed stream: FNV-1a over the name folded into the
/// master seed.
fn target_seed(seed: u64, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^ h
}

/// Mutants per fork-join work chunk. Fixed — never derived from the
/// thread count — so the chunk layout, every chunk's mutator seed, and
/// therefore every tally in the report are identical at any
/// `SEMHOLO_THREADS`. Chunk 0 reuses the bare target seed, so sweeps of
/// up to `CHUNK_MUTANTS` mutants reproduce the pre-chunking mutant
/// stream exactly.
pub const CHUNK_MUTANTS: usize = 250;

/// Per-chunk mutator seed: splitmix-style odd-constant stride off the
/// target seed (chunk 0 = the target seed itself).
fn chunk_seed(base: u64, chunk: usize) -> u64 {
    base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk as u64))
}

/// The fixed chunk layout for one target's budget: `(chunk index,
/// mutants in chunk)`. Always at least one chunk, so the corpus
/// round-trip check (folded into chunk 0) runs even at zero mutants.
fn chunk_plan(total: usize) -> Vec<(usize, usize)> {
    let chunks = total.div_ceil(CHUNK_MUTANTS).max(1);
    (0..chunks)
        .map(|c| {
            let lo = c * CHUNK_MUTANTS;
            let hi = (lo + CHUNK_MUTANTS).min(total);
            (c, hi - lo)
        })
        .collect()
}

/// One chunk's tally — a slice of a target's sweep, folded back into
/// the [`TargetReport`] in chunk order.
#[derive(Default)]
struct ChunkTally {
    corpus_ok: usize,
    mutations: usize,
    accepted: usize,
    rejected: usize,
    rejected_by_kind: [usize; 5],
    panics: usize,
    max_alloc: usize,
    cap_exceeded: usize,
    by_family: [usize; 5],
}

impl TargetReport {
    /// Fold one chunk's tally in. Counters add and `max_alloc` takes
    /// the max, so the fold is exact and chunk-order-insensitive — but
    /// the caller folds in chunk order anyway, by construction.
    fn absorb(&mut self, c: &ChunkTally) {
        self.corpus_ok += c.corpus_ok;
        self.mutations += c.mutations;
        self.accepted += c.accepted;
        self.rejected += c.rejected;
        for (a, b) in self.rejected_by_kind.iter_mut().zip(c.rejected_by_kind) {
            *a += b;
        }
        self.panics += c.panics;
        self.max_alloc = self.max_alloc.max(c.max_alloc);
        self.cap_exceeded += c.cap_exceeded;
        for (a, b) in self.by_family.iter_mut().zip(c.by_family) {
            *a += b;
        }
    }
}

/// An empty report shell for `target`, ready to absorb chunk tallies.
fn empty_report(target: &Target) -> TargetReport {
    TargetReport {
        name: target.name.to_string(),
        corpus: target.corpus.len(),
        corpus_ok: 0,
        mutations: 0,
        accepted: 0,
        rejected: 0,
        rejected_by_kind: [0; 5],
        panics: 0,
        max_alloc: 0,
        alloc_cap: target.alloc_cap,
        cap_exceeded: 0,
        by_family: [0; 5],
    }
}

/// Decode `data` under panic capture and allocation watermarking.
/// Returns `(outcome, peak_alloc)`; `outcome` is `None` on panic.
fn guarded_decode(
    target: &Target,
    data: &[u8],
) -> (Option<Result<(), holo_runtime::ser::DecodeError>>, usize) {
    let baseline = alloc::reset_watermark();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| (target.decode)(data))).ok();
    (outcome, alloc::peak_since(baseline))
}

/// Run one chunk of a target's sweep: the corpus round-trip check when
/// `check_corpus` (chunk 0 only), then `mutants` seeded mutants.
fn sweep_chunk(
    target: &Target,
    base_seed: u64,
    chunk: usize,
    mutants: usize,
    check_corpus: bool,
) -> ChunkTally {
    let mut tally = ChunkTally::default();
    // Leg 3 of the contract: valid input round-trips.
    if check_corpus {
        for item in &target.corpus {
            if matches!(guarded_decode(target, item).0, Some(Ok(()))) {
                tally.corpus_ok += 1;
            }
        }
    }
    // Legs 1 and 2: mutants never panic, never out-allocate the cap.
    let mut mutator = Mutator::new(chunk_seed(base_seed, chunk));
    for _ in 0..mutants {
        let (mutant, family) = mutator.next_mutant(&target.corpus);
        tally.by_family[family] += 1;
        tally.mutations += 1;
        let (outcome, peak) = guarded_decode(target, &mutant);
        tally.max_alloc = tally.max_alloc.max(peak);
        if peak > target.alloc_cap {
            tally.cap_exceeded += 1;
        }
        match outcome {
            None => tally.panics += 1,
            Some(Ok(())) => tally.accepted += 1,
            Some(Err(e)) => {
                tally.rejected += 1;
                let k = KINDS.iter().position(|k| *k == e.kind()).unwrap_or(KINDS.len() - 1);
                tally.rejected_by_kind[k] += 1;
            }
        }
    }
    tally
}

/// Run one target's whole sweep inline (no pool) — same chunk layout
/// and seeds as [`run_sweep`], so the tallies are identical. Test-only:
/// the panic-propagation test needs a sweep without the pool in the way.
#[cfg(test)]
fn sweep_target(cfg: &FuzzConfig, target: &Target) -> TargetReport {
    let base = target_seed(cfg.seed, target.name);
    let mut report = empty_report(target);
    for (chunk, mutants) in chunk_plan(cfg.mutations_per_target) {
        report.absorb(&sweep_chunk(target, base, chunk, mutants, chunk == 0));
    }
    report
}

/// Run the full sweep over [`registry`]. The process panic hook is
/// silenced for the duration and restored afterwards (even if the
/// harness itself unwinds); the hook is process-global, so fork-join
/// workers inherit the silence.
pub fn run_sweep(cfg: &FuzzConfig) -> FuzzReport {
    type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(hook) = self.0.take() {
                panic::set_hook(hook);
            }
        }
    }
    let guard = HookGuard(Some(panic::take_hook()));
    panic::set_hook(Box::new(|_| {}));

    let targets = registry(cfg.seed);
    // Flatten `targets × chunks` into one work list: chunk-granular
    // items load-balance across targets of very different decode cost,
    // and the fixed layout keeps every tally thread-count-independent.
    let plan = chunk_plan(cfg.mutations_per_target);
    let mut specs: Vec<(usize, usize, usize)> = Vec::with_capacity(targets.len() * plan.len());
    for ti in 0..targets.len() {
        for &(chunk, mutants) in &plan {
            specs.push((ti, chunk, mutants));
        }
    }
    let targets_ref = &targets;
    let seed = cfg.seed;
    let tallies = holo_trace::parallel::par_map(specs, move |(ti, chunk, mutants)| {
        let t = &targets_ref[ti];
        (ti, sweep_chunk(t, target_seed(seed, t.name), chunk, mutants, chunk == 0))
    });

    let mut reports: Vec<TargetReport> = targets.iter().map(empty_report).collect();
    // par_map returns in input order, so each target folds its chunks
    // in chunk order.
    for (ti, tally) in &tallies {
        reports[*ti].absorb(tally);
    }
    let report = FuzzReport {
        seed: cfg.seed,
        mutations_per_target: cfg.mutations_per_target,
        alloc_tracking: alloc::installed(),
        targets: reports,
    };
    drop(guard);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FuzzConfig {
        FuzzConfig { seed: 7, mutations_per_target: 120 }
    }

    #[test]
    fn sweep_finds_no_contract_violations() {
        let report = run_sweep(&quick());
        assert!(report.clean(), "contract violated: {report:?}");
        assert_eq!(report.panics(), 0);
        for t in &report.targets {
            assert_eq!(t.corpus_ok, t.corpus, "{} corpus broken", t.name);
            assert_eq!(t.mutations, 120);
            assert!(t.rejected > 0, "{} rejected nothing — mutator too gentle", t.name);
        }
    }

    #[test]
    fn report_is_byte_identical_per_seed() {
        let a = run_sweep(&quick());
        let b = run_sweep(&quick());
        assert_eq!(a.render(), b.render());
        let c = run_sweep(&FuzzConfig { seed: 8, mutations_per_target: 120 });
        assert_ne!(a.render(), c.render(), "seed must be observable");
        holo_runtime::ser::parse(&a.render()).expect("canonical JSON parses");
    }

    #[test]
    fn truncations_land_in_the_truncated_bucket() {
        // The taxonomy must be meaningful, not decorative: across the
        // sweep, truncation rejections show up under their own kind.
        let report = run_sweep(&quick());
        let truncated: usize = report.targets.iter().map(|t| t.rejected_by_kind[0]).sum();
        assert!(truncated > 0, "no Truncated rejections anywhere: {report:?}");
        let checksum: usize = report
            .targets
            .iter()
            .find(|t| t.name == "net.wire_frame")
            .map(|t| t.rejected_by_kind[2] + t.rejected_by_kind[0] + t.rejected_by_kind[1])
            .unwrap_or(0);
        assert!(checksum > 0, "wire frames never tripped magic/CRC/truncation");
    }

    #[test]
    fn chunk_layout_is_fixed_and_chunk_zero_preserves_the_stream() {
        // Chunk 0 must replay the pre-chunking mutant stream: same seed.
        assert_eq!(chunk_seed(42, 0), 42);
        assert_ne!(chunk_seed(42, 1), chunk_seed(42, 2));
        // The layout is a pure function of the budget.
        assert_eq!(chunk_plan(0), vec![(0, 0)]);
        assert_eq!(chunk_plan(120), vec![(0, 120)]);
        assert_eq!(chunk_plan(250), vec![(0, 250)]);
        assert_eq!(chunk_plan(600), vec![(0, 250), (1, 250), (2, 100)]);
    }

    #[test]
    fn sweep_is_thread_count_independent() {
        use holo_runtime::par;
        // 300 mutants per target spans two chunks, so the fold across
        // chunk boundaries is exercised, not just single-chunk targets.
        let cfg = FuzzConfig { seed: 7, mutations_per_target: 300 };
        par::set_thread_override(Some(1));
        let one = run_sweep(&cfg).render();
        par::set_thread_override(Some(8));
        let eight = run_sweep(&cfg).render();
        par::set_thread_override(None);
        assert_eq!(one, eight, "FUZZ report bytes diverged across thread counts");
    }

    #[test]
    fn panic_capture_actually_captures() {
        // A deliberately broken target proves the harness would see a
        // real panic rather than aborting the sweep.
        let bad = Target {
            name: "test.panics",
            corpus: vec![vec![1, 2, 3]],
            alloc_cap: 1 << 20,
            decode: Box::new(|d| {
                assert!(d.len() > 2, "boom");
                Ok(())
            }),
        };
        let cfg = FuzzConfig { seed: 1, mutations_per_target: 50 };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = sweep_target(&cfg, &bad);
        std::panic::set_hook(prev);
        assert!(report.panics > 0, "harness missed the panic: {report:?}");
        assert!(!report.clean());
    }
}
