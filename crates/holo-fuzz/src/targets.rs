//! The decode-target registry: every public SemHolo wire decoder
//! behind one closure type.
//!
//! A [`Target`] bundles a decoder with its corpus and its declared
//! allocation cap. Stateful decoders (temporal mesh, pose delta) are
//! rebuilt and primed with a *valid* keyframe on every call, so each
//! mutant sees the same decoder state — determinism and isolation in
//! one move.
//!
//! Caps are deliberate tripwires, not tight bounds: corpus inputs are a
//! few KB, so an honest decoder peaks in the low megabytes (LZMA's
//! ratio cap × input size). A decoder that feeds a forged count into
//! `Vec::with_capacity` before validating it blows through 64 MiB
//! instantly.

use crate::corpus;
use holo_gaussian::{GaussianUpdateConfig, GaussianUpdateDecoder};
use holo_keypoints::posedelta::{PoseDeltaConfig, PoseDeltaDecoder};
use holo_runtime::ser::DecodeError;

/// One fuzzed decoder.
pub struct Target {
    /// Stable name (keys the report; dotted `crate.decoder` form).
    pub name: &'static str,
    /// Real encoder outputs mutants derive from.
    pub corpus: Vec<Vec<u8>>,
    /// Peak-allocation cap per decode call, bytes.
    pub alloc_cap: usize,
    /// The decoder under test. `Send + Sync` so the sweep can share
    /// the registry across fork-join workers; stateful decoders rebuild
    /// their state per call, so a shared closure is still isolated.
    #[allow(clippy::type_complexity)]
    pub decode: Box<dyn Fn(&[u8]) -> Result<(), DecodeError> + Send + Sync>,
}

const MIB: usize = 1 << 20;

/// Build the full registry for `seed`. Every public decoder that ever
/// sees network bytes must be listed here — `tests/hostile_wire.rs`
/// sweeps this same registry, so adding a decoder buys its hostile
/// coverage for free.
pub fn registry(seed: u64) -> Vec<Target> {
    let (temporal_key, temporal_items) = corpus::temporal_corpus(seed);
    let (pose_key, pose_items) = corpus::posedelta_corpus(seed);
    let (gaussian_key, gaussian_items) = corpus::gaussian_update_corpus(seed);
    vec![
        Target {
            name: "meshcodec.decode_mesh",
            corpus: corpus::mesh_corpus(seed),
            alloc_cap: 64 * MIB,
            decode: Box::new(|d| holo_compress::meshcodec::decode_mesh(d).map(|_| ())),
        },
        Target {
            name: "meshcodec.temporal",
            corpus: temporal_items,
            alloc_cap: 64 * MIB,
            decode: Box::new(move |d| {
                let mut dec = holo_compress::temporal::TemporalMeshDecoder::new();
                dec.decode(&temporal_key)?;
                dec.decode(d).map(|_| ())
            }),
        },
        Target {
            name: "lzma.decompress",
            corpus: corpus::lzma_corpus(seed),
            alloc_cap: 64 * MIB,
            decode: Box::new(|d| holo_compress::lzma::lzma_decompress(d).map(|_| ())),
        },
        Target {
            name: "texture.decompress",
            corpus: corpus::texture_corpus(),
            alloc_cap: 64 * MIB,
            decode: Box::new(|d| holo_compress::texture::TextureCodec::decompress(d).map(|_| ())),
        },
        Target {
            name: "textsem.caption",
            corpus: corpus::caption_corpus(seed),
            alloc_cap: 32 * MIB,
            decode: Box::new(|d| holo_textsem::caption::Caption::from_bytes(d).map(|_| ())),
        },
        Target {
            name: "textsem.global_channel",
            corpus: corpus::global_corpus(seed),
            alloc_cap: 32 * MIB,
            decode: Box::new(|d| {
                holo_textsem::channels::GlobalChannel::from_bytes(d).map(|_| ())
            }),
        },
        Target {
            name: "textsem.delta_ops",
            corpus: corpus::delta_ops_corpus(seed),
            alloc_cap: 32 * MIB,
            decode: Box::new(|d| holo_textsem::delta::DeltaCoder::ops_from_bytes(d).map(|_| ())),
        },
        Target {
            name: "body.pose_payload",
            corpus: corpus::pose_payload_corpus(seed),
            alloc_cap: 8 * MIB,
            decode: Box::new(|d| holo_body::params::PosePayload::from_bytes(d).map(|_| ())),
        },
        Target {
            name: "keypoints.posedelta",
            corpus: pose_items,
            alloc_cap: 32 * MIB,
            decode: Box::new(move |d| {
                let cfg = PoseDeltaConfig::default();
                let mut dec = PoseDeltaDecoder::default();
                dec.decode(&pose_key, &cfg)?;
                dec.decode(d, &cfg).map(|_| ())
            }),
        },
        Target {
            name: "gaussian.prebuild",
            corpus: corpus::gaussian_prebuild_corpus(seed),
            alloc_cap: 64 * MIB,
            decode: Box::new(|d| holo_gaussian::decode_prebuild(d).map(|_| ())),
        },
        Target {
            name: "gaussian.update",
            corpus: gaussian_items,
            alloc_cap: 32 * MIB,
            decode: Box::new(move |d| {
                let cfg = GaussianUpdateConfig::default();
                let mut dec = GaussianUpdateDecoder::new();
                dec.decode(&gaussian_key, &cfg)?;
                dec.decode(d, &cfg).map(|_| ())
            }),
        },
        Target {
            name: "net.wire_frame",
            corpus: corpus::wire_corpus(seed),
            alloc_cap: 8 * MIB,
            decode: Box::new(|d| holo_net::wire::WireFrame::decode(d).map(|_| ())),
        },
        Target {
            name: "net.uep_header",
            corpus: corpus::uep_header_corpus(seed),
            alloc_cap: MIB,
            decode: Box::new(|d| holo_net::wire::UepHeader::decode(d).map(|_| ())),
        },
        Target {
            name: "core.raw_mesh",
            corpus: corpus::raw_mesh_corpus(seed),
            alloc_cap: 32 * MIB,
            decode: Box::new(|d| semholo::traditional::mesh_from_raw_bytes(d).map(|_| ())),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_decoder() {
        let targets = registry(7);
        assert!(targets.len() >= 14, "decoder went missing: {}", targets.len());
        let mut names: Vec<&str> = targets.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), targets.len(), "duplicate target names");
    }

    #[test]
    fn every_corpus_item_round_trips() {
        // The third leg of the contract: real encoder output decodes.
        for t in registry(7) {
            for (i, item) in t.corpus.iter().enumerate() {
                (t.decode)(item).unwrap_or_else(|e| {
                    panic!("{} corpus[{i}] failed to round-trip: {e}", t.name)
                });
            }
        }
    }

    #[test]
    fn targets_reject_garbage_without_panicking() {
        let garbage = [0xDEu8; 64];
        for t in registry(7) {
            assert!((t.decode)(&garbage).is_err(), "{} accepted garbage", t.name);
            assert!((t.decode)(&[]).is_err(), "{} accepted empty input", t.name);
        }
    }
}
