//! Fuzzing corpora built from the *real* encoders.
//!
//! Mutation fuzzing is only as good as its seeds: random bytes die at
//! the first magic check and never reach the interesting code. Every
//! corpus here is genuine encoder output — coded meshes from the
//! Draco-class codec, LZMA streams, pose keyframes *and* delta frames,
//! captions, channel payloads, wire envelopes — so mutants carry valid
//! framing deep into the decoders before they start lying.
//!
//! Everything is a deterministic function of the seed; the corpus for
//! seed `s` is byte-identical across runs.

use holo_body::params::{PosePayload, SmplxParams, PAYLOAD_KEYPOINTS};
use holo_body::skeleton::JOINT_COUNT;
use holo_compress::lzma::lzma_compress;
use holo_gaussian::{
    encode_prebuild, AvatarState, GaussianAvatar, GaussianUpdateConfig, GaussianUpdateEncoder,
    Splat, SH_COEFFS,
};
use holo_compress::meshcodec::{encode_mesh, MeshCodecConfig};
use holo_compress::temporal::TemporalMeshEncoder;
use holo_compress::texture::{Texture, TextureCodec};
use holo_keypoints::posedelta::{PoseDeltaConfig, PoseDeltaEncoder};
use holo_math::{Aabb, Pcg32, Quat, Vec3};
use holo_mesh::trimesh::TriMesh;
use holo_net::wire::{ImportanceClass, PayloadKind, UepHeader, WireFrame};
use holo_runtime::bytes::Bytes;
use holo_textsem::caption::Caption;
use holo_textsem::channels::GlobalChannel;
use holo_textsem::delta::{DeltaCoder, DeltaOp};

/// A small but non-trivial triangle mesh: an `n`×`n` height-field grid
/// (interior vertices are fully surrounded, so the region-growing coder
/// exercises attach, seed, *and* back-reference paths).
pub fn small_mesh(n: u32, rng: &mut Pcg32) -> TriMesh {
    let mut mesh = TriMesh::new();
    for j in 0..=n {
        for i in 0..=n {
            let x = i as f32 / n as f32;
            let y = j as f32 / n as f32;
            let z = 0.1 * rng.next_f32();
            mesh.vertices.push(Vec3::new(x, y, z));
        }
    }
    let stride = n + 1;
    for j in 0..n {
        for i in 0..n {
            let a = j * stride + i;
            let b = a + 1;
            let c = a + stride;
            let d = c + 1;
            mesh.faces.push([a, b, d]);
            mesh.faces.push([a, d, c]);
        }
    }
    mesh
}

fn jiggled(mesh: &TriMesh, amount: f32, rng: &mut Pcg32) -> TriMesh {
    let mut out = mesh.clone();
    for v in &mut out.vertices {
        v.z += amount * (rng.next_f32() - 0.5);
    }
    out
}

fn small_caption(rng: &mut Pcg32) -> Caption {
    let mut tokens = Vec::new();
    let mut cell = 0u32;
    for _ in 0..24 {
        cell += 1 + rng.range_u32(40);
        tokens.push((cell, rng.range_u32(256) as u16));
    }
    Caption { tokens }
}

/// Coded-mesh corpus: two quantization depths over two grids.
pub fn mesh_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x4D45);
    let m1 = small_mesh(6, &mut rng);
    let m2 = small_mesh(3, &mut rng);
    vec![
        encode_mesh(&m1, &MeshCodecConfig { position_bits: 14 }),
        encode_mesh(&m1, &MeshCodecConfig { position_bits: 8 }),
        encode_mesh(&m2, &MeshCodecConfig::default()),
    ]
}

/// Temporal-mesh corpus: one keyframe and one delta frame from the
/// same encoder run. The returned keyframe also primes the decoder in
/// the target registry.
pub fn temporal_corpus(seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut rng = Pcg32::with_stream(seed, 0x7E4D);
    let mesh = small_mesh(5, &mut rng);
    let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 1e-3);
    let key = enc.encode(&mesh);
    let delta = enc.encode(&jiggled(&mesh, 0.02, &mut rng));
    (key.clone(), vec![key, delta])
}

/// LZMA corpus: compressible structure, near-incompressible noise, and
/// the degenerate empty stream.
pub fn lzma_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x12A4);
    let structured: Vec<u8> = (0..600u32).map(|i| ((i / 7) % 251) as u8).collect();
    let noise: Vec<u8> = (0..256).map(|_| rng.next_u32() as u8).collect();
    vec![lzma_compress(&structured), lzma_compress(&noise), lzma_compress(&[])]
}

/// Texture corpus: the synthetic body texture at two sizes.
pub fn texture_corpus() -> Vec<Vec<u8>> {
    vec![
        TextureCodec::compress(&Texture::synthetic_body_texture(32, 24)),
        TextureCodec::compress(&Texture::synthetic_body_texture(8, 8)),
    ]
}

/// Caption corpus (varint + LZMA token streams).
pub fn caption_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0xCA97);
    vec![
        small_caption(&mut rng).to_bytes(),
        small_caption(&mut rng).to_bytes(),
        Caption { tokens: Vec::new() }.to_bytes(),
    ]
}

/// Global-channel corpus.
pub fn global_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x61B0);
    let mut entries = Vec::new();
    let mut cell = 0u32;
    for _ in 0..8 {
        cell += 1 + rng.range_u32(5);
        entries.push((cell, [rng.next_u32() as u8, rng.next_u32() as u8, rng.next_u32() as u8]));
    }
    vec![
        GlobalChannel { entries }.to_bytes(),
        GlobalChannel { entries: Vec::new() }.to_bytes(),
    ]
}

/// Caption-delta-ops corpus.
pub fn delta_ops_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0xDE17);
    let mut coder = DeltaCoder::new();
    let first = coder.encode(&small_caption(&mut rng));
    let second = coder.encode(&small_caption(&mut rng));
    vec![
        DeltaCoder::ops_to_bytes(&first),
        DeltaCoder::ops_to_bytes(&second),
        DeltaCoder::ops_to_bytes(&[DeltaOp::Set(0, 0), DeltaOp::Remove(3)]),
    ]
}

fn plausible_params(rng: &mut Pcg32) -> SmplxParams {
    SmplxParams::random_plausible(rng)
}

/// Pose-payload corpus (the raw 1.91 KB keypoint-semantics block).
pub fn pose_payload_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x905E);
    let params = plausible_params(&mut rng);
    let keypoints: Vec<Vec3> = (0..PAYLOAD_KEYPOINTS)
        .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
        .collect();
    vec![PosePayload::new(params, keypoints).to_bytes()]
}

/// Pose-delta corpus: one keyframe and one delta frame. The keyframe
/// also primes the decoder in the target registry.
pub fn posedelta_corpus(seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut rng = Pcg32::with_stream(seed, 0x90DE);
    let mut enc = PoseDeltaEncoder::new(PoseDeltaConfig::default());
    let key = enc.encode(&plausible_params(&mut rng));
    let delta = enc.encode(&plausible_params(&mut rng));
    (key.clone(), vec![key, delta])
}

/// Gaussian prebuild corpus: quantized splat-avatar blobs at two sizes.
pub fn gaussian_prebuild_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x6A05);
    let avatar = |n: usize, rng: &mut Pcg32| {
        let mut splats = Vec::with_capacity(n);
        for i in 0..n {
            splats.push(Splat {
                position: Vec3::new(
                    rng.next_f32() - 0.5,
                    1.0 + rng.next_f32(),
                    rng.next_f32() - 0.5,
                ),
                scale: Vec3::new(0.01, 0.012, 0.008),
                rotation: Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), rng.next_f32()),
                opacity: 0.5 + 0.5 * rng.next_f32(),
                sh: [0.25; SH_COEFFS],
                region: (i % JOINT_COUNT) as u8,
            });
        }
        let pts: Vec<Vec3> = splats.iter().map(|s| s.position).collect();
        GaussianAvatar {
            bounds: Aabb::from_points(&pts).expanded(0.02),
            splats,
            region_count: JOINT_COUNT as u8,
        }
    };
    vec![
        encode_prebuild(&avatar(48, &mut rng)),
        encode_prebuild(&avatar(4, &mut rng)),
    ]
}

/// Gaussian update corpus: one keyframe and one delta frame from the
/// same encoder run. The keyframe also primes the decoder in the
/// target registry.
pub fn gaussian_update_corpus(seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut rng = Pcg32::with_stream(seed, 0x6A0D);
    let mut enc = GaussianUpdateEncoder::new(GaussianUpdateConfig::default());
    let key = enc.encode(&AvatarState::from_pose(plausible_params(&mut rng)));
    let delta = enc.encode(&AvatarState::from_pose(plausible_params(&mut rng)));
    (key.clone(), vec![key, delta])
}

/// Wire-envelope corpus: every payload kind, including an empty
/// payload.
pub fn wire_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x3172);
    let kinds = [
        PayloadKind::Mesh,
        PayloadKind::Keypoints,
        PayloadKind::Image,
        PayloadKind::Text,
        PayloadKind::GaussianUpdate,
        PayloadKind::Control,
    ];
    let mut out = Vec::new();
    for (i, kind) in kinds.into_iter().enumerate() {
        let len = rng.range_u32(200) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        out.push(WireFrame::new(kind, i as u64, Bytes::from(payload)).encode());
    }
    out.push(WireFrame::new(PayloadKind::Control, 99, Bytes::from(vec![])).encode());
    out
}

/// UEP-header corpus: one header per importance class with a valid
/// random stripe geometry, plus the two boundary shapes the scheduler
/// actually sends — an unprotected (`r = 0`) data frame and the
/// degenerate duplication stripe (`k = 1, r = 1`) parity frame.
pub fn uep_header_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x0EB5);
    let mut out = Vec::new();
    for (i, class) in ImportanceClass::ALL.into_iter().enumerate() {
        let k = 1 + rng.range_u32(9) as u8;
        let r = 1 + rng.range_u32(k as u32) as u8;
        let parity = i % 2 == 1;
        let slots = if parity { r } else { k };
        out.push(
            UepHeader {
                class,
                parity,
                abandonable: i >= 2,
                k,
                r,
                group: rng.next_u32(),
                index: rng.range_u32(slots as u32) as u8,
                deadline_ms: 50 + rng.range_u32(400) as u16,
            }
            .encode(),
        );
    }
    out.push(
        UepHeader {
            class: ImportanceClass::Low,
            parity: false,
            abandonable: true,
            k: 1,
            r: 0,
            group: 0,
            index: 0,
            deadline_ms: 0,
        }
        .encode(),
    );
    out.push(
        UepHeader {
            class: ImportanceClass::Critical,
            parity: true,
            abandonable: false,
            k: 1,
            r: 1,
            group: u32::MAX,
            index: 0,
            deadline_ms: u16::MAX,
        }
        .encode(),
    );
    out
}

/// Raw-mesh corpus (`core::traditional`'s uncompressed wire format).
pub fn raw_mesh_corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Pcg32::with_stream(seed, 0x2A37);
    vec![
        semholo::traditional::mesh_to_raw_bytes(&small_mesh(4, &mut rng)),
        semholo::traditional::mesh_to_raw_bytes(&small_mesh(1, &mut rng)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic_per_seed() {
        assert_eq!(mesh_corpus(7), mesh_corpus(7));
        assert_ne!(mesh_corpus(7), mesh_corpus(8));
        assert_eq!(wire_corpus(7), wire_corpus(7));
        assert_eq!(uep_header_corpus(7), uep_header_corpus(7));
        assert_ne!(uep_header_corpus(7), uep_header_corpus(8));
        assert_eq!(posedelta_corpus(3), posedelta_corpus(3));
        assert_eq!(gaussian_prebuild_corpus(5), gaussian_prebuild_corpus(5));
        assert_ne!(gaussian_prebuild_corpus(5), gaussian_prebuild_corpus(6));
        assert_eq!(gaussian_update_corpus(5), gaussian_update_corpus(5));
    }

    #[test]
    fn corpora_are_non_trivial() {
        for c in [
            mesh_corpus(1),
            lzma_corpus(1),
            texture_corpus(),
            caption_corpus(1),
            global_corpus(1),
            delta_ops_corpus(1),
            pose_payload_corpus(1),
            wire_corpus(1),
            uep_header_corpus(1),
            raw_mesh_corpus(1),
            gaussian_prebuild_corpus(1),
            gaussian_update_corpus(1).1,
        ] {
            assert!(!c.is_empty());
            assert!(c.iter().any(|item| item.len() > 16), "corpus too small: {c:?}");
        }
    }

    #[test]
    fn small_mesh_is_valid() {
        let mut rng = Pcg32::new(1);
        let mesh = small_mesh(6, &mut rng);
        mesh.validate().expect("grid mesh is well-formed");
        assert_eq!(mesh.face_count(), 72);
    }
}
