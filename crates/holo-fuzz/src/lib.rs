//! Deterministic mutation fuzzing for every SemHolo wire decoder.
//!
//! Every byte string that crosses the network in this codebase — coded
//! meshes, LZMA streams, pose keyframes and deltas, captions, wire
//! envelopes — eventually reaches a decoder that must uphold the
//! hostile-input contract (DESIGN.md §9):
//!
//! 1. **never panic**, whatever the bytes;
//! 2. **never allocate beyond a declared cap** before validating the
//!    input that justifies the allocation;
//! 3. **round-trip valid input** (real encoder output decodes cleanly).
//!
//! This crate checks all three, deterministically. [`corpus`] builds
//! seeds from the *real* encoders, [`mutate`] derives hostile variants
//! (truncations, bit/byte flips, splices, targeted length-field
//! inflation) from `holo-math`'s seeded PCG stream, [`targets`] lists
//! every public decoder behind one closure type, and [`harness`] sweeps
//! the matrix and renders a canonical `FUZZ_report.json` whose bytes
//! depend only on the seed — two same-seed runs byte-compare equal,
//! which is what `scripts/verify.sh` checks.
//!
//! There is no wall clock, no thread, and no dependency outside the
//! workspace: the whole harness is a deterministic function of its
//! seed, so a failing mutant is reproducible from `(seed, index)`
//! alone.

pub mod alloc;
pub mod corpus;
pub mod harness;
pub mod mutate;
pub mod targets;

pub use alloc::TrackingAllocator;
pub use harness::{run_sweep, FuzzConfig, FuzzReport, TargetReport};
pub use mutate::Mutator;
pub use targets::{registry, Target};
