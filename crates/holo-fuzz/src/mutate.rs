//! Seeded corpus mutators.
//!
//! Each mutation draws from a per-target PCG stream, so mutant `i` of
//! target `t` under seed `s` is one fixed byte string forever — a crash
//! report quoting `(seed, target, index)` reproduces the exact input.
//!
//! Five mutator families, weighted toward the failure modes wire
//! decoders actually have:
//!
//! * **truncate** — cut the input at a random point (every decoder's
//!   most common hostile case: a frame that stops mid-field);
//! * **bit flips** — up to 8 single-bit flips (what the chaos layer's
//!   `PayloadCorrupt` fault does to real frames);
//! * **byte stomp** — overwrite a short random run with random bytes;
//! * **splice** — head of one corpus item glued to the tail of another
//!   (valid-looking framing with inconsistent interior state);
//! * **length inflation** — overwrite a 2/4-byte aligned window with
//!   huge little-endian counts, or stomp a plausible varint site with
//!   an overlong encoding. This is the mutator that hunts unbounded
//!   `Vec::with_capacity` calls specifically.

use holo_math::Pcg32;

/// Names of the mutator families, in draw order (stable across runs —
/// reports index into this).
pub const MUTATION_NAMES: [&str; 5] =
    ["truncate", "bit_flip", "byte_stomp", "splice", "length_inflate"];

/// A seeded mutator over a fixed corpus.
pub struct Mutator {
    rng: Pcg32,
}

impl Mutator {
    /// Build from a seed (derive it per target: same seed + same call
    /// sequence = same mutants).
    pub fn new(seed: u64) -> Self {
        Self { rng: Pcg32::with_stream(seed, 0xF022) }
    }

    /// Produce the next mutant from `corpus`, returning the bytes and
    /// the index into [`MUTATION_NAMES`] of the family used.
    ///
    /// Corpus items must be non-empty; an empty corpus yields an empty
    /// mutant (which decoders must also survive).
    pub fn next_mutant(&mut self, corpus: &[Vec<u8>]) -> (Vec<u8>, usize) {
        if corpus.is_empty() {
            return (Vec::new(), 0);
        }
        let base = corpus[self.rng.index(corpus.len())].clone();
        let family = self.rng.index(MUTATION_NAMES.len());
        let mutant = match family {
            0 => self.truncate(base),
            1 => self.bit_flip(base),
            2 => self.byte_stomp(base),
            3 => self.splice(base, corpus),
            _ => self.length_inflate(base),
        };
        (mutant, family)
    }

    fn truncate(&mut self, mut data: Vec<u8>) -> Vec<u8> {
        if !data.is_empty() {
            data.truncate(self.rng.index(data.len()));
        }
        data
    }

    fn bit_flip(&mut self, mut data: Vec<u8>) -> Vec<u8> {
        if data.is_empty() {
            return data;
        }
        let flips = 1 + self.rng.index(8);
        for _ in 0..flips {
            let bit = self.rng.index(data.len() * 8);
            data[bit / 8] ^= 1 << (bit % 8);
        }
        data
    }

    fn byte_stomp(&mut self, mut data: Vec<u8>) -> Vec<u8> {
        if data.is_empty() {
            return data;
        }
        let run = 1 + self.rng.index(4.min(data.len()));
        let start = self.rng.index(data.len() - run + 1);
        for b in &mut data[start..start + run] {
            *b = self.rng.next_u32() as u8;
        }
        data
    }

    fn splice(&mut self, head: Vec<u8>, corpus: &[Vec<u8>]) -> Vec<u8> {
        let tail = &corpus[self.rng.index(corpus.len())];
        let cut_head = if head.is_empty() { 0 } else { self.rng.index(head.len() + 1) };
        let cut_tail = if tail.is_empty() { 0 } else { self.rng.index(tail.len() + 1) };
        let mut out = head[..cut_head].to_vec();
        out.extend_from_slice(&tail[cut_tail..]);
        out
    }

    fn length_inflate(&mut self, mut data: Vec<u8>) -> Vec<u8> {
        if data.is_empty() {
            return data;
        }
        // Huge counts a naive decoder would feed straight into
        // `Vec::with_capacity`: all-ones, i32::MAX, a few mid-range
        // monsters. Also an overlong LEB128 varint for the varint-coded
        // formats.
        match self.rng.index(3) {
            0 => {
                // 4-byte LE inflation at a random offset.
                let v: u32 =
                    [u32::MAX, i32::MAX as u32, 0x4000_0000, 0x00FF_FFFF][self.rng.index(4)];
                let at = self.rng.index(data.len());
                for (i, b) in v.to_le_bytes().iter().enumerate() {
                    if at + i < data.len() {
                        data[at + i] = *b;
                    }
                }
            }
            1 => {
                // 2-byte LE inflation (u16 counts: texture dims, blocks).
                let at = self.rng.index(data.len());
                data[at] = 0xFF;
                if at + 1 < data.len() {
                    data[at + 1] = 0xFF;
                }
            }
            _ => {
                // Max-value varint (5 bytes of continuation) spliced in.
                let at = self.rng.index(data.len() + 1);
                let tail = data.split_off(at);
                data.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
                data.extend_from_slice(&tail);
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<u8>> {
        vec![(0u8..100).collect(), vec![7u8; 40], vec![1, 2, 3]]
    }

    #[test]
    fn same_seed_same_mutants() {
        let c = corpus();
        let mut a = Mutator::new(99);
        let mut b = Mutator::new(99);
        for _ in 0..200 {
            assert_eq!(a.next_mutant(&c), b.next_mutant(&c));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let c = corpus();
        let mut a = Mutator::new(1);
        let mut b = Mutator::new(2);
        let diverged = (0..50).any(|_| a.next_mutant(&c) != b.next_mutant(&c));
        assert!(diverged);
    }

    #[test]
    fn all_families_fire() {
        let c = corpus();
        let mut m = Mutator::new(5);
        let mut seen = [false; MUTATION_NAMES.len()];
        for _ in 0..200 {
            let (_, family) = m.next_mutant(&c);
            seen[family] = true;
        }
        assert!(seen.iter().all(|&s| s), "family starved: {seen:?}");
    }

    #[test]
    fn empty_corpus_yields_empty_mutant() {
        let mut m = Mutator::new(5);
        assert_eq!(m.next_mutant(&[]), (Vec::new(), 0));
    }
}
