//! 3D keypoint detection, filtering, and skeleton fitting.
//!
//! §2.3 describes two families of 3D keypoint detectors: direct RGB-D
//! extraction (fast, depth-sensor accurate) and 2D-detection-plus-lifting
//! (works from RGB alone, but with extra compute and more depth error).
//! [`detector`] simulates both as noisy observation processes whose error
//! and latency characteristics match that taxonomy. [`filter`] provides
//! the temporal smoothers real systems run on detector output (One-Euro
//! and constant-velocity Kalman), and [`fit`] recovers SMPL-X parameters
//! from noisy keypoints by hierarchical rotation fitting — the
//! "keypoints aligned with SMPL-X" step the paper's proof-of-concept
//! transmits. [`posedelta`] applies the paper's temporal-delta idea
//! (§3.3) to the pose stream itself: keyframe + closed-loop quantized
//! parameter deltas, a further ~3x below per-frame LZMA.

pub mod detector;
pub mod filter;
pub mod fit;
pub mod posedelta;

pub use detector::{DetectorKind, KeypointDetector};
pub use filter::{KalmanFilter3, OneEuroFilter};
pub use fit::fit_params;
pub use posedelta::{PoseDeltaConfig, PoseDeltaDecoder, PoseDeltaEncoder};
