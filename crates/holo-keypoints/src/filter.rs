//! Temporal filters for keypoint streams.
//!
//! Raw detector output jitters; real pipelines smooth it. Two standard
//! choices are implemented: the One-Euro filter (Casiez et al. 2012 — an
//! adaptive low-pass whose cutoff rises with speed, trading lag for
//! jitter exactly where it matters) and a constant-velocity Kalman filter
//! per keypoint.

use holo_math::Vec3;

/// One-Euro filter state for a scalar channel.
#[derive(Debug, Clone)]
struct OneEuroChannel {
    x_prev: Option<f32>,
    dx_prev: f32,
}

/// One-Euro filter for 3D points.
#[derive(Debug, Clone)]
pub struct OneEuroFilter {
    /// Minimum cutoff frequency, Hz (lower = smoother at rest).
    pub min_cutoff: f32,
    /// Speed coefficient (higher = less lag during fast motion).
    pub beta: f32,
    /// Derivative low-pass cutoff, Hz.
    pub d_cutoff: f32,
    channels: [OneEuroChannel; 3],
}

fn alpha(cutoff: f32, dt: f32) -> f32 {
    let tau = 1.0 / (std::f32::consts::TAU * cutoff.max(1e-6));
    dt / (dt + tau)
}

impl OneEuroFilter {
    /// Standard tracking parameters.
    pub fn new(min_cutoff: f32, beta: f32) -> Self {
        Self {
            min_cutoff,
            beta,
            d_cutoff: 1.0,
            channels: std::array::from_fn(|_| OneEuroChannel { x_prev: None, dx_prev: 0.0 }),
        }
    }

    /// Filter one observation taken `dt` seconds after the previous one.
    pub fn filter(&mut self, p: Vec3, dt: f32) -> Vec3 {
        let dt = dt.max(1e-4);
        let inputs = [p.x, p.y, p.z];
        let mut out = [0f32; 3];
        for (k, ch) in self.channels.iter_mut().enumerate() {
            let x = inputs[k];
            let Some(prev) = ch.x_prev else {
                ch.x_prev = Some(x);
                out[k] = x;
                continue;
            };
            // Derivative estimate, low-passed.
            let dx = (x - prev) / dt;
            let a_d = alpha(self.d_cutoff, dt);
            let dx_hat = a_d * dx + (1.0 - a_d) * ch.dx_prev;
            ch.dx_prev = dx_hat;
            // Speed-adaptive cutoff.
            let cutoff = self.min_cutoff + self.beta * dx_hat.abs();
            let a = alpha(cutoff, dt);
            let filtered = a * x + (1.0 - a) * prev;
            ch.x_prev = Some(filtered);
            out[k] = filtered;
        }
        Vec3::new(out[0], out[1], out[2])
    }

    /// Reset state (e.g. after a track loss).
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.x_prev = None;
            ch.dx_prev = 0.0;
        }
    }
}

/// Constant-velocity Kalman filter for one 3D keypoint. Each axis is an
/// independent (position, velocity) state.
#[derive(Debug, Clone)]
pub struct KalmanFilter3 {
    /// Process noise (acceleration) standard deviation, m/s^2.
    pub process_sigma: f32,
    /// Measurement noise standard deviation, m.
    pub measurement_sigma: f32,
    // Per-axis state: position, velocity, and 2x2 covariance (p00, p01, p11).
    state: [[f32; 5]; 3],
    initialized: bool,
}

impl KalmanFilter3 {
    /// Build with the given noise magnitudes.
    pub fn new(process_sigma: f32, measurement_sigma: f32) -> Self {
        Self {
            process_sigma,
            measurement_sigma,
            state: [[0.0, 0.0, 1.0, 0.0, 1.0]; 3],
            initialized: false,
        }
    }

    /// Predict-update with one measurement `z` after `dt` seconds.
    pub fn step(&mut self, z: Vec3, dt: f32) -> Vec3 {
        let dt = dt.max(1e-4);
        let meas = [z.x, z.y, z.z];
        if !self.initialized {
            for (k, s) in self.state.iter_mut().enumerate() {
                *s = [meas[k], 0.0, self.measurement_sigma * self.measurement_sigma, 0.0, 1.0];
            }
            self.initialized = true;
            return z;
        }
        let q = self.process_sigma * self.process_sigma;
        let r = self.measurement_sigma * self.measurement_sigma;
        let mut out = [0f32; 3];
        for (k, s) in self.state.iter_mut().enumerate() {
            let [x, v, p00, p01, p11] = *s;
            // Predict.
            let xp = x + v * dt;
            let vp = v;
            // F P F^T + Q (discrete white-acceleration model).
            let dt2 = dt * dt;
            let q00 = q * dt2 * dt2 / 4.0;
            let q01 = q * dt2 * dt / 2.0;
            let q11 = q * dt2;
            let pp00 = p00 + 2.0 * dt * p01 + dt2 * p11 + q00;
            let pp01 = p01 + dt * p11 + q01;
            let pp11 = p11 + q11;
            // Update with measurement of position.
            let innov = meas[k] - xp;
            let s_cov = pp00 + r;
            let k0 = pp00 / s_cov;
            let k1 = pp01 / s_cov;
            let xn = xp + k0 * innov;
            let vn = vp + k1 * innov;
            let p00n = (1.0 - k0) * pp00;
            let p01n = (1.0 - k0) * pp01;
            let p11n = pp11 - k1 * pp01;
            *s = [xn, vn, p00n, p01n, p11n];
            out[k] = xn;
        }
        Vec3::new(out[0], out[1], out[2])
    }

    /// Predict the position `dt` seconds ahead without a measurement.
    pub fn predict(&self, dt: f32) -> Vec3 {
        Vec3::new(
            self.state[0][0] + self.state[0][1] * dt,
            self.state[1][0] + self.state[1][1] * dt,
            self.state[2][0] + self.state[2][1] * dt,
        )
    }
}

/// Apply a filter bank (one per keypoint) to a frame of observations.
pub fn filter_frame(filters: &mut [OneEuroFilter], frame: &[Vec3], dt: f32) -> Vec<Vec3> {
    filters.iter_mut().zip(frame).map(|(f, &p)| f.filter(p, dt)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    /// A smooth human-speed trajectory plus noise; returns (truth, noisy).
    fn noisy_track(seed: u64, n: usize, sigma: f32) -> (Vec<Vec3>, Vec<Vec3>) {
        let mut rng = Pcg32::new(seed);
        let mut truth = Vec::with_capacity(n);
        let mut noisy = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f32 / 30.0;
            let p = Vec3::new((t * 0.65).sin() * 0.15, 1.0 + (t * 0.5).cos() * 0.1, 0.02 * t);
            truth.push(p);
            noisy.push(p + Vec3::new(rng.normal(), rng.normal(), rng.normal()) * sigma);
        }
        (truth, noisy)
    }

    fn rmse(a: &[Vec3], b: &[Vec3]) -> f32 {
        (a.iter().zip(b).map(|(x, y)| (*x - *y).length_sq()).sum::<f32>() / a.len() as f32).sqrt()
    }

    #[test]
    fn one_euro_reduces_noise() {
        let (truth, noisy) = noisy_track(1, 300, 0.01);
        let mut f = OneEuroFilter::new(1.5, 3.0);
        let filtered: Vec<Vec3> = noisy.iter().map(|&p| f.filter(p, 1.0 / 30.0)).collect();
        let raw_err = rmse(&noisy[30..].to_vec(), &truth[30..].to_vec());
        let filt_err = rmse(&filtered[30..].to_vec(), &truth[30..].to_vec());
        assert!(filt_err < raw_err * 0.9, "raw {raw_err} filtered {filt_err}");
    }

    #[test]
    fn one_euro_tracks_fast_motion() {
        // A step change: the adaptive cutoff must converge quickly.
        let mut f = OneEuroFilter::new(1.0, 0.5);
        for _ in 0..30 {
            f.filter(Vec3::ZERO, 1.0 / 30.0);
        }
        let mut last = Vec3::ZERO;
        for _ in 0..15 {
            last = f.filter(Vec3::new(1.0, 0.0, 0.0), 1.0 / 30.0);
        }
        assert!(last.x > 0.85, "filter lagging: {last:?}");
    }

    #[test]
    fn kalman_reduces_noise() {
        let (truth, noisy) = noisy_track(2, 300, 0.01);
        let mut f = KalmanFilter3::new(2.0, 0.01);
        let filtered: Vec<Vec3> = noisy.iter().map(|&p| f.step(p, 1.0 / 30.0)).collect();
        let raw_err = rmse(&noisy[30..].to_vec(), &truth[30..].to_vec());
        let filt_err = rmse(&filtered[30..].to_vec(), &truth[30..].to_vec());
        assert!(filt_err < raw_err * 0.85, "raw {raw_err} filtered {filt_err}");
    }

    #[test]
    fn kalman_predicts_constant_velocity() {
        let mut f = KalmanFilter3::new(0.5, 0.001);
        // Feed a constant-velocity track.
        for i in 0..60 {
            let t = i as f32 / 30.0;
            f.step(Vec3::new(t * 0.6, 0.0, 0.0), 1.0 / 30.0);
        }
        let pred = f.predict(0.1);
        let expected_x = (59.0 / 30.0) * 0.6 + 0.1 * 0.6;
        assert!((pred.x - expected_x).abs() < 0.02, "pred {pred:?} vs {expected_x}");
    }

    #[test]
    fn first_sample_passes_through() {
        let mut f = OneEuroFilter::new(1.0, 0.1);
        let p = Vec3::new(3.0, -1.0, 2.0);
        assert_eq!(f.filter(p, 1.0 / 30.0), p);
        let mut k = KalmanFilter3::new(1.0, 0.01);
        assert_eq!(k.step(p, 1.0 / 30.0), p);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = OneEuroFilter::new(1.0, 0.1);
        f.filter(Vec3::ZERO, 1.0 / 30.0);
        f.filter(Vec3::ZERO, 1.0 / 30.0);
        f.reset();
        let p = Vec3::new(5.0, 5.0, 5.0);
        assert_eq!(f.filter(p, 1.0 / 30.0), p);
    }

    #[test]
    fn filter_bank_applies_elementwise() {
        let mut bank: Vec<OneEuroFilter> = (0..3).map(|_| OneEuroFilter::new(1.0, 0.1)).collect();
        let frame = vec![Vec3::X, Vec3::Y, Vec3::Z];
        let out = filter_frame(&mut bank, &frame, 1.0 / 30.0);
        assert_eq!(out, frame); // first samples pass through
    }
}
