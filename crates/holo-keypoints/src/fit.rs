//! SMPL-X parameter fitting from 3D keypoints.
//!
//! The paper's proof-of-concept takes "3D keypoints aligned with SMPL-X
//! parameters as input". This module performs the alignment: given noisy
//! observed joint positions, it recovers translation and per-joint
//! rotations by hierarchical two-vector fitting down the kinematic tree —
//! each joint's rotation is the one that best aligns its rest-pose bone
//! direction(s) with the observed one(s), expressed in the parent's
//! already-fitted frame.
//!
//! Limitations are intentional and mirror real keypoint pipelines: bone
//! *twist* is unobservable from positions alone except at two-vector
//! joints, and leaf joints (fingertips, jaw, eyes) carry no recoverable
//! rotation. These losses are part of the quality gap Figs. 2 and 3
//! measure.

use holo_body::params::SmplxParams;
use holo_body::skeleton::{Joint, Skeleton, JOINT_COUNT, PARENTS};
use holo_math::{Quat, Vec3};

/// Shortest-arc quaternion rotating unit vector `a` onto unit vector `b`.
fn shortest_arc(a: Vec3, b: Vec3) -> Quat {
    let d = a.dot(b);
    if d > 0.99999 {
        return Quat::IDENTITY;
    }
    if d < -0.99999 {
        // 180 degrees about any axis orthogonal to a.
        let axis = a.any_orthonormal();
        return Quat::from_axis_angle(axis, std::f32::consts::PI);
    }
    let axis = a.cross(b);
    Quat::new(axis.x, axis.y, axis.z, 1.0 + d).normalized()
}

/// After aligning the primary direction, add the twist about it that best
/// aligns a secondary direction.
fn with_twist(primary_aligned: Quat, about: Vec3, rest_secondary: Vec3, obs_secondary: Vec3) -> Quat {
    let axis = about.normalized();
    // Project both secondaries onto the plane orthogonal to the axis.
    let cur = primary_aligned.rotate(rest_secondary);
    let proj = |v: Vec3| (v - axis * v.dot(axis)).normalized();
    let a = proj(cur);
    let b = proj(obs_secondary);
    if a.length_sq() < 1e-8 || b.length_sq() < 1e-8 {
        return primary_aligned;
    }
    let cos = a.dot(b).clamp(-1.0, 1.0);
    let sin = axis.dot(a.cross(b));
    let angle = sin.atan2(cos);
    Quat::from_axis_angle(axis, angle) * primary_aligned
}

/// Primary (and optional secondary) child used to fit each joint's
/// rotation. `None` = leaf, keep identity.
fn fit_children(j: Joint) -> Option<(Joint, Option<Joint>)> {
    use Joint::*;
    Some(match j {
        Pelvis => (Spine1, Some(LeftHip)),
        Spine1 => (Spine2, None),
        Spine2 => (Spine3, None),
        Spine3 => (Neck, Some(LeftCollar)),
        Neck => (Head, None),
        Head => (LeftEye, Some(RightEye)),
        LeftCollar => (LeftShoulder, None),
        RightCollar => (RightShoulder, None),
        LeftShoulder => (LeftElbow, None),
        RightShoulder => (RightElbow, None),
        LeftElbow => (LeftWrist, None),
        RightElbow => (RightWrist, None),
        LeftWrist => (LeftMiddle1, Some(LeftIndex1)),
        RightWrist => (RightMiddle1, Some(RightIndex1)),
        LeftHip => (LeftKnee, None),
        RightHip => (RightKnee, None),
        LeftKnee => (LeftAnkle, None),
        RightKnee => (RightAnkle, None),
        LeftAnkle => (LeftFoot, None),
        RightAnkle => (RightFoot, None),
        LeftThumb1 => (LeftThumb2, None),
        LeftThumb2 => (LeftThumb3, None),
        LeftIndex1 => (LeftIndex2, None),
        LeftIndex2 => (LeftIndex3, None),
        LeftMiddle1 => (LeftMiddle2, None),
        LeftMiddle2 => (LeftMiddle3, None),
        LeftRing1 => (LeftRing2, None),
        LeftRing2 => (LeftRing3, None),
        LeftPinky1 => (LeftPinky2, None),
        LeftPinky2 => (LeftPinky3, None),
        RightThumb1 => (RightThumb2, None),
        RightThumb2 => (RightThumb3, None),
        RightIndex1 => (RightIndex2, None),
        RightIndex2 => (RightIndex3, None),
        RightMiddle1 => (RightMiddle2, None),
        RightMiddle2 => (RightMiddle3, None),
        RightRing1 => (RightRing2, None),
        RightRing2 => (RightRing3, None),
        RightPinky1 => (RightPinky2, None),
        RightPinky2 => (RightPinky3, None),
        // Leaves: no observable rotation.
        Jaw | LeftEye | RightEye | LeftFoot | RightFoot | LeftThumb3 | RightThumb3 | LeftIndex3
        | RightIndex3 | LeftMiddle3 | RightMiddle3 | LeftRing3 | RightRing3 | LeftPinky3
        | RightPinky3 => return None,
    })
}

/// Fit SMPL-X parameters from observed joint positions.
///
/// `observed` contains positions in skeleton joint order (the layout of
/// `StandardLandmarks::Joints55` and up). A sparse detector may provide
/// only the first 25 body joints; joints whose fit children are
/// unobserved keep their rest rotation (the sparse-detector quality
/// penalty of ablation D). Shape betas and expression are *not*
/// estimated here; callers carry them through separate channels (shape
/// from a calibration phase, expression from the face tracker).
pub fn fit_params(observed: &[Vec3], skeleton: &Skeleton) -> Result<SmplxParams, String> {
    if observed.len() < 25 {
        return Err(format!("need at least 25 joint observations, got {}", observed.len()));
    }
    let rest = skeleton.rest_positions();
    let mut params = SmplxParams::default();
    // Translation from the pelvis.
    params.translation = observed[0] - rest[0];

    // Accumulated world rotation per joint.
    let mut world_rot = [Quat::IDENTITY; JOINT_COUNT];

    for j in Joint::all() {
        let ji = j.index();
        let parent_rot = if ji == 0 {
            Quat::IDENTITY
        } else {
            world_rot[PARENTS[ji] as usize]
        };
        let Some((primary, secondary)) = fit_children(j) else {
            world_rot[ji] = parent_rot;
            continue;
        };
        // Sparse detectors may not observe this joint's children.
        if primary.index() >= observed.len() || ji >= observed.len() {
            world_rot[ji] = parent_rot;
            continue;
        }
        let secondary = secondary.filter(|s| s.index() < observed.len());
        // Rest-pose bone directions in the joint's unrotated local frame
        // (rest offsets are expressed in a shared world frame).
        let rest_primary = (rest[primary.index()] - rest[ji]).normalized();
        let obs_primary_world = (observed[primary.index()] - observed[ji]).normalized();
        if rest_primary.length_sq() < 1e-8 || obs_primary_world.length_sq() < 1e-8 {
            world_rot[ji] = parent_rot;
            continue;
        }
        // Bring the observation into the parent's frame.
        let obs_primary = parent_rot.conjugate().rotate(obs_primary_world);
        let mut local = shortest_arc(rest_primary, obs_primary);
        if let Some(sec) = secondary {
            let rest_sec = (rest[sec.index()] - rest[ji]).normalized();
            let obs_sec = parent_rot.conjugate().rotate((observed[sec.index()] - observed[ji]).normalized());
            if rest_sec.length_sq() > 1e-8 && obs_sec.length_sq() > 1e-8 {
                local = with_twist(local, obs_primary, rest_sec, obs_sec);
            }
        }
        params.joint_rotations[ji] = local;
        world_rot[ji] = parent_rot * local;
    }
    Ok(params)
}

/// Mean joint position error (meters) between a fit and observations:
/// runs FK on the fitted parameters and compares.
pub fn fit_position_error(params: &SmplxParams, observed: &[Vec3], skeleton: &Skeleton) -> f32 {
    let posed = skeleton.forward_kinematics(params);
    let positions = posed.positions();
    let n = JOINT_COUNT.min(observed.len());
    let sum: f32 = (0..n).map(|i| positions[i].distance(observed[i])).sum();
    sum / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_body::motion::{MotionKind, MotionSynthesizer};
    use holo_math::Pcg32;

    #[test]
    fn shortest_arc_aligns() {
        let mut rng = Pcg32::new(1);
        for _ in 0..100 {
            let a = Vec3::new(rng.normal(), rng.normal(), rng.normal()).normalized();
            let b = Vec3::new(rng.normal(), rng.normal(), rng.normal()).normalized();
            let q = shortest_arc(a, b);
            assert!((q.rotate(a) - b).length() < 1e-4);
        }
        // Antiparallel case.
        let q = shortest_arc(Vec3::X, -Vec3::X);
        assert!((q.rotate(Vec3::X) + Vec3::X).length() < 1e-4);
    }

    #[test]
    fn identity_pose_fits_identity() {
        let sk = Skeleton::neutral();
        let obs = sk.rest_positions().to_vec();
        let fit = fit_params(&obs, &sk).unwrap();
        assert!(fit.translation.length() < 1e-5);
        let err = fit_position_error(&fit, &obs, &sk);
        assert!(err < 1e-4, "rest-pose fit error {err}");
    }

    #[test]
    fn clean_poses_fit_accurately() {
        let sk = Skeleton::neutral();
        let mut synth = MotionSynthesizer::new(3);
        let clip = synth.clip(MotionKind::Talking, 1.0, 10.0);
        for frame in &clip.frames {
            let truth = sk.forward_kinematics(frame).positions().to_vec();
            let fit = fit_params(&truth, &sk).unwrap();
            let err = fit_position_error(&fit, &truth, &sk);
            assert!(err < 0.02, "clean fit error {err}");
        }
    }

    #[test]
    fn noisy_fit_error_bounded_and_worse_than_clean() {
        let sk = Skeleton::neutral();
        let mut synth = MotionSynthesizer::new(5);
        let clip = synth.clip(MotionKind::Waving, 1.0, 10.0);
        let mut rng = Pcg32::new(9);
        let sigma = 0.01f32;
        let mut clean_sum = 0.0;
        let mut noisy_sum = 0.0;
        for frame in &clip.frames {
            let truth = sk.forward_kinematics(frame).positions().to_vec();
            let noisy: Vec<Vec3> = truth
                .iter()
                .map(|&p| p + Vec3::new(rng.normal(), rng.normal(), rng.normal()) * sigma)
                .collect();
            let fit_clean = fit_params(&truth, &sk).unwrap();
            let fit_noisy = fit_params(&noisy, &sk).unwrap();
            clean_sum += fit_position_error(&fit_clean, &truth, &sk);
            noisy_sum += fit_position_error(&fit_noisy, &truth, &sk);
        }
        let n = clip.len() as f32;
        let (clean, noisy) = (clean_sum / n, noisy_sum / n);
        assert!(noisy > clean, "noise must hurt: clean {clean} noisy {noisy}");
        assert!(noisy < 0.05, "noisy fit error {noisy} too large");
    }

    #[test]
    fn translation_recovered() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.translation = Vec3::new(0.7, 0.0, -1.2);
        let obs = sk.forward_kinematics(&params).positions().to_vec();
        let fit = fit_params(&obs, &sk).unwrap();
        assert!((fit.translation - params.translation).length() < 1e-4);
    }

    #[test]
    fn global_rotation_recovered() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.joint_rotations[0] = Quat::from_axis_angle(Vec3::Y, 1.1);
        let obs = sk.forward_kinematics(&params).positions().to_vec();
        let fit = fit_params(&obs, &sk).unwrap();
        let err = fit_position_error(&fit, &obs, &sk);
        assert!(err < 0.01, "global rotation fit error {err}");
        let angle = fit.joint_rotations[0].angle_to(params.joint_rotations[0]);
        assert!(angle < 0.05, "global rotation angle error {angle}");
    }

    #[test]
    fn too_few_observations_is_error() {
        let sk = Skeleton::neutral();
        assert!(fit_params(&[Vec3::ZERO; 10], &sk).is_err());
    }
}
