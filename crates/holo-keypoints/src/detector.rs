//! Keypoint detector simulators.
//!
//! A DL pose estimator is, from the pipeline's point of view, a function
//! from the true body state to a noisy, occasionally-missing set of 3D
//! keypoints plus a compute cost. We simulate exactly that interface with
//! error models taken from the two detector families of §2.3:
//!
//! - **Direct RGB-D** (Kinect body tracking): axial depth noise dominates;
//!   per-keypoint error ~1 cm at 2 m; cheap (runs on the sensor SDK).
//! - **2D + lifting** (OpenPose/VideoPose3D style): good image-plane
//!   accuracy but inflated depth error from monocular lifting; 2-4x the
//!   compute of the direct path.
//!
//! Occluded keypoints (back-facing relative to the camera ring) have a
//! higher miss probability; misses are reported as `None` so the filter
//! and fitting stages must handle them — as in a real system.

use holo_capture::noise::DepthNoiseModel;
use holo_math::{Pcg32, Vec3};

/// Which detector family to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Direct 3D extraction from RGB-D (fast, balanced error).
    RgbdDirect,
    /// 2D detection + learned lifting (RGB only, higher depth error,
    /// higher compute).
    TwoStageLift,
}

impl DetectorKind {
    /// Model-inference compute cost per frame, in GFLOPs. Used by the GPU
    /// cost model to attribute extraction latency (Table 1's "extract"
    /// column).
    pub fn gflops_per_frame(self, keypoints: usize) -> f64 {
        match self {
            // Kinect-class body tracking network.
            DetectorKind::RgbdDirect => 4.0 + keypoints as f64 * 0.02,
            // 2D backbone (HRNet-class) + temporal lifting model.
            DetectorKind::TwoStageLift => 14.0 + keypoints as f64 * 0.06,
        }
    }
}

/// A configured detector.
#[derive(Debug, Clone)]
pub struct KeypointDetector {
    /// The simulated family.
    pub kind: DetectorKind,
    /// Observing camera position (for axial error direction and
    /// occlusion).
    pub camera_pos: Vec3,
    /// Base miss probability per keypoint.
    pub miss_rate: f32,
    noise: DepthNoiseModel,
}

impl KeypointDetector {
    /// Detector with family-typical error parameters.
    pub fn new(kind: DetectorKind, camera_pos: Vec3) -> Self {
        let noise = match kind {
            DetectorKind::RgbdDirect => DepthNoiseModel {
                sigma_base: 0.008,
                sigma_quadratic: 0.0015,
                dropout_base: 0.0,
                grazing_cos_threshold: 0.0,
            },
            DetectorKind::TwoStageLift => DepthNoiseModel {
                // Lifting triples the axial (depth) uncertainty.
                sigma_base: 0.022,
                sigma_quadratic: 0.004,
                dropout_base: 0.0,
                grazing_cos_threshold: 0.0,
            },
        };
        let miss_rate = match kind {
            DetectorKind::RgbdDirect => 0.01,
            DetectorKind::TwoStageLift => 0.03,
        };
        Self { kind, camera_pos, miss_rate, noise }
    }

    /// Observe the true keypoint set: each true position becomes a noisy
    /// measurement or `None` (missed detection).
    pub fn detect(&self, truth: &[Vec3], rng: &mut Pcg32) -> Vec<Option<Vec3>> {
        truth
            .iter()
            .map(|&p| {
                if rng.chance(self.miss_rate) {
                    None
                } else {
                    Some(self.noise.perturb_point(p, self.camera_pos, rng))
                }
            })
            .collect()
    }

    /// Fill misses with the previous frame's estimate (the standard
    /// zero-order hold a tracking front-end applies).
    pub fn detect_with_hold(
        &self,
        truth: &[Vec3],
        previous: Option<&[Vec3]>,
        rng: &mut Pcg32,
    ) -> Vec<Vec3> {
        self.detect(truth, rng)
            .into_iter()
            .enumerate()
            .map(|(i, obs)| match obs {
                Some(p) => p,
                None => previous.and_then(|prev| prev.get(i).copied()).unwrap_or(truth[i]),
            })
            .collect()
    }

    /// RMS position error of this detector at a given subject distance
    /// (analytic, for reporting).
    pub fn expected_rms(&self, distance: f32) -> f32 {
        let s = self.noise.sigma_at(distance);
        (s * s * (1.0 + 2.0 * 0.16)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Vec<Vec3> {
        (0..50)
            .map(|i| Vec3::new((i as f32 * 0.61).sin(), 1.0 + (i as f32 * 0.37).cos() * 0.5, 0.0))
            .collect()
    }

    #[test]
    fn direct_detector_error_in_range() {
        let det = KeypointDetector::new(DetectorKind::RgbdDirect, Vec3::new(0.0, 1.2, 2.0));
        let mut rng = Pcg32::new(1);
        let t = truth();
        let mut sum = 0.0;
        let mut n = 0;
        for _ in 0..200 {
            for (obs, tr) in det.detect(&t, &mut rng).iter().zip(&t) {
                if let Some(p) = obs {
                    sum += (*p - *tr).length_sq();
                    n += 1;
                }
            }
        }
        let rms = (sum / n as f32).sqrt();
        assert!((0.005..0.03).contains(&rms), "direct RMS {rms}");
    }

    #[test]
    fn lifting_detector_noisier_than_direct() {
        let cam = Vec3::new(0.0, 1.2, 2.0);
        let t = truth();
        let rms = |kind| {
            let det = KeypointDetector::new(kind, cam);
            let mut rng = Pcg32::new(2);
            let mut sum = 0.0;
            let mut n = 0;
            for _ in 0..200 {
                for (obs, tr) in det.detect(&t, &mut rng).iter().zip(&t) {
                    if let Some(p) = obs {
                        sum += (*p - *tr).length_sq();
                        n += 1;
                    }
                }
            }
            (sum / n as f32).sqrt()
        };
        assert!(rms(DetectorKind::TwoStageLift) > rms(DetectorKind::RgbdDirect) * 1.5);
    }

    #[test]
    fn lifting_costs_more_compute() {
        assert!(
            DetectorKind::TwoStageLift.gflops_per_frame(100)
                > DetectorKind::RgbdDirect.gflops_per_frame(100) * 2.0
        );
    }

    #[test]
    fn misses_happen_and_hold_fills_them() {
        let det = KeypointDetector::new(DetectorKind::TwoStageLift, Vec3::new(0.0, 1.2, 2.0));
        let mut rng = Pcg32::new(3);
        let t = truth();
        let mut missed = 0;
        for _ in 0..100 {
            missed += det.detect(&t, &mut rng).iter().filter(|o| o.is_none()).count();
        }
        assert!(missed > 20, "missed {missed}");
        // Hold never produces gaps.
        let prev = t.clone();
        let held = det.detect_with_hold(&t, Some(&prev), &mut rng);
        assert_eq!(held.len(), t.len());
    }

    #[test]
    fn expected_rms_matches_empirical() {
        let cam = Vec3::new(0.0, 1.0, 2.0);
        let det = KeypointDetector::new(DetectorKind::RgbdDirect, cam);
        let p = Vec3::new(0.0, 1.0, 0.0);
        let mut rng = Pcg32::new(4);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            if let Some(q) = det.detect(&[p], &mut rng)[0] {
                sum += (q - p).length_sq();
            }
        }
        let rms = (sum / n as f32).sqrt();
        let expected = det.expected_rms(2.0);
        assert!((rms - expected).abs() / expected < 0.1, "rms {rms} vs {expected}");
    }
}
