//! Temporal pose-stream compression.
//!
//! The paper's §3.3 temporal-delta idea applied to its own §3.1 stream:
//! consecutive SMPL-X poses differ by tiny joint rotations (human motion
//! is continuous — the property the motion synthesizer reproduces), so
//! instead of LZMA-ing each 1.91 KB frame independently, a keyframe
//! carries the full payload and subsequent frames carry *quantized
//! deltas* in parameter space, entropy-coded. This typically reaches a
//! further ~3-4x below the paper's 0.30 Mbps figure and is reported as
//! an extension in EXPERIMENTS.md.
//!
//! Closed-loop design: the encoder tracks the receiver's reconstructed
//! parameters, so quantization error never accumulates.

use holo_body::params::{PosePayload, SmplxParams, EXPRESSION_DIM, SHAPE_DIM};
use holo_body::skeleton::JOINT_COUNT;
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::primitives::{unzigzag, zigzag};
use holo_compress::rc::{decode_bucketed, encode_bucketed, BitTree, RangeDecoder, RangeEncoder};
use holo_math::{Quat, Vec3};
use holo_runtime::ser::DecodeError;

const KEY_MAGIC: u8 = 0x4B; // 'K'
const DELTA_MAGIC: u8 = 0x44; // 'D'

/// Quantization steps: axis-angle radians, translation meters, unitless
/// coefficients. Chosen so the decoded pose is visually indistinguishable
/// (sub-millimeter surface motion).
#[derive(Debug, Clone, Copy)]
pub struct PoseDeltaConfig {
    /// Axis-angle component step, radians.
    pub rotation_step: f32,
    /// Translation component step, meters.
    pub translation_step: f32,
    /// Shape/expression coefficient step.
    pub coefficient_step: f32,
    /// Keyframe refresh interval in frames (0 = never).
    pub keyframe_interval: u32,
}

impl Default for PoseDeltaConfig {
    fn default() -> Self {
        Self {
            rotation_step: 0.002,
            translation_step: 0.001,
            coefficient_step: 0.005,
            keyframe_interval: 300,
        }
    }
}

/// Flatten the delta-relevant parameters (rotation axis-angles,
/// translation, expression; betas are calibration-static).
fn param_vector(p: &SmplxParams) -> Vec<f32> {
    let mut v = Vec::with_capacity(JOINT_COUNT * 3 + 3 + EXPRESSION_DIM);
    for q in &p.joint_rotations {
        let aa = q.to_axis_angle();
        v.extend_from_slice(&[aa.x, aa.y, aa.z]);
    }
    v.extend_from_slice(&[p.translation.x, p.translation.y, p.translation.z]);
    v.extend_from_slice(&p.expression);
    v
}

fn params_from_vector(v: &[f32], betas: &[f32; SHAPE_DIM]) -> SmplxParams {
    let mut p = SmplxParams { betas: *betas, ..Default::default() };
    for j in 0..JOINT_COUNT {
        let o = j * 3;
        p.joint_rotations[j] = Quat::from_axis_angle_vec(Vec3::new(v[o], v[o + 1], v[o + 2]));
    }
    let o = JOINT_COUNT * 3;
    p.translation = Vec3::new(v[o], v[o + 1], v[o + 2]);
    p.expression.copy_from_slice(&v[o + 3..o + 3 + EXPRESSION_DIM]);
    p
}

fn step_for(index: usize, cfg: &PoseDeltaConfig) -> f32 {
    let rot_end = JOINT_COUNT * 3;
    if index < rot_end {
        cfg.rotation_step
    } else if index < rot_end + 3 {
        cfg.translation_step
    } else {
        cfg.coefficient_step
    }
}

/// Encoder: keyframe + closed-loop parameter deltas.
pub struct PoseDeltaEncoder {
    /// Configuration.
    pub config: PoseDeltaConfig,
    reference: Option<Vec<f32>>,
    betas: [f32; SHAPE_DIM],
    frames_since_key: u32,
}

/// Decoder state.
#[derive(Default)]
pub struct PoseDeltaDecoder {
    reference: Option<Vec<f32>>,
    betas: [f32; SHAPE_DIM],
}

impl PoseDeltaEncoder {
    /// Build an encoder.
    pub fn new(config: PoseDeltaConfig) -> Self {
        Self { config, reference: None, betas: [0.0; SHAPE_DIM], frames_since_key: 0 }
    }

    /// Encode one pose (keypoints are only shipped in keyframes; the
    /// receiver reconstructs from parameters between keys).
    pub fn encode(&mut self, params: &SmplxParams) -> Vec<u8> {
        let need_key = self.reference.is_none()
            || self.betas != params.betas
            || (self.config.keyframe_interval > 0
                && self.frames_since_key >= self.config.keyframe_interval);
        if need_key {
            self.frames_since_key = 0;
            self.betas = params.betas;
            // Reference is the *payload-roundtripped* parameters, which
            // is what the receiver will hold.
            let payload = PosePayload::new(params.clone(), vec![]);
            let bytes = payload.to_bytes();
            let decoded = PosePayload::from_bytes(&bytes).expect("own payload").params;
            self.reference = Some(param_vector(&decoded));
            let mut out = vec![KEY_MAGIC];
            out.extend_from_slice(&lzma_compress(&bytes));
            return out;
        }
        self.frames_since_key += 1;
        let reference = self.reference.as_mut().unwrap();
        let current = param_vector(params);
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(6);
        for (i, (r, &c)) in reference.iter_mut().zip(&current).enumerate() {
            let step = step_for(i, &self.config);
            let q = ((c - *r) / step).round() as i32;
            encode_bucketed(&mut enc, &mut tree, zigzag(q));
            *r += q as f32 * step; // closed loop
        }
        let mut out = vec![DELTA_MAGIC];
        out.extend_from_slice(&enc.finish());
        out
    }
}

impl PoseDeltaDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode one frame. `config` must match the encoder's.
    ///
    /// Hostile-input contract: typed errors, and a delta frame whose
    /// coded bytes run dry is rejected with the reference rolled back
    /// (zero-fed deltas would silently corrupt the closed loop).
    pub fn decode(
        &mut self,
        data: &[u8],
        config: &PoseDeltaConfig,
    ) -> Result<SmplxParams, DecodeError> {
        let (&magic, body) = data
            .split_first()
            .ok_or(DecodeError::Truncated { needed: 1, available: 0 })?;
        match magic {
            KEY_MAGIC => {
                let raw = lzma_decompress(body)?;
                let payload = PosePayload::from_bytes(&raw)?;
                self.betas = payload.params.betas;
                self.reference = Some(param_vector(&payload.params));
                Ok(payload.params)
            }
            DELTA_MAGIC => {
                let reference = self.reference.as_mut().ok_or_else(|| {
                    DecodeError::corrupt("pose delta", "delta frame before any keyframe")
                })?;
                let mut dec = RangeDecoder::new(body);
                let mut tree = BitTree::new(6);
                let mut next = reference.clone();
                for (i, r) in next.iter_mut().enumerate() {
                    if dec.exhausted() {
                        return Err(DecodeError::Truncated {
                            needed: reference.len(),
                            available: i,
                        });
                    }
                    let q = unzigzag(decode_bucketed(&mut dec, &mut tree));
                    *r += q as f32 * step_for(i, config);
                }
                *reference = next;
                Ok(params_from_vector(reference, &self.betas))
            }
            other => Err(DecodeError::corrupt(
                "pose delta",
                format!("unknown pose frame magic {other:#x}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_body::motion::{MotionKind, MotionSynthesizer};
    use holo_body::skeleton::Skeleton;

    fn clip(frames: usize) -> Vec<SmplxParams> {
        let mut synth = MotionSynthesizer::new(4);
        synth.clip(MotionKind::Talking, frames as f32 / 30.0, 30.0).frames
    }

    #[test]
    fn stream_roundtrips_accurately() {
        let frames = clip(30);
        let cfg = PoseDeltaConfig::default();
        let mut enc = PoseDeltaEncoder::new(cfg);
        let mut dec = PoseDeltaDecoder::new();
        let sk = Skeleton::neutral();
        for f in &frames {
            let bytes = enc.encode(f);
            let out = dec.decode(&bytes, &cfg).unwrap();
            // Joint positions of the decoded pose match the input within
            // quantization tolerance.
            let a = sk.forward_kinematics(f).positions();
            let b = sk.forward_kinematics(&out).positions();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((*x - *y).length() < 0.01, "joint error {}", (*x - *y).length());
            }
        }
    }

    #[test]
    fn delta_frames_far_below_lzma_frames() {
        let frames = clip(30);
        let cfg = PoseDeltaConfig::default();
        let mut enc = PoseDeltaEncoder::new(cfg);
        let mut delta_total = 0usize;
        let mut lzma_total = 0usize;
        for (i, f) in frames.iter().enumerate() {
            let bytes = enc.encode(f);
            if i > 0 {
                delta_total += bytes.len();
            }
            lzma_total += lzma_compress(&PosePayload::new(f.clone(), vec![]).to_bytes()).len();
        }
        let mean_delta = delta_total / (frames.len() - 1);
        let mean_lzma = lzma_total / frames.len();
        assert!(
            mean_delta * 2 < mean_lzma,
            "delta {mean_delta} B vs per-frame LZMA {mean_lzma} B"
        );
    }

    #[test]
    fn no_drift_over_long_streams() {
        let frames = clip(90);
        let cfg = PoseDeltaConfig::default();
        let mut enc = PoseDeltaEncoder::new(cfg);
        let mut dec = PoseDeltaDecoder::new();
        let sk = Skeleton::neutral();
        let mut last = None;
        for f in &frames {
            last = Some(dec.decode(&enc.encode(f), &cfg).unwrap());
        }
        let a = sk.forward_kinematics(frames.last().unwrap()).positions();
        let b = sk.forward_kinematics(&last.unwrap()).positions();
        let worst = a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).length()).fold(0.0f32, f32::max);
        assert!(worst < 0.01, "drift after 90 frames: {worst}");
    }

    #[test]
    fn keyframe_interval_refreshes() {
        let frames = clip(10);
        let cfg = PoseDeltaConfig { keyframe_interval: 3, ..Default::default() };
        let mut enc = PoseDeltaEncoder::new(cfg);
        let kinds: Vec<u8> = frames.iter().map(|f| enc.encode(f)[0]).collect();
        assert!(kinds.iter().filter(|&&k| k == KEY_MAGIC).count() >= 3);
    }

    #[test]
    fn decoder_requires_keyframe_first() {
        let frames = clip(2);
        let cfg = PoseDeltaConfig::default();
        let mut enc = PoseDeltaEncoder::new(cfg);
        let _ = enc.encode(&frames[0]);
        let delta = enc.encode(&frames[1]);
        let mut dec = PoseDeltaDecoder::new();
        assert!(dec.decode(&delta, &cfg).is_err());
        assert!(dec.decode(&[], &cfg).is_err());
        assert!(dec.decode(&[0xFF, 1, 2], &cfg).is_err());
    }
}
