//! Unit quaternions for rotations.
//!
//! Joint rotations in the avatar skeleton are stored as quaternions; the
//! pose wire format stores them as axis-angle triples (3 floats instead of
//! 4), the same convention SMPL-X uses, so [`Quat::to_axis_angle`] /
//! [`Quat::from_axis_angle_vec`] define the conversion.

use crate::vec::Vec3;
use crate::Mat3;
use std::ops::Mul;

/// A rotation quaternion `w + xi + yj + zk`, kept approximately unit-length.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Quat {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self { x: 0.0, y: 0.0, z: 0.0, w: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Rotation of `angle` radians about the (not necessarily unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let axis = axis.normalized();
        let half = angle * 0.5;
        let (s, c) = half.sin_cos();
        Self::new(axis.x * s, axis.y * s, axis.z * s, c)
    }

    /// Rotation from a compact axis-angle vector whose direction is the axis
    /// and length the angle in radians (the SMPL-X pose convention).
    pub fn from_axis_angle_vec(v: Vec3) -> Self {
        let angle = v.length();
        if angle < 1e-8 {
            // First-order expansion keeps tiny rotations smooth.
            Self::new(v.x * 0.5, v.y * 0.5, v.z * 0.5, 1.0).normalized()
        } else {
            Self::from_axis_angle(v / angle, angle)
        }
    }

    /// Convert back to the compact axis-angle vector. Inverse of
    /// [`Quat::from_axis_angle_vec`] up to quaternion double-cover.
    pub fn to_axis_angle(self) -> Vec3 {
        let q = if self.w < 0.0 { -self } else { self };
        let s_sq = 1.0 - q.w * q.w;
        if s_sq < 1e-12 {
            return Vec3::new(q.x, q.y, q.z) * 2.0;
        }
        let s = s_sq.sqrt();
        let angle = 2.0 * q.w.clamp(-1.0, 1.0).acos();
        Vec3::new(q.x, q.y, q.z) / s * angle
    }

    /// Euler rotation applied in XYZ order (intrinsic).
    pub fn from_euler_xyz(x: f32, y: f32, z: f32) -> Self {
        Self::from_axis_angle(Vec3::X, x)
            * Self::from_axis_angle(Vec3::Y, y)
            * Self::from_axis_angle(Vec3::Z, z)
    }

    /// Quaternion norm.
    #[inline]
    pub fn length(self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z + self.w * self.w).sqrt()
    }

    /// Unit-length copy; identity for the zero quaternion.
    pub fn normalized(self) -> Self {
        let l = self.length();
        if l > 1e-12 {
            Self::new(self.x / l, self.y / l, self.z / l, self.w / l)
        } else {
            Self::IDENTITY
        }
    }

    /// The inverse rotation (conjugate, assuming unit length).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(-self.x, -self.y, -self.z, self.w)
    }

    /// Rotate a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 * q_vec x (q_vec x v + w * v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Quaternion dot product (cosine of half the angle between rotations).
    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Spherical linear interpolation, taking the shortest arc.
    pub fn slerp(self, mut o: Self, t: f32) -> Self {
        let mut d = self.dot(o);
        if d < 0.0 {
            o = -o;
            d = -d;
        }
        if d > 0.9995 {
            // Nearly parallel: fall back to normalized lerp.
            return Self::new(
                crate::lerp(self.x, o.x, t),
                crate::lerp(self.y, o.y, t),
                crate::lerp(self.z, o.z, t),
                crate::lerp(self.w, o.w, t),
            )
            .normalized();
        }
        let theta = d.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Self::new(
            self.x * a + o.x * b,
            self.y * a + o.y * b,
            self.z * a + o.z * b,
            self.w * a + o.w * b,
        )
    }

    /// Angle in radians between two rotations.
    pub fn angle_to(self, o: Self) -> f32 {
        2.0 * self.dot(o).abs().clamp(-1.0, 1.0).acos()
    }

    /// Rotation matrix equivalent.
    pub fn to_mat3(self) -> Mat3 {
        let Self { x, y, z, w } = self.normalized();
        Mat3::from_rows(
            Vec3::new(1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)),
            Vec3::new(2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)),
            Vec3::new(2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)),
        )
    }
}

impl Mul for Quat {
    type Output = Self;
    /// Hamilton product: `(a * b).rotate(v) == a.rotate(b.rotate(v))`.
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
        )
    }
}

impl std::ops::Neg for Quat {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z, -self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f32) {
        assert!((a - b).length() < eps, "{a:?} vs {b:?}");
    }

    #[test]
    fn rotate_90_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert_vec_close(q.rotate(Vec3::X), Vec3::Y, 1e-6);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_axis_angle(Vec3::X, 0.7);
        let b = Quat::from_axis_angle(Vec3::Y, -1.2);
        let v = Vec3::new(0.3, 1.0, -2.0);
        assert_vec_close((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-5);
    }

    #[test]
    fn axis_angle_roundtrip() {
        for v in [
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.5, -1.0, 0.25),
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::new(1e-9, 0.0, 0.0),
        ] {
            let q = Quat::from_axis_angle_vec(v);
            let back = q.to_axis_angle();
            assert_vec_close(v, back, 1e-4);
        }
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_euler_xyz(0.3, 1.1, -0.6);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_close(q.conjugate().rotate(q.rotate(v)), v, 1e-5);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Y, PI / 2.0);
        // acos near 1.0 is ill-conditioned, so angle tolerance is loose.
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-3);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-3);
        let mid = a.slerp(b, 0.5);
        assert!(approx_eq(mid.angle_to(a), PI / 4.0, 1e-4));
    }

    #[test]
    fn mat3_matches_quat_rotation() {
        let q = Quat::from_euler_xyz(0.4, -0.9, 1.7);
        let m = q.to_mat3();
        let v = Vec3::new(-0.2, 0.8, 1.5);
        assert_vec_close(m.mul_vec(v), q.rotate(v), 1e-5);
    }

    #[test]
    fn angle_to_handles_double_cover() {
        let q = Quat::from_axis_angle(Vec3::X, 0.8);
        assert!(q.angle_to(-q) < 1e-5);
    }
}
