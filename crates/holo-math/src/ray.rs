//! Rays and ray-primitive intersection, used by the RGB-D capture renderer
//! (sphere tracing) and the NeRF volume renderer (ray sampling).

use crate::aabb::Aabb;
use crate::vec::Vec3;

/// A half-line `origin + t * dir`, `t >= 0`, with `dir` unit length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    /// Construct a ray; `dir` is normalized.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Self { origin, dir: dir.normalized() }
    }

    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Intersect with an AABB using the slab method.
    ///
    /// Returns the `(t_near, t_far)` parameter interval of the overlap, or
    /// `None` when the ray misses. `t_near` is clamped to 0 when the origin
    /// is inside the box.
    pub fn intersect_aabb(&self, b: &Aabb) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (self.origin.x, self.dir.x, b.min.x, b.max.x),
                1 => (self.origin.y, self.dir.y, b.min.y, b.max.y),
                _ => (self.origin.z, self.dir.z, b.min.z, b.max.z),
            };
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }

    /// Intersect with a sphere; returns the nearest positive hit parameter.
    pub fn intersect_sphere(&self, center: Vec3, radius: f32) -> Option<f32> {
        let oc = self.origin - center;
        let b = oc.dot(self.dir);
        let c = oc.length_sq() - radius * radius;
        let disc = b * b - c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t = -b - sq;
        if t >= 0.0 {
            Some(t)
        } else {
            let t = -b + sq;
            (t >= 0.0).then_some(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn aabb_hit_and_miss() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let hit = Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::X);
        let (t0, t1) = hit.intersect_aabb(&b).unwrap();
        assert!(approx_eq(t0, 4.0, 1e-5) && approx_eq(t1, 6.0, 1e-5));
        let miss = Ray::new(Vec3::new(-5.0, 3.0, 0.0), Vec3::X);
        assert!(miss.intersect_aabb(&b).is_none());
    }

    #[test]
    fn aabb_from_inside_clamps_near() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let r = Ray::new(Vec3::ZERO, Vec3::Y);
        let (t0, t1) = r.intersect_aabb(&b).unwrap();
        assert_eq!(t0, 0.0);
        assert!(approx_eq(t1, 1.0, 1e-5));
    }

    #[test]
    fn aabb_parallel_ray() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let inside = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        assert!(inside.intersect_aabb(&b).is_some());
        let outside = Ray::new(Vec3::new(2.0, 0.0, -5.0), Vec3::Z);
        assert!(outside.intersect_aabb(&b).is_none());
    }

    #[test]
    fn sphere_nearest_hit() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let t = r.intersect_sphere(Vec3::ZERO, 1.0).unwrap();
        assert!(approx_eq(t, 4.0, 1e-5));
        assert!(r.intersect_sphere(Vec3::new(10.0, 0.0, 0.0), 1.0).is_none());
    }

    #[test]
    fn sphere_from_inside() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let t = r.intersect_sphere(Vec3::ZERO, 2.0).unwrap();
        assert!(approx_eq(t, 2.0, 1e-5));
    }
}
