//! Small matrix types: [`Mat3`] and [`Mat4`].
//!
//! `Mat4` carries the rigid/affine transforms used by skinning and camera
//! models; `Mat3` is the rotation block. Storage is row-major arrays of row
//! vectors, which keeps the code readable (matrix entries are
//! `rows[r][c]`).

use crate::quat::Quat;
use crate::vec::{Vec3, Vec4};
use std::ops::Mul;

/// 3x3 matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    pub rows: [Vec3; 3],
}

/// 4x4 matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    pub rows: [Vec4; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat3 {
    pub const IDENTITY: Self = Self {
        rows: [
            Vec3 { x: 1.0, y: 0.0, z: 0.0 },
            Vec3 { x: 0.0, y: 1.0, z: 0.0 },
            Vec3 { x: 0.0, y: 0.0, z: 1.0 },
        ],
    };

    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Self { rows: [r0, r1, r2] }
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.rows[0].dot(v), self.rows[1].dot(v), self.rows[2].dot(v))
    }

    /// Matrix transpose (the inverse, for pure rotations).
    pub fn transpose(&self) -> Self {
        Self::from_rows(
            Vec3::new(self.rows[0].x, self.rows[1].x, self.rows[2].x),
            Vec3::new(self.rows[0].y, self.rows[1].y, self.rows[2].y),
            Vec3::new(self.rows[0].z, self.rows[1].z, self.rows[2].z),
        )
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        self.rows[0].dot(self.rows[1].cross(self.rows[2]))
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        let ot = o.transpose();
        Self::from_rows(
            Vec3::new(self.rows[0].dot(ot.rows[0]), self.rows[0].dot(ot.rows[1]), self.rows[0].dot(ot.rows[2])),
            Vec3::new(self.rows[1].dot(ot.rows[0]), self.rows[1].dot(ot.rows[1]), self.rows[1].dot(ot.rows[2])),
            Vec3::new(self.rows[2].dot(ot.rows[0]), self.rows[2].dot(ot.rows[1]), self.rows[2].dot(ot.rows[2])),
        )
    }
}

impl Mat4 {
    pub const IDENTITY: Self = Self {
        rows: [
            Vec4 { x: 1.0, y: 0.0, z: 0.0, w: 0.0 },
            Vec4 { x: 0.0, y: 1.0, z: 0.0, w: 0.0 },
            Vec4 { x: 0.0, y: 0.0, z: 1.0, w: 0.0 },
            Vec4 { x: 0.0, y: 0.0, z: 0.0, w: 1.0 },
        ],
    };

    pub fn from_rows(r0: Vec4, r1: Vec4, r2: Vec4, r3: Vec4) -> Self {
        Self { rows: [r0, r1, r2, r3] }
    }

    /// Pure translation.
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.rows[0].w = t.x;
        m.rows[1].w = t.y;
        m.rows[2].w = t.z;
        m
    }

    /// Uniform scale.
    pub fn scale(s: f32) -> Self {
        let mut m = Self::IDENTITY;
        m.rows[0].x = s;
        m.rows[1].y = s;
        m.rows[2].z = s;
        m
    }

    /// Rigid transform from rotation + translation.
    pub fn from_rotation_translation(q: Quat, t: Vec3) -> Self {
        let r = q.to_mat3();
        Self::from_rows(
            r.rows[0].extend(t.x),
            r.rows[1].extend(t.y),
            r.rows[2].extend(t.z),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Transform a point (applies translation).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let v = p.extend(1.0);
        Vec3::new(self.rows[0].dot(v), self.rows[1].dot(v), self.rows[2].dot(v))
    }

    /// Transform a direction (ignores translation).
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        let v = d.extend(0.0);
        Vec3::new(self.rows[0].dot(v), self.rows[1].dot(v), self.rows[2].dot(v))
    }

    /// The upper-left 3x3 rotation/scale block.
    pub fn rotation_block(&self) -> Mat3 {
        Mat3::from_rows(
            self.rows[0].truncate(),
            self.rows[1].truncate(),
            self.rows[2].truncate(),
        )
    }

    /// Translation column.
    pub fn translation_part(&self) -> Vec3 {
        Vec3::new(self.rows[0].w, self.rows[1].w, self.rows[2].w)
    }

    /// Inverse of a rigid transform (rotation + translation only).
    pub fn rigid_inverse(&self) -> Self {
        let rt = self.rotation_block().transpose();
        let t = self.translation_part();
        let nt = rt.mul_vec(t) * -1.0;
        Self::from_rows(
            rt.rows[0].extend(nt.x),
            rt.rows[1].extend(nt.y),
            rt.rows[2].extend(nt.z),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }
}

impl Mul for Mat4 {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        let cols = [
            Vec4::new(o.rows[0].x, o.rows[1].x, o.rows[2].x, o.rows[3].x),
            Vec4::new(o.rows[0].y, o.rows[1].y, o.rows[2].y, o.rows[3].y),
            Vec4::new(o.rows[0].z, o.rows[1].z, o.rows[2].z, o.rows[3].z),
            Vec4::new(o.rows[0].w, o.rows[1].w, o.rows[2].w, o.rows[3].w),
        ];
        let row = |r: Vec4| Vec4::new(r.dot(cols[0]), r.dot(cols[1]), r.dot(cols[2]), r.dot(cols[3]));
        Self::from_rows(row(self.rows[0]), row(self.rows[1]), row(self.rows[2]), row(self.rows[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_vec_close(a: Vec3, b: Vec3, eps: f32) {
        assert!((a - b).length() < eps, "{a:?} vs {b:?}");
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn rigid_inverse_roundtrip() {
        let q = Quat::from_euler_xyz(0.3, -0.8, 1.2);
        let m = Mat4::from_rotation_translation(q, Vec3::new(2.0, -1.0, 0.5));
        let inv = m.rigid_inverse();
        let p = Vec3::new(0.7, 3.0, -2.2);
        assert_vec_close(inv.transform_point(m.transform_point(p)), p, 1e-5);
        let prod = m * inv;
        assert_vec_close(prod.transform_point(p), p, 1e-5);
    }

    #[test]
    fn mat3_transpose_inverts_rotation() {
        let r = Quat::from_euler_xyz(1.0, 0.2, -0.4).to_mat3();
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_vec_close(r.transpose().mul_vec(r.mul_vec(v)), v, 1e-5);
        assert!(approx_eq(r.det(), 1.0, 1e-5));
    }

    #[test]
    fn mat4_mul_composes() {
        let a = Mat4::translation(Vec3::X);
        let b = Mat4::from_rotation_translation(Quat::from_axis_angle(Vec3::Z, 1.0), Vec3::Y);
        let p = Vec3::new(0.3, 0.4, 0.5);
        assert_vec_close((a * b).transform_point(p), a.transform_point(b.transform_point(p)), 1e-5);
    }

    #[test]
    fn scale_scales() {
        let m = Mat4::scale(2.5);
        assert_eq!(m.transform_point(Vec3::ONE), Vec3::splat(2.5));
    }
}
