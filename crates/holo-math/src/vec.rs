//! Fixed-size vector types: [`Vec2`], [`Vec3`], [`Vec4`].
//!
//! All types are `repr(C)` plain-old-data so they can be serialized to wire
//! formats by reading their fields in order; the compression crate relies on
//! this for the pose payload layout.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component `f32` vector (image coordinates, UVs, gaze positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

/// A 3-component `f32` vector (positions, directions, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec4 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

impl Vec2 {
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the sqrt).
    #[inline]
    pub fn length_sq(self) -> f32 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Self) -> f32 {
        (self - o).length()
    }

    /// Unit-length copy; returns `Vec2::ZERO` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            Self::ZERO
        }
    }

    /// Component-wise linear interpolation.
    #[inline]
    pub fn lerp(self, o: Self, t: f32) -> Self {
        self + (o - self) * t
    }
}

impl Vec3 {
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Self = Self { x: 1.0, y: 1.0, z: 1.0 };
    pub const X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_sq(self) -> f32 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Self) -> f32 {
        (self - o).length()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, o: Self) -> f32 {
        (self - o).length_sq()
    }

    /// Unit-length copy; returns `Vec3::ZERO` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            Self::ZERO
        }
    }

    /// Component-wise linear interpolation.
    #[inline]
    pub fn lerp(self, o: Self, t: f32) -> Self {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, o: Self) -> Self {
        Self::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Extend with a `w` component into homogeneous coordinates.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// An arbitrary unit vector orthogonal to `self` (which must be nonzero).
    pub fn any_orthonormal(self) -> Self {
        let n = self.normalized();
        let other = if n.x.abs() < 0.9 { Self::X } else { Self::Y };
        n.cross(other).normalized()
    }

    /// Flatten a slice of `Vec3` into an `f32` buffer `[x0,y0,z0,x1,..]`.
    pub fn flatten(points: &[Self]) -> Vec<f32> {
        let mut out = Vec::with_capacity(points.len() * 3);
        for p in points {
            out.push(p.x);
            out.push(p.y);
            out.push(p.z);
        }
        out
    }

    /// Inverse of [`Vec3::flatten`]. Trailing partial triples are dropped.
    pub fn unflatten(data: &[f32]) -> Vec<Self> {
        data.chunks_exact(3).map(|c| Self::new(c[0], c[1], c[2])).collect()
    }
}

impl Vec4 {
    pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0, w: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Drop the `w` component.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `xyz / w`.
    #[inline]
    pub fn project(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

macro_rules! impl_vec_ops {
    ($t:ty, $($f:ident),+) => {
        impl Add for $t {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                Self { $($f: self.$f + o.$f),+ }
            }
        }
        impl Sub for $t {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                Self { $($f: self.$f - o.$f),+ }
            }
        }
        impl Neg for $t {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }
        impl Mul<f32> for $t {
            type Output = Self;
            #[inline]
            fn mul(self, s: f32) -> Self {
                Self { $($f: self.$f * s),+ }
            }
        }
        impl Mul<$t> for f32 {
            type Output = $t;
            #[inline]
            fn mul(self, v: $t) -> $t {
                v * self
            }
        }
        impl Div<f32> for $t {
            type Output = Self;
            #[inline]
            fn div(self, s: f32) -> Self {
                Self { $($f: self.$f / s),+ }
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign<f32> for $t {
            #[inline]
            fn mul_assign(&mut self, s: f32) {
                *self = *self * s;
            }
        }
        impl DivAssign<f32> for $t {
            #[inline]
            fn div_assign(&mut self, s: f32) {
                *self = *self / s;
            }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);
impl_vec_ops!(Vec4, x, y, z, w);

impl Index<usize> for Vec3 {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-5));
        assert!(approx_eq(c.dot(b), 0.0, 1e-5));
    }

    #[test]
    fn cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
    }

    #[test]
    fn normalize_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!(approx_eq(v.length(), 1.0, 1e-6));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn flatten_roundtrip() {
        let pts = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-4.0, 5.5, 0.0)];
        assert_eq!(Vec3::unflatten(&Vec3::flatten(&pts)), pts);
    }

    #[test]
    fn any_orthonormal_is_orthogonal() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -2.0, 1.4)] {
            let o = v.any_orthonormal();
            assert!(approx_eq(o.dot(v.normalized()), 0.0, 1e-5));
            assert!(approx_eq(o.length(), 1.0, 1e-5));
        }
    }

    #[test]
    fn vec2_distance() {
        assert!(approx_eq(Vec2::new(0.0, 0.0).distance(Vec2::new(3.0, 4.0)), 5.0, 1e-6));
    }

    #[test]
    fn vec4_project() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(-1.0, 5.0, 2.0);
        let b = Vec3::new(0.0, 3.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(-1.0, 3.0, 2.0));
        assert_eq!(a.max(b), Vec3::new(0.0, 5.0, 4.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 2.0));
        assert_eq!(a.max_component(), 5.0);
    }
}
