//! Axis-aligned bounding boxes.

use crate::vec::Vec3;

/// An axis-aligned bounding box defined by its min/max corners.
///
/// The "empty" box has `min > max` component-wise so that growing it with
/// the first point initializes both corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (inverted corners); `grow` on it adopts the point.
    pub const EMPTY: Self = Self {
        min: Vec3 { x: f32::INFINITY, y: f32::INFINITY, z: f32::INFINITY },
        max: Vec3 { x: f32::NEG_INFINITY, y: f32::NEG_INFINITY, z: f32::NEG_INFINITY },
    };

    pub fn new(min: Vec3, max: Vec3) -> Self {
        Self { min, max }
    }

    /// Bounding box of a point set; `EMPTY` for an empty slice.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut b = Self::EMPTY;
        for &p in points {
            b.grow(p);
        }
        b
    }

    /// True when no point has been added.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Expand to include `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expand to include another box.
    pub fn merge(&mut self, o: &Aabb) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Uniformly pad every face outward by `m`.
    pub fn expanded(&self, m: f32) -> Self {
        Self::new(self.min - Vec3::splat(m), self.max + Vec3::splat(m))
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extents (max - min).
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Longest axis length.
    pub fn longest_side(&self) -> f32 {
        self.size().max_component()
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// True when the two boxes overlap (boundary touch counts).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    /// Signed distance from `p` to the box surface (negative inside).
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        let c = self.center();
        let h = self.size() * 0.5;
        let q = (p - c).abs() - h;
        let outside = q.max(Vec3::ZERO).length();
        let inside = q.max_component().min(0.0);
        outside + inside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn from_points_bounds_all() {
        let pts = [Vec3::new(1.0, -2.0, 3.0), Vec3::new(-1.0, 4.0, 0.0), Vec3::new(0.5, 0.0, -5.0)];
        let b = Aabb::from_points(&pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, -5.0));
        assert_eq!(b.max, Vec3::new(1.0, 4.0, 3.0));
    }

    #[test]
    fn empty_box_detected() {
        assert!(Aabb::EMPTY.is_empty());
        let mut b = Aabb::EMPTY;
        b.grow(Vec3::ONE);
        assert!(!b.is_empty());
        assert_eq!(b.min, Vec3::ONE);
        assert_eq!(b.max, Vec3::ONE);
    }

    #[test]
    fn intersects_symmetric() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        let c = Aabb::new(Vec3::splat(3.0), Vec3::splat(4.0));
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn signed_distance_signs() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        assert!(b.signed_distance(Vec3::ZERO) < 0.0);
        assert!(approx_eq(b.signed_distance(Vec3::new(2.0, 0.0, 0.0)), 1.0, 1e-6));
        assert!(approx_eq(b.signed_distance(Vec3::new(1.0, 0.0, 0.0)), 0.0, 1e-6));
    }

    #[test]
    fn expanded_pads() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE).expanded(0.5);
        assert_eq!(b.min, Vec3::splat(-0.5));
        assert_eq!(b.max, Vec3::splat(1.5));
    }
}
