//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (capture noise, gaze
//! synthesis, network jitter, neural initialization) takes an explicit
//! [`Pcg32`] so that each experiment replays bit-identically from a seed.
//! PCG-XSH-RR 64/32 (O'Neill 2014) is small, fast, and statistically solid
//! for simulation purposes.


/// PCG-XSH-RR 64/32 generator.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed with a 64-bit seed and default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Seed with an explicit stream selector; distinct streams are
    /// statistically independent even with the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator (for per-component seeding).
    pub fn fork(&mut self, stream: u64) -> Self {
        Self::with_stream(self.next_u64(), stream.wrapping_mul(2654435761).wrapping_add(1))
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output (two draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits of a u32 give uniform dyadic rationals in [0,1).
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    pub fn range_u32(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        let mut x = self.next_u32();
        let mut m = (x as u64) * (n as u64);
        let mut lo = m as u32;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64) * (n as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform index into a slice of length `len` (> 0).
    pub fn index(&mut self, len: usize) -> usize {
        self.range_u32(len as u32) as usize
    }

    /// Standard normal draw via Box-Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = (1.0 - self.next_f32()).max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Pcg32::new(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u32_uniform_coverage() {
        let mut r = Pcg32::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.range_u32(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} outside tolerance");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Pcg32::new(11);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_independent() {
        let mut root = Pcg32::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted); // overwhelmingly likely
    }
}
