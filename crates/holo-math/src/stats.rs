//! Streaming summary statistics.
//!
//! The benchmark harness and QoE model accumulate per-frame measurements
//! (latency, payload size, quality) into [`Summary`] values using Welford's
//! online algorithm, then report mean / stddev / min / max / percentiles.


/// Online accumulator of count, mean, variance, min, max, and (optionally)
/// exact percentiles via a retained sample buffer.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    keep_samples: bool,
}

impl Summary {
    /// A summary that tracks only moments (O(1) memory).
    pub fn new() -> Self {
        Self { min: f64::INFINITY, max: f64::NEG_INFINITY, ..Default::default() }
    }

    /// A summary that also retains every sample so percentiles are exact.
    pub fn with_samples() -> Self {
        Self { keep_samples: true, ..Self::new() }
    }

    /// Add one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if self.keep_samples {
            self.samples.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Exact percentile `p` in `[0, 100]`; requires `with_samples`.
    ///
    /// Returns `None` when no samples were retained.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !self.keep_samples || self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Merge another summary into this one (moments only; retained samples
    /// are concatenated when both keep them).
    pub fn merge(&mut self, o: &Summary) {
        if o.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = o.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = o.count as f64;
        let delta = o.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += o.m2 + delta * delta * n1 * n2 / total;
        self.count += o.count;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        if self.keep_samples && o.keep_samples {
            self.samples.extend_from_slice(&o.samples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.percentile(50.0).is_none());
    }

    #[test]
    fn percentiles_exact() {
        let mut s = Summary::with_samples();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        let p50 = s.percentile(50.0).unwrap();
        assert!((49.0..=51.0).contains(&p50));
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..20] {
            a.record(x);
        }
        for &x in &data[20..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }
}
