//! 3D math foundation for the SemHolo reproduction.
//!
//! Every geometric computation in the workspace — avatar skinning, signed
//! distance fields, marching cubes, camera models, volume rendering — is
//! built on the primitives in this crate. The crate is dependency-light by
//! design: plain `f32` scalar math, no SIMD intrinsics, so results are
//! bit-identical across platforms, which the deterministic benchmarks rely
//! on.
//!
//! # Modules
//!
//! - [`vec`] — [`Vec2`], [`Vec3`], [`Vec4`] with the usual linear-algebra
//!   operations.
//! - [`quat`] — unit quaternions for joint rotations ([`Quat`]).
//! - [`mat`] — [`Mat3`] and [`Mat4`] column-major matrices.
//! - [`aabb`] — axis-aligned bounding boxes.
//! - [`ray`] — rays and primitive intersections.
//! - [`rng`] — [`Pcg32`], a small deterministic PCG random generator used
//!   by every stochastic component so experiments replay from a seed.
//! - [`stats`] — streaming summary statistics used by the benchmark
//!   harness and QoE model.

pub mod aabb;
pub mod mat;
pub mod quat;
pub mod ray;
pub mod rng;
pub mod stats;
pub mod vec;

pub use aabb::Aabb;
pub use mat::{Mat3, Mat4};
pub use quat::Quat;
pub use ray::Ray;
pub use rng::Pcg32;
pub use stats::Summary;
pub use vec::{Vec2, Vec3, Vec4};

/// Linear interpolation between `a` and `b` by parameter `t` in `[0, 1]`.
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamp `x` into the inclusive range `[lo, hi]`.
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Smoothstep interpolation: 0 below `e0`, 1 above `e1`, smooth in between.
#[inline]
pub fn smoothstep(e0: f32, e1: f32, x: f32) -> f32 {
    let t = clamp((x - e0) / (e1 - e0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Approximate equality for floats with an absolute tolerance.
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 10.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(2.0, 10.0, 0.5), 6.0);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(2.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(0.25, 0.0, 1.0), 0.25);
    }

    #[test]
    fn smoothstep_monotone() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f32 / 100.0;
            let y = smoothstep(0.0, 1.0, x);
            assert!(y >= prev);
            prev = y;
        }
        assert_eq!(smoothstep(0.0, 1.0, -5.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 5.0), 1.0);
    }
}
