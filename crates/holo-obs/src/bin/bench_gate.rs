//! The perf regression gate CLI (wrapped by `scripts/bench_gate.sh`).
//!
//! Modes:
//!
//! - `bench_gate compare <baseline_dir> <current_dir> [--report FILE]
//!   [--tolerance R] [--override PREFIX=R ...]` — join every
//!   `BENCH_*.json` in both directories on `(group, name)` medians,
//!   print the delta table, write the machine-readable report, exit 1
//!   on any regression. Unmatched metrics (machine-shaped bench names)
//!   warn and pass. `--override` pins a per-metric tolerance by longest
//!   `"group/name"` prefix — e.g. `--override gaussian_amortization/=1.05`
//!   holds byte-derived benches far tighter than wall-clock ones.
//! - `bench_gate scale <in.json> <factor> <out.json>` — multiply every
//!   `*_ns` statistic by `factor`; the self-test's regression injector.
//! - `bench_gate snapshot-diff <a.json> <b.json>` — byte-compare two
//!   metric snapshots after stripping histograms flagged
//!   `nondeterministic: true`; exit 1 on any difference.

use holo_obs::gate::{parse_bench_text, strip_nondeterministic, GateConfig, GateReport};
use std::path::Path;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::from(2)
}

/// All `BENCH_*.json` entries under `dir`, sorted by file name.
fn load_dir(dir: &Path) -> Result<Vec<holo_obs::BenchEntry>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                // The gate's own delta report lives next to the bench
                // artifacts; never read it back as a bench document.
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_gate_report.json"
            })
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", dir.display()));
    }
    let mut out = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)
            .map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        out.extend(
            parse_bench_text(&text).map_err(|e| format!("{}: {e}", f.display()))?,
        );
    }
    Ok(out)
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut positional = Vec::new();
    let mut report_path: Option<String> = None;
    let mut cfg = GateConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => match it.next() {
                Some(p) => report_path = Some(p.clone()),
                None => return fail("--report needs a path"),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => cfg.max_ratio = r,
                _ => return fail("--tolerance needs a ratio >= 1.0"),
            },
            "--override" => match it.next().and_then(|o| {
                let (prefix, ratio) = o.split_once('=')?;
                let ratio: f64 = ratio.parse().ok()?;
                (ratio >= 1.0 && !prefix.is_empty()).then(|| (prefix.to_string(), ratio))
            }) {
                Some(pair) => cfg.overrides.push(pair),
                None => return fail("--override needs PREFIX=RATIO with ratio >= 1.0"),
            },
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_dir, current_dir] = positional.as_slice() else {
        return fail("compare needs <baseline_dir> <current_dir>");
    };
    let baseline = match load_dir(Path::new(baseline_dir)) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let current = match load_dir(Path::new(current_dir)) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let report = GateReport::compare(&baseline, &current, &cfg);
    print!("{}", report.table());
    if let Some(path) = report_path {
        let text = report.to_json().render();
        if let Err(e) = std::fs::write(&path, text + "\n") {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!("delta report -> {path}");
    }
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scale(args: &[String]) -> ExitCode {
    let [input, factor, output] = args else {
        return fail("scale needs <in.json> <factor> <out.json>");
    };
    let Ok(factor) = factor.parse::<f64>() else {
        return fail("factor must be a number");
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    let doc = match holo_runtime::ser::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{input} did not parse: {e:?}")),
    };
    let scaled = holo_obs::gate::scale_bench(&doc, factor);
    match std::fs::write(output, scaled.render() + "\n") {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("cannot write {output}: {e}")),
    }
}

fn cmd_snapshot_diff(args: &[String]) -> ExitCode {
    let [a, b] = args else {
        return fail("snapshot-diff needs <a.json> <b.json>");
    };
    let load = |path: &str| -> Result<String, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = holo_runtime::ser::parse(&text)
            .map_err(|e| format!("{path} did not parse: {e:?}"))?;
        Ok(strip_nondeterministic(&doc).render())
    };
    match (load(a), load(b)) {
        (Ok(da), Ok(db)) if da == db => {
            println!("snapshots identical modulo nondeterministic histograms");
            ExitCode::SUCCESS
        }
        (Ok(_), Ok(_)) => {
            eprintln!("bench_gate: deterministic snapshot content differs between {a} and {b}");
            ExitCode::FAILURE
        }
        (Err(e), _) | (_, Err(e)) => fail(&e),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "compare" => cmd_compare(rest),
            "scale" => cmd_scale(rest),
            "snapshot-diff" => cmd_snapshot_diff(rest),
            other => fail(&format!("unknown mode {other:?} (compare | scale | snapshot-diff)")),
        },
        None => fail("usage: bench_gate <compare|scale|snapshot-diff> ..."),
    }
}
