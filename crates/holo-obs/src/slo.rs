//! Declarative SLOs evaluated in virtual time.
//!
//! A [`SloSpec`] states objectives — p99 motion-to-photon latency,
//! usable-frame rate, stall budget, worst-window burn rate, per-tier
//! quality floors — and is evaluated against either per-frame
//! observations ([`SloSpec::evaluate_frames`]) or an aggregate summary
//! ([`SloSpec::evaluate_summary`]) when only report-level numbers
//! survive (chaos matrix cells, fleet nodes). Every input is virtual
//! time (integer µs) or an exact count, so a verdict is a pure function
//! of the run: byte-identical across repeats and thread counts.
//!
//! Burn rates follow the SRE shape: the run is cut into fixed
//! `window_ms` windows by capture time, each window's violation
//! fraction (frames unusable or over the latency target) is computed
//! exactly, and the *worst* window must stay under the budget — a run
//! that averages fine but dies for two seconds mid-call fails here
//! while passing the whole-run averages.

use crate::sketch::LatencySketch;
use holo_runtime::ser::{JsonValue, ToJson};

/// One frame's observation: capture instant plus its end-to-end
/// latency when the frame reached the eye usable (`None` = lost,
/// corrupt, or dependency-broken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameObs {
    /// Capture time, virtual µs.
    pub at_us: u64,
    /// Capture-to-photon latency, µs; `None` when the frame never
    /// became usable.
    pub e2e_us: Option<u64>,
    /// Quality tier the frame was delivered at (`""` = untiered).
    pub tier: &'static str,
}

/// A declarative service-level objective set.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Spec name, carried into the verdict.
    pub name: String,
    /// p99 motion-to-photon latency must be ≤ this many ms.
    pub max_p99_e2e_ms: Option<f64>,
    /// Usable frames / scheduled frames must be ≥ this fraction.
    pub min_usable_rate: Option<f64>,
    /// Longest gap between consecutive usable photons must be ≤ this
    /// many ms.
    pub max_stall_ms: Option<f64>,
    /// Burn-rate window length, ms (capture-time windows).
    pub window_ms: u64,
    /// Worst window's violation fraction must be ≤ this.
    pub max_window_burn: Option<f64>,
    /// Per-tier floors: at least this fraction of usable frames must
    /// have been delivered at the named tier.
    pub tier_floors: Vec<(String, f64)>,
}

impl SloSpec {
    /// The default telepresence objective: p99 motion-to-photon
    /// ≤ 100 ms (the paper's interactivity bound), ≥ 90% usable
    /// frames, no stall longer than 250 ms, and no one-second window
    /// losing more than a quarter of its frames.
    pub fn telepresence() -> Self {
        Self {
            name: "telepresence".to_string(),
            max_p99_e2e_ms: Some(100.0),
            min_usable_rate: Some(0.90),
            max_stall_ms: Some(250.0),
            window_ms: 1_000,
            max_window_burn: Some(0.25),
            tier_floors: Vec::new(),
        }
    }

    /// A named variant of [`SloSpec::telepresence`].
    pub fn named(name: &str) -> Self {
        Self { name: name.to_string(), ..Self::telepresence() }
    }

    /// The amortized-tier objective: everything in
    /// [`SloSpec::telepresence`], plus a floor on the gaussian rung —
    /// a starved subscriber that holds the prebuild blob should ride
    /// the amortized tier for at least half of its delivered frames
    /// instead of falling through to keypoints. Subjects that report
    /// no gaussian fraction (no amortized ladder in play) skip the
    /// floor rather than failing it.
    pub fn telepresence_amortized() -> Self {
        let mut spec = Self::telepresence();
        spec.name = "telepresence-amortized".to_string();
        spec.tier_floors.push(("gaussian".to_string(), 0.5));
        spec
    }

    /// Evaluate against per-frame observations.
    pub fn evaluate_frames(&self, frames: &[FrameObs]) -> SloVerdict {
        let scheduled = frames.len() as u64;
        let mut e2e = LatencySketch::new();
        let mut photon_us: Vec<u64> = Vec::new();
        for f in frames {
            if let Some(us) = f.e2e_us {
                e2e.record(us);
                photon_us.push(f.at_us + us);
            }
        }
        photon_us.sort_unstable();
        let usable = e2e.count;

        let mut v = SloVerdict::new(&self.name);
        if let Some(limit) = self.max_p99_e2e_ms {
            let p99_ms = e2e.quantile_us(0.99) as f64 / 1e3;
            v.check_le("p99_e2e_ms", p99_ms, limit);
        }
        if let Some(limit) = self.min_usable_rate {
            let rate = if scheduled == 0 { 1.0 } else { usable as f64 / scheduled as f64 };
            v.check_ge("usable_rate", rate, limit);
        }
        if let Some(limit) = self.max_stall_ms {
            v.check_le("max_stall_ms", stall_ms(frames, &photon_us), limit);
        }
        if let Some(limit) = self.max_window_burn {
            v.check_le("worst_window_burn", self.worst_window_burn(frames), limit);
        }
        for (tier, floor) in &self.tier_floors {
            let at_tier = frames
                .iter()
                .filter(|f| f.e2e_us.is_some() && f.tier == tier.as_str())
                .count() as u64;
            let frac = if usable == 0 { 0.0 } else { at_tier as f64 / usable as f64 };
            v.check_ge(&format!("tier:{tier}"), frac, *floor);
        }
        v
    }

    /// Evaluate against an aggregate summary (objectives whose datum is
    /// absent are recorded as skipped, never silently passed).
    pub fn evaluate_summary(&self, s: &SloSummary) -> SloVerdict {
        let mut v = SloVerdict::new(&self.name);
        match (self.max_p99_e2e_ms, s.p99_e2e_ms) {
            (Some(limit), Some(p99)) => v.check_le("p99_e2e_ms", p99, limit),
            (Some(_), None) => v.skip("p99_e2e_ms"),
            _ => {}
        }
        if let Some(limit) = self.min_usable_rate {
            let rate = s.usable_rate.unwrap_or(if s.frames_expected == 0 {
                1.0
            } else {
                s.frames_usable as f64 / s.frames_expected as f64
            });
            v.check_ge("usable_rate", rate, limit);
        }
        match (self.max_stall_ms, s.max_stall_ms) {
            (Some(limit), Some(stall)) => v.check_le("max_stall_ms", stall, limit),
            (Some(_), None) => v.skip("max_stall_ms"),
            _ => {}
        }
        match (self.max_window_burn, s.worst_window_burn) {
            (Some(limit), Some(burn)) => v.check_le("worst_window_burn", burn, limit),
            (Some(_), None) => v.skip("worst_window_burn"),
            _ => {}
        }
        for (tier, floor) in &self.tier_floors {
            match s.tier_fractions.iter().find(|(t, _)| t == tier) {
                Some((_, frac)) => v.check_ge(&format!("tier:{tier}"), *frac, *floor),
                None => v.skip(&format!("tier:{tier}")),
            }
        }
        v
    }

    /// Worst capture-time window's violation fraction. A frame violates
    /// when it is unusable or over the p99 latency target.
    pub fn worst_window_burn(&self, frames: &[FrameObs]) -> f64 {
        if frames.is_empty() {
            return 0.0;
        }
        let window_us = self.window_ms.max(1) * 1_000;
        let mut per_window: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for f in frames {
            let slot = per_window.entry(f.at_us / window_us).or_default();
            slot.0 += 1;
            let over_latency = match (f.e2e_us, self.max_p99_e2e_ms) {
                (Some(us), Some(limit)) => us as f64 / 1e3 > limit,
                (Some(_), None) => false,
                (None, _) => true,
            };
            if over_latency {
                slot.1 += 1;
            }
        }
        per_window
            .values()
            .map(|&(total, bad)| bad as f64 / total as f64)
            .fold(0.0, f64::max)
    }
}

/// Longest photon gap in ms. Leading gap (first capture to first
/// usable photon) counts; with no usable frames at all the stall is
/// the whole scheduled span.
fn stall_ms(frames: &[FrameObs], sorted_photon_us: &[u64]) -> f64 {
    let Some(first_at) = frames.iter().map(|f| f.at_us).min() else {
        return 0.0;
    };
    let last_at = frames.iter().map(|f| f.at_us).max().unwrap_or(first_at);
    if sorted_photon_us.is_empty() {
        return (last_at - first_at) as f64 / 1e3;
    }
    let mut worst = sorted_photon_us[0].saturating_sub(first_at);
    for pair in sorted_photon_us.windows(2) {
        worst = worst.max(pair[1] - pair[0]);
    }
    worst as f64 / 1e3
}

/// Aggregate inputs for [`SloSpec::evaluate_summary`].
#[derive(Debug, Clone, Default)]
pub struct SloSummary {
    /// Frames the run scheduled.
    pub frames_expected: u64,
    /// Frames delivered usable.
    pub frames_usable: u64,
    /// Pre-computed usable rate, for sources that only retained the
    /// ratio; overrides the count-derived rate when present.
    pub usable_rate: Option<f64>,
    /// p99 end-to-end ms, when the source report has one.
    pub p99_e2e_ms: Option<f64>,
    /// Longest stall ms, when known.
    pub max_stall_ms: Option<f64>,
    /// Worst window burn, when known.
    pub worst_window_burn: Option<f64>,
    /// `(tier, fraction of usable frames)` pairs, when known.
    pub tier_fractions: Vec<(String, f64)>,
}

/// One objective's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// Objective name (`"p99_e2e_ms"`, `"usable_rate"`, `"tier:full"`...).
    pub objective: String,
    /// Measured value.
    pub actual: f64,
    /// The spec's limit.
    pub limit: f64,
    /// `"<="` or `">="`.
    pub op: &'static str,
    /// Whether the objective held.
    pub pass: bool,
}

/// A spec's verdict over one subject.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// Spec name.
    pub spec: String,
    /// All evaluated objectives.
    pub checks: Vec<SloCheck>,
    /// Objectives the input had no datum for (never silently passed).
    pub skipped: Vec<String>,
}

impl SloVerdict {
    /// An empty verdict for `spec` — downstream crates (e.g.
    /// `holo-chaos`'s unequal-protection sweep) build their own
    /// verdicts with the same check vocabulary instead of reinventing
    /// pass/fail bookkeeping.
    pub fn new(spec: &str) -> Self {
        Self { spec: spec.to_string(), checks: Vec::new(), skipped: Vec::new() }
    }

    /// Record an upper-bound objective: passes when `actual <= limit`.
    pub fn check_le(&mut self, objective: &str, actual: f64, limit: f64) {
        self.checks.push(SloCheck {
            objective: objective.to_string(),
            actual,
            limit,
            op: "<=",
            pass: actual <= limit,
        });
    }

    /// Record a lower-bound objective: passes when `actual >= limit`.
    pub fn check_ge(&mut self, objective: &str, actual: f64, limit: f64) {
        self.checks.push(SloCheck {
            objective: objective.to_string(),
            actual,
            limit,
            op: ">=",
            pass: actual >= limit,
        });
    }

    /// Record an objective the input had no datum for — reported as
    /// skipped, never silently passed.
    pub fn skip(&mut self, objective: &str) {
        self.skipped.push(objective.to_string());
    }

    /// True when every evaluated objective held.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Compact one-line rendering for run tables.
    pub fn line(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            format!("{} [{}]", if self.pass() { "PASS" } else { "FAIL" }, self.spec);
        for c in &self.checks {
            let _ = write!(
                out,
                " {}{}={:.3}{}{:.3}",
                if c.pass { "" } else { "!" },
                c.objective,
                c.actual,
                c.op,
                c.limit
            );
        }
        for s in &self.skipped {
            let _ = write!(out, " {s}=skipped");
        }
        out
    }

    /// Canonical JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("spec", self.spec.to_json()),
            ("pass", JsonValue::Bool(self.pass())),
            (
                "checks",
                JsonValue::Arr(
                    self.checks
                        .iter()
                        .map(|c| {
                            JsonValue::obj([
                                ("objective", c.objective.to_json()),
                                ("actual", c.actual.to_json()),
                                ("op", c.op.to_json()),
                                ("limit", c.limit.to_json()),
                                ("pass", JsonValue::Bool(c.pass)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "skipped",
                JsonValue::Arr(self.skipped.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

/// Histograms of a metric snapshot that are safe to gate on: every
/// histogram **not** flagged `nondeterministic: true`. Wall-clock
/// families (the compression codecs' timing histograms) are excluded by
/// their flag — never by a name list, so a new wall-clock metric is
/// excluded the day it is added, not the day someone remembers to
/// update a list.
pub fn deterministic_histograms(snapshot: &JsonValue) -> Vec<(String, JsonValue)> {
    let Some(JsonValue::Obj(pairs)) = snapshot.get("histograms") else {
        return Vec::new();
    };
    pairs
        .iter()
        .filter(|(_, h)| !matches!(h.get("nondeterministic"), Some(JsonValue::Bool(true))))
        .map(|(k, h)| (k.clone(), h.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(at_ms: u64, e2e_ms: Option<u64>) -> FrameObs {
        FrameObs { at_us: at_ms * 1_000, e2e_us: e2e_ms.map(|m| m * 1_000), tier: "" }
    }

    #[test]
    fn healthy_run_passes_telepresence() {
        let frames: Vec<FrameObs> = (0..300).map(|i| obs(i * 33, Some(60))).collect();
        let v = SloSpec::telepresence().evaluate_frames(&frames);
        assert!(v.pass(), "{}", v.line());
        assert!(v.skipped.is_empty());
    }

    #[test]
    fn latency_breach_fails_p99_only() {
        let frames: Vec<FrameObs> = (0..300)
            .map(|i| obs(i * 33, Some(if i % 50 == 0 { 400 } else { 60 })))
            .collect();
        let v = SloSpec::telepresence().evaluate_frames(&frames);
        assert!(!v.pass());
        let p99 = v.checks.iter().find(|c| c.objective == "p99_e2e_ms").unwrap();
        assert!(!p99.pass);
        let usable = v.checks.iter().find(|c| c.objective == "usable_rate").unwrap();
        assert!(usable.pass);
    }

    #[test]
    fn burst_loss_fails_burn_but_not_average() {
        // 20s run at 30fps; one second loses everything: overall usable
        // rate ~0.95 (passes ≥0.9) but the worst window burns 100%.
        let frames: Vec<FrameObs> = (0..600)
            .map(|i| {
                let at = i * 33;
                obs(at, if (3_000..4_000).contains(&at) { None } else { Some(60) })
            })
            .collect();
        let spec = SloSpec::telepresence();
        let v = spec.evaluate_frames(&frames);
        let usable = v.checks.iter().find(|c| c.objective == "usable_rate").unwrap();
        assert!(usable.pass, "{}", v.line());
        let burn = v.checks.iter().find(|c| c.objective == "worst_window_burn").unwrap();
        assert!(!burn.pass);
        assert_eq!(burn.actual, 1.0);
    }

    #[test]
    fn stall_budget_catches_gaps() {
        let mut frames: Vec<FrameObs> = (0..30).map(|i| obs(i * 33, Some(50))).collect();
        frames.extend((20..30).map(|i| obs(1_000 + i * 33, Some(50))));
        let spec = SloSpec {
            max_stall_ms: Some(100.0),
            max_window_burn: None,
            min_usable_rate: None,
            ..SloSpec::telepresence()
        };
        let v = spec.evaluate_frames(&frames);
        let stall = v.checks.iter().find(|c| c.objective == "max_stall_ms").unwrap();
        assert!(!stall.pass);
        assert!(stall.actual > 300.0, "{}", stall.actual);
    }

    #[test]
    fn tier_floor_enforced() {
        let frames: Vec<FrameObs> = (0..100)
            .map(|i| FrameObs {
                at_us: i * 33_000,
                e2e_us: Some(50_000),
                tier: if i % 4 == 0 { "keypoint" } else { "full" },
            })
            .collect();
        let mut spec = SloSpec::telepresence();
        spec.tier_floors.push(("full".to_string(), 0.9));
        let v = spec.evaluate_frames(&frames);
        let tier = v.checks.iter().find(|c| c.objective == "tier:full").unwrap();
        assert!(!tier.pass);
        assert_eq!(tier.actual, 0.75);
    }

    #[test]
    fn amortized_spec_judges_or_skips_the_gaussian_floor() {
        let spec = SloSpec::telepresence_amortized();
        let base = SloSummary {
            frames_expected: 100,
            frames_usable: 95,
            p99_e2e_ms: Some(80.0),
            ..SloSummary::default()
        };
        // No gaussian datum: the floor is skipped, never failed.
        let v = spec.evaluate_summary(&base);
        assert!(v.pass(), "{}", v.line());
        assert!(v.skipped.contains(&"tier:gaussian".to_string()));
        // A prebuilt subscriber mostly on the rung passes the floor...
        let mut good = base.clone();
        good.tier_fractions = vec![("gaussian".to_string(), 0.8)];
        assert!(spec.evaluate_summary(&good).pass());
        // ...one that fell through to keypoints fails it.
        let mut bad = base.clone();
        bad.tier_fractions = vec![("gaussian".to_string(), 0.1)];
        let v = spec.evaluate_summary(&bad);
        assert!(!v.pass());
        let floor = v.checks.iter().find(|c| c.objective == "tier:gaussian").unwrap();
        assert!(!floor.pass);
    }

    #[test]
    fn summary_evaluation_skips_absent_data() {
        let spec = SloSpec::telepresence();
        let v = spec.evaluate_summary(&SloSummary {
            frames_expected: 100,
            frames_usable: 97,
            p99_e2e_ms: Some(80.0),
            ..SloSummary::default()
        });
        assert!(v.pass(), "{}", v.line());
        assert!(v.skipped.contains(&"max_stall_ms".to_string()));
        assert!(v.skipped.contains(&"worst_window_burn".to_string()));
        let text = v.to_json().render();
        assert!(text.contains("\"skipped\":["), "{text}");
    }

    #[test]
    fn verdict_json_is_canonical() {
        let frames: Vec<FrameObs> = (0..30).map(|i| obs(i * 33, Some(60))).collect();
        let v = SloSpec::telepresence().evaluate_frames(&frames);
        let a = v.to_json().render();
        let b = SloSpec::telepresence().evaluate_frames(&frames).to_json().render();
        assert_eq!(a, b);
        holo_runtime::ser::parse(&a).expect("verdict json parses");
    }

    #[test]
    fn flag_filter_drops_wall_clock_histograms() {
        let mut m = holo_trace::Metrics::default();
        m.histogram("stage_ms", 1.0);
        m.histogram_wall("compress.lzma.encode_ms", 3.0);
        let kept = deterministic_histograms(&m.to_json());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, "stage_ms");
    }
}
