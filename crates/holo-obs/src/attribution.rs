//! Critical-path latency attribution: exact additive stage budgets.
//!
//! A delivered frame's end-to-end latency is decomposed into an ordered
//! chain of [`Segment`]s — extract / encode / uplink / SFU-forward /
//! cascade-hop / downlink / decode / render — whose integer-microsecond
//! durations **tile the end-to-end window exactly**: consecutive
//! segments share a boundary timestamp, so the stage budgets sum to the
//! measured end-to-end latency with no float residue. The chains are
//! reassembled from the spans `holo-trace` already records:
//!
//! - **Session** vocabulary: a `frame` parent span whose children
//!   `extract → encode → transmit → decode → render` chain from capture
//!   to photon on one lane (`transmit` maps to [`Stage::Uplink`] — a
//!   1:1 session has no SFU leg).
//! - **Room** vocabulary: `room.extract → room.uplink` on the sender's
//!   lane, then `room.forward → room.decode → room.render` on each
//!   subscriber's lane, joined by the path id the room stamps into the
//!   span `frame` field (room tag | sender << 32 | frame index).
//!
//! Fleet runs reuse the room vocabulary with per-room lane bases and
//! path-id tags (no collisions across rooms), plus
//! [`AttributionOptions`] cascade splits: the inter-SFU hop latency the
//! fleet folded into a remote participant's access propagation is
//! carved out of the enclosing segment's tail as [`Stage::CascadeHop`],
//! keeping the tiling exact while making the cascade cost visible.
//!
//! Aggregation is bounded-memory: paths fold into [`LatencySketch`]es
//! and per-stage totals (per run, per lane, per node, and per e2e
//! bucket — which is what prices a percentile), never a per-frame list.

use crate::sketch::LatencySketch;
use holo_runtime::ser::{JsonValue, ToJson};
use holo_trace::SpanEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The canonical stage vocabulary, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Capture + semantic extraction on the sender device.
    Extract,
    /// Payload serialization tail (sessions model it at 1 GB/s).
    Encode,
    /// Sender access link: transmission + propagation (+ retransmits).
    Uplink,
    /// SFU ingress-to-delivery: queueing, thinning, egress downlink.
    SfuForward,
    /// Inter-SFU cascade hop (fleet runs with remote participants).
    CascadeHop,
    /// Subscriber access downlink, where instrumented separately.
    Downlink,
    /// Reconstruction on the receiver device.
    Decode,
    /// Fixed render/display overhead.
    Render,
}

/// Number of stages in [`Stage::ALL`].
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Extract,
        Stage::Encode,
        Stage::Uplink,
        Stage::SfuForward,
        Stage::CascadeHop,
        Stage::Downlink,
        Stage::Decode,
        Stage::Render,
    ];

    /// Canonical short name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Extract => "extract",
            Stage::Encode => "encode",
            Stage::Uplink => "uplink",
            Stage::SfuForward => "sfu_forward",
            Stage::CascadeHop => "cascade_hop",
            Stage::Downlink => "downlink",
            Stage::Decode => "decode",
            Stage::Render => "render",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("stage in ALL")
    }
}

/// One stage's slice of a frame path, `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Which stage.
    pub stage: Stage,
    /// Virtual start, µs.
    pub start_us: u64,
    /// Virtual end, µs (>= start).
    pub end_us: u64,
}

/// A delivered frame's complete capture-to-photon chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePath {
    /// Receiving lane (subscriber in rooms, 0 in sessions).
    pub lane: u32,
    /// Path id (the span `frame` value: room tag | sender | index).
    pub frame: u64,
    /// Contiguous segments, pipeline order.
    pub segments: Vec<Segment>,
}

impl FramePath {
    /// End-to-end latency: last segment end minus first segment start.
    pub fn e2e_us(&self) -> u64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(a), Some(b)) => b.end_us - a.start_us,
            _ => 0,
        }
    }

    /// Total µs attributed to `stage`.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.end_us - s.start_us)
            .sum()
    }

    /// Check the exact-tiling contract: at least one segment, every
    /// segment non-negative, and consecutive segments sharing their
    /// boundary timestamp. When this holds, stage budgets sum to
    /// [`FramePath::e2e_us`] *by construction* — integer µs, no
    /// residue.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err(format!("path lane={} frame={} has no segments", self.lane, self.frame));
        }
        let mut cursor = self.segments[0].start_us;
        for seg in &self.segments {
            if seg.start_us != cursor {
                return Err(format!(
                    "path lane={} frame={}: {} starts at {} but previous stage ended at {}",
                    self.lane,
                    self.frame,
                    seg.stage.name(),
                    seg.start_us,
                    cursor
                ));
            }
            if seg.end_us < seg.start_us {
                return Err(format!(
                    "path lane={} frame={}: {} ends before it starts",
                    self.lane,
                    self.frame,
                    seg.stage.name()
                ));
            }
            cursor = seg.end_us;
        }
        Ok(())
    }
}

/// Optional lane-keyed adjustments applied while assembling paths.
#[derive(Debug, Clone, Default)]
pub struct AttributionOptions {
    /// Carve this many µs of [`Stage::CascadeHop`] from the tail of the
    /// uplink segment, keyed by **sender** lane (remote participants in
    /// a cascaded fleet).
    pub cascade_up_us: BTreeMap<u32, u64>,
    /// Carve this many µs of [`Stage::CascadeHop`] from the tail of the
    /// SFU-forward segment, keyed by **subscriber** lane.
    pub cascade_down_us: BTreeMap<u32, u64>,
    /// Lane → fleet node id; present only for fleet runs, enables the
    /// per-node aggregation.
    pub node_of_lane: BTreeMap<u32, u32>,
}

/// Split `cut` µs of cascade hop off the tail of `seg`, clamped to the
/// segment length so tiling stays exact.
fn split_cascade(seg: Segment, cut: u64, out: &mut Vec<Segment>) {
    let cut = cut.min(seg.end_us - seg.start_us);
    if cut == 0 {
        out.push(seg);
        return;
    }
    let boundary = seg.end_us - cut;
    out.push(Segment { stage: seg.stage, start_us: seg.start_us, end_us: boundary });
    out.push(Segment { stage: Stage::CascadeHop, start_us: boundary, end_us: seg.end_us });
}

/// Paths reassembled from a span stream.
#[derive(Debug, Default)]
pub struct PathSet {
    /// Complete capture-to-photon chains (validated tilings).
    pub complete: Vec<FramePath>,
    /// Chains that began but never reached `render` — lost, corrupted,
    /// unusable (dependency-broken), or churned-away frames.
    pub incomplete: u64,
}

/// Session-child index: `(lane, name, start_us)` → queue of
/// `(end_us, span index)` in record order.
type StartIndex<'a> = BTreeMap<(u32, &'a str, u64), Vec<(u64, usize)>>;

/// Reassemble frame paths from recorded spans (both vocabularies).
pub fn collect_paths(spans: &[SpanEvent], opts: &AttributionOptions) -> PathSet {
    // Session children carry no frame id: key them by (lane, name,
    // start) and chain-walk from each `frame` parent. Multiple spans on
    // one key pop in record order.
    let mut by_start: StartIndex = BTreeMap::new();
    // Room stages carry the path id: sender-side spans are unique per
    // id; subscriber-side spans key by (lane, id).
    let mut by_pid: BTreeMap<(&str, u64), (u32, u64, u64)> = BTreeMap::new();
    let mut by_lane_pid: BTreeMap<(&str, u32, u64), (u64, u64)> = BTreeMap::new();
    let mut session_parents: Vec<&SpanEvent> = Vec::new();
    let mut room_forwards: Vec<&SpanEvent> = Vec::new();
    let mut room_uplinks = 0u64;
    let mut room_forward_total = 0u64;

    for (i, s) in spans.iter().enumerate() {
        match s.name {
            "frame" => session_parents.push(s),
            "extract" | "encode" | "transmit" | "decode" | "render" => {
                by_start.entry((s.lane, s.name, s.start_us)).or_default().push((s.end_us, i));
            }
            "room.extract" | "room.uplink" => {
                if s.name == "room.uplink" {
                    room_uplinks += 1;
                }
                if let Some(pid) = s.frame {
                    by_pid.insert((s.name, pid), (s.lane, s.start_us, s.end_us));
                }
            }
            "room.forward" => {
                room_forward_total += 1;
                room_forwards.push(s);
            }
            "room.decode" | "room.render" => {
                if let Some(pid) = s.frame {
                    by_lane_pid.insert((s.name, s.lane, pid), (s.start_us, s.end_us));
                }
            }
            _ => {}
        }
    }
    // Keys pop FIFO: reverse once so `pop()` yields record order.
    for v in by_start.values_mut() {
        v.reverse();
    }

    let mut out = PathSet::default();

    // --- Session chains. ---
    const SESSION_CHAIN: [(&str, Stage); 5] = [
        ("extract", Stage::Extract),
        ("encode", Stage::Encode),
        ("transmit", Stage::Uplink),
        ("decode", Stage::Decode),
        ("render", Stage::Render),
    ];
    for parent in session_parents {
        let mut cursor = parent.start_us;
        let mut segments = Vec::with_capacity(SESSION_CHAIN.len());
        let mut broken = false;
        for (name, stage) in SESSION_CHAIN {
            let Some((end_us, _)) =
                by_start.get_mut(&(parent.lane, name, cursor)).and_then(|v| v.pop())
            else {
                broken = true;
                break;
            };
            segments.push(Segment { stage, start_us: cursor, end_us });
            cursor = end_us;
        }
        if broken || cursor != parent.end_us {
            out.incomplete += 1;
            continue;
        }
        out.complete.push(FramePath {
            lane: parent.lane,
            frame: parent.frame.unwrap_or(0),
            segments,
        });
    }

    // --- Room chains: one path per delivered (subscriber, sender,
    // frame) copy, joined on the stamped path id. ---
    let mut delivered_pids: BTreeMap<u64, u64> = BTreeMap::new();
    for fwd in room_forwards {
        let Some(pid) = fwd.frame else {
            out.incomplete += 1;
            continue;
        };
        *delivered_pids.entry(pid).or_default() += 1;
        let (Some(&(_, ex_s, ex_e)), Some(&(up_lane, up_s, up_e))) =
            (by_pid.get(&("room.extract", pid)), by_pid.get(&("room.uplink", pid)))
        else {
            out.incomplete += 1;
            continue;
        };
        let (Some(&(de_s, de_e)), Some(&(re_s, re_e))) = (
            by_lane_pid.get(&("room.decode", fwd.lane, pid)),
            by_lane_pid.get(&("room.render", fwd.lane, pid)),
        ) else {
            out.incomplete += 1;
            continue;
        };
        // The sender's lane tags the uplink span; the forward span
        // carries the subscriber's.
        let mut segments = Vec::with_capacity(7);
        segments.push(Segment { stage: Stage::Extract, start_us: ex_s, end_us: ex_e });
        let up = Segment { stage: Stage::Uplink, start_us: up_s, end_us: up_e };
        match opts.cascade_up_us.get(&up_lane) {
            Some(&cut) => split_cascade(up, cut, &mut segments),
            None => segments.push(up),
        }
        let f = Segment { stage: Stage::SfuForward, start_us: fwd.start_us, end_us: fwd.end_us };
        match opts.cascade_down_us.get(&fwd.lane) {
            Some(&cut) => split_cascade(f, cut, &mut segments),
            None => segments.push(f),
        }
        segments.push(Segment { stage: Stage::Decode, start_us: de_s, end_us: de_e });
        segments.push(Segment { stage: Stage::Render, start_us: re_s, end_us: re_e });
        out.complete.push(FramePath { lane: fwd.lane, frame: pid, segments });
    }
    // Sender frames that reached the SFU but were delivered to no one
    // (or never reached it at all) began a chain that went nowhere.
    out.incomplete += room_uplinks.saturating_sub(delivered_pids.len() as u64);
    debug_assert!(room_forward_total >= delivered_pids.len() as u64);
    out
}

/// Per-group accumulator (whole run, one lane, or one node).
#[derive(Debug, Clone, Default)]
struct GroupAcc {
    frames: u64,
    stage_us: [u64; STAGE_COUNT],
    e2e: LatencySketch,
}

impl GroupAcc {
    fn record(&mut self, path: &FramePath) {
        self.frames += 1;
        for seg in &path.segments {
            self.stage_us[seg.stage.index()] += seg.end_us - seg.start_us;
        }
        self.e2e.record(path.e2e_us());
    }

    fn absorb(&mut self, other: &GroupAcc) {
        self.frames += other.frames;
        for (a, b) in self.stage_us.iter_mut().zip(other.stage_us.iter()) {
            *a += b;
        }
        self.e2e.absorb(&other.e2e);
    }
}

/// Streaming attribution accumulator: O(buckets) memory per group, no
/// per-frame retention.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Complete paths recorded.
    pub complete: u64,
    /// Broken/undelivered chains observed by the walker.
    pub incomplete: u64,
    /// Spans the recorder dropped at its cap — nonzero means the
    /// attribution below undercounts and the report says so.
    pub spans_dropped: u64,
    run: GroupAcc,
    /// Per e2e-sketch bucket, the summed stage budgets of the paths in
    /// that bucket — what prices "62% of p99 is cascade". Key is the
    /// bucket index; `u64::MAX` keys the overflow bucket.
    bucket_stage_us: BTreeMap<u64, [u64; STAGE_COUNT]>,
    per_lane: BTreeMap<u32, GroupAcc>,
    per_node: BTreeMap<u32, GroupAcc>,
    node_of_lane: BTreeMap<u32, u32>,
}

impl Attribution {
    /// Empty accumulator with a lane→node mapping (empty map = no
    /// per-node aggregation).
    pub fn with_nodes(node_of_lane: BTreeMap<u32, u32>) -> Self {
        Self { node_of_lane, ..Self::default() }
    }

    /// Fold one validated path in.
    pub fn record(&mut self, path: &FramePath) {
        self.complete += 1;
        self.run.record(path);
        let bucket = bucket_key(path.e2e_us());
        let slot = self.bucket_stage_us.entry(bucket).or_default();
        for seg in &path.segments {
            slot[seg.stage.index()] += seg.end_us - seg.start_us;
        }
        self.per_lane.entry(path.lane).or_default().record(path);
        if let Some(&node) = self.node_of_lane.get(&path.lane) {
            self.per_node.entry(node).or_default().record(path);
        }
    }

    /// Exact merge of another accumulator (fleet rooms fold in room
    /// order; all state is integral, so the merge is order-exact).
    pub fn absorb(&mut self, other: &Attribution) {
        self.complete += other.complete;
        self.incomplete += other.incomplete;
        self.spans_dropped += other.spans_dropped;
        self.run.absorb(&other.run);
        for (k, v) in &other.bucket_stage_us {
            let slot = self.bucket_stage_us.entry(*k).or_default();
            for (a, b) in slot.iter_mut().zip(v.iter()) {
                *a += b;
            }
        }
        for (k, v) in &other.per_lane {
            self.per_lane.entry(*k).or_default().absorb(v);
        }
        for (k, v) in &other.per_node {
            self.per_node.entry(*k).or_default().absorb(v);
        }
        for (k, v) in &other.node_of_lane {
            self.node_of_lane.entry(*k).or_insert(*v);
        }
    }

    /// Walk spans, validate every reassembled path, fold them in.
    /// Returns the validation error instead of silently skewing budgets
    /// if a chain ever stops tiling.
    pub fn ingest_spans(
        &mut self,
        spans: &[SpanEvent],
        opts: &AttributionOptions,
    ) -> Result<(), String> {
        let paths = collect_paths(spans, opts);
        for path in &paths.complete {
            path.validate()?;
            self.record(path);
        }
        self.incomplete += paths.incomplete;
        Ok(())
    }

    /// Finish into the canonical report.
    pub fn finish(&self) -> AttributionReport {
        let total_e2e: u128 = self.run.e2e.sum_us;
        let stage_rows = |acc: &GroupAcc| -> Vec<StageBudget> {
            let total: u128 = acc.stage_us.iter().map(|&v| v as u128).sum();
            Stage::ALL
                .iter()
                .map(|&st| {
                    let us = acc.stage_us[st.index()];
                    StageBudget {
                        stage: st,
                        total_us: us,
                        share: if total == 0 { 0.0 } else { us as f64 / total as f64 },
                        mean_us: if acc.frames == 0 {
                            0.0
                        } else {
                            us as f64 / acc.frames as f64
                        },
                    }
                })
                .collect()
        };
        let percentiles = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)]
            .into_iter()
            .map(|(label, q)| {
                let e2e_us = self.run.e2e.quantile_us(q);
                let key = self
                    .run
                    .e2e
                    .quantile_bucket(q)
                    .map(|b| b as u64)
                    .unwrap_or(u64::MAX);
                let stage_us = self.bucket_stage_us.get(&key).copied().unwrap_or_default();
                let total: u128 = stage_us.iter().map(|&v| v as u128).sum();
                let shares = Stage::ALL
                    .iter()
                    .map(|&st| {
                        let us = stage_us[st.index()];
                        (st, if total == 0 { 0.0 } else { us as f64 / total as f64 })
                    })
                    .collect();
                PercentileCut { label, e2e_us, shares }
            })
            .collect();
        AttributionReport {
            frames: self.complete,
            incomplete: self.incomplete,
            spans_dropped: self.spans_dropped,
            e2e: self.run.e2e.clone(),
            total_e2e_us: total_e2e,
            stages: stage_rows(&self.run),
            percentiles,
            per_lane: self
                .per_lane
                .iter()
                .map(|(&lane, acc)| GroupBudget {
                    key: lane,
                    frames: acc.frames,
                    p99_e2e_us: acc.e2e.quantile_us(0.99),
                    stages: stage_rows(acc),
                })
                .collect(),
            per_node: self
                .per_node
                .iter()
                .map(|(&node, acc)| GroupBudget {
                    key: node,
                    frames: acc.frames,
                    p99_e2e_us: acc.e2e.quantile_us(0.99),
                    stages: stage_rows(acc),
                })
                .collect(),
        }
    }
}

/// Sketch bucket key for an e2e value (`u64::MAX` = overflow).
fn bucket_key(e2e_us: u64) -> u64 {
    crate::sketch::bucket_index(e2e_us).map(|b| b as u64).unwrap_or(u64::MAX)
}

/// One stage's aggregate budget.
#[derive(Debug, Clone)]
pub struct StageBudget {
    /// Which stage.
    pub stage: Stage,
    /// Total µs across all frames.
    pub total_us: u64,
    /// Fraction of the summed end-to-end budget.
    pub share: f64,
    /// Mean µs per frame.
    pub mean_us: f64,
}

/// Stage shares of the frames in one e2e percentile's bucket.
#[derive(Debug, Clone)]
pub struct PercentileCut {
    /// "p50" / "p90" / "p99".
    pub label: &'static str,
    /// The percentile's e2e latency, µs.
    pub e2e_us: u64,
    /// Per-stage share of that bucket's summed budget.
    pub shares: Vec<(Stage, f64)>,
}

/// One lane's or node's budget row.
#[derive(Debug, Clone)]
pub struct GroupBudget {
    /// Lane or node id.
    pub key: u32,
    /// Complete frames through this group.
    pub frames: u64,
    /// p99 e2e for this group, µs.
    pub p99_e2e_us: u64,
    /// Per-stage budgets.
    pub stages: Vec<StageBudget>,
}

/// The canonical attribution report.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Complete (delivered + usable) frame paths.
    pub frames: u64,
    /// Chains that never completed.
    pub incomplete: u64,
    /// Recorder drops — nonzero means undercounting.
    pub spans_dropped: u64,
    /// End-to-end latency sketch.
    pub e2e: LatencySketch,
    /// Exact summed e2e µs (equals the summed stage budgets — the
    /// tiling invariant, asserted by [`AttributionReport::tiles_exactly`]).
    pub total_e2e_us: u128,
    /// Whole-run stage budgets.
    pub stages: Vec<StageBudget>,
    /// Stage shares at p50/p90/p99.
    pub percentiles: Vec<PercentileCut>,
    /// Per-lane budgets (subscriber lanes).
    pub per_lane: Vec<GroupBudget>,
    /// Per-node budgets (fleet runs only).
    pub per_node: Vec<GroupBudget>,
}

impl AttributionReport {
    /// The tiling invariant: summed stage budgets equal summed e2e
    /// exactly (integer µs).
    pub fn tiles_exactly(&self) -> bool {
        let staged: u128 = self.stages.iter().map(|s| s.total_us as u128).sum();
        staged == self.total_e2e_us
    }

    /// Stage budget lookup.
    pub fn stage(&self, stage: Stage) -> &StageBudget {
        &self.stages[stage.index()]
    }

    /// Human table: overall budget plus the percentile cuts.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>8} {:>12}",
            "stage", "total ms", "share", "mean ms/frame"
        );
        for s in &self.stages {
            if s.total_us == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:>12.2} {:>7.1}% {:>12.3}",
                s.stage.name(),
                s.total_us as f64 / 1e3,
                s.share * 100.0,
                s.mean_us / 1e3,
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>12.2} {:>8} {:>12.3}",
            "e2e",
            self.total_e2e_us as f64 / 1e3,
            "100.0%",
            if self.frames == 0 { 0.0 } else { self.total_e2e_us as f64 / self.frames as f64 / 1e3 },
        );
        for cut in &self.percentiles {
            let dominant = cut
                .shares
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("shares are finite"))
                .expect("eight stages");
            let _ = writeln!(
                out,
                "{}: {:.2} ms e2e, dominated by {} ({:.0}% of its bucket)",
                cut.label,
                cut.e2e_us as f64 / 1e3,
                dominant.0.name(),
                dominant.1 * 100.0,
            );
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} span(s) dropped at the recorder cap — budgets undercount",
                self.spans_dropped
            );
        }
        out
    }

    /// Canonical JSON.
    pub fn to_json(&self) -> JsonValue {
        let stage_json = |rows: &[StageBudget]| {
            JsonValue::Obj(
                rows.iter()
                    .filter(|s| s.total_us > 0)
                    .map(|s| {
                        (
                            s.stage.name().to_string(),
                            JsonValue::obj([
                                ("total_us", s.total_us.to_json()),
                                ("share", s.share.to_json()),
                                ("mean_us", s.mean_us.to_json()),
                            ]),
                        )
                    })
                    .collect(),
            )
        };
        let group_json = |rows: &[GroupBudget]| {
            JsonValue::Arr(
                rows.iter()
                    .map(|g| {
                        JsonValue::obj([
                            ("key", g.key.to_json()),
                            ("frames", g.frames.to_json()),
                            ("p99_e2e_us", g.p99_e2e_us.to_json()),
                            ("stages", stage_json(&g.stages)),
                        ])
                    })
                    .collect(),
            )
        };
        JsonValue::obj([
            ("frames", self.frames.to_json()),
            ("incomplete", self.incomplete.to_json()),
            ("spans_dropped", self.spans_dropped.to_json()),
            ("total_e2e_us", (self.total_e2e_us as f64).to_json()),
            ("e2e", self.e2e.to_json()),
            ("stages", stage_json(&self.stages)),
            (
                "percentiles",
                JsonValue::Arr(
                    self.percentiles
                        .iter()
                        .map(|c| {
                            JsonValue::obj([
                                ("label", c.label.to_json()),
                                ("e2e_us", c.e2e_us.to_json()),
                                (
                                    "shares",
                                    JsonValue::Obj(
                                        c.shares
                                            .iter()
                                            .filter(|(_, sh)| *sh > 0.0)
                                            .map(|(st, sh)| (st.name().to_string(), sh.to_json()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("per_lane", group_json(&self.per_lane)),
            ("per_node", group_json(&self.per_node)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &'static str,
        start: u64,
        end: u64,
        lane: u32,
        frame: Option<u64>,
    ) -> SpanEvent {
        SpanEvent { name, start_us: start, end_us: end, depth: 0, lane, frame }
    }

    /// A delivered session frame: capture 0, render done at 50_000.
    fn session_spans(base: u64, lane: u32, frame: u64) -> Vec<SpanEvent> {
        vec![
            span("frame", base, base + 50_000, lane, Some(frame)),
            span("extract", base, base + 8_000, lane, None),
            span("encode", base + 8_000, base + 9_000, lane, None),
            span("transmit", base + 9_000, base + 30_000, lane, None),
            span("decode", base + 30_000, base + 39_000, lane, None),
            span("render", base + 39_000, base + 50_000, lane, None),
        ]
    }

    #[test]
    fn session_chain_tiles_exactly() {
        let spans = session_spans(0, 0, 0);
        let set = collect_paths(&spans, &AttributionOptions::default());
        assert_eq!(set.complete.len(), 1);
        assert_eq!(set.incomplete, 0);
        let p = &set.complete[0];
        p.validate().unwrap();
        assert_eq!(p.e2e_us(), 50_000);
        let staged: u64 = Stage::ALL.iter().map(|&s| p.stage_us(s)).sum();
        assert_eq!(staged, 50_000);
        assert_eq!(p.stage_us(Stage::Uplink), 21_000);
    }

    #[test]
    fn lost_frame_counts_incomplete() {
        // Lost in transit: frame span ends at send, no decode/render.
        let spans = vec![
            span("frame", 0, 9_000, 0, Some(0)),
            span("extract", 0, 8_000, 0, None),
            span("encode", 8_000, 9_000, 0, None),
            span("transmit", 9_000, 9_000, 0, None),
        ];
        let set = collect_paths(&spans, &AttributionOptions::default());
        assert!(set.complete.is_empty());
        assert_eq!(set.incomplete, 1);
    }

    #[test]
    fn room_chain_joins_on_path_id_and_splits_cascade() {
        let pid = (3u64 << 32) | 7; // sender 3, frame 7
        let spans = vec![
            span("room.extract", 0, 5_000, 3, Some(pid)),
            span("room.uplink", 5_000, 25_000, 3, Some(pid)),
            span("room.forward", 25_000, 45_000, 1, Some(pid)),
            span("room.decode", 45_000, 52_000, 1, Some(pid)),
            span("room.render", 52_000, 63_000, 1, Some(pid)),
        ];
        let mut opts = AttributionOptions::default();
        opts.cascade_up_us.insert(3, 4_000);
        opts.cascade_down_us.insert(1, 6_000);
        let set = collect_paths(&spans, &opts);
        assert_eq!(set.complete.len(), 1);
        let p = &set.complete[0];
        p.validate().unwrap();
        assert_eq!(p.lane, 1);
        assert_eq!(p.e2e_us(), 63_000);
        assert_eq!(p.stage_us(Stage::CascadeHop), 10_000);
        assert_eq!(p.stage_us(Stage::Uplink), 16_000);
        assert_eq!(p.stage_us(Stage::SfuForward), 14_000);
        let staged: u64 = Stage::ALL.iter().map(|&s| p.stage_us(s)).sum();
        assert_eq!(staged, p.e2e_us());
    }

    #[test]
    fn undelivered_room_frame_counts_incomplete() {
        let pid = 1u64 << 32;
        let spans = vec![
            span("room.extract", 0, 5_000, 1, Some(pid)),
            span("room.uplink", 5_000, 5_000, 1, Some(pid)), // lost
        ];
        let set = collect_paths(&spans, &AttributionOptions::default());
        assert!(set.complete.is_empty());
        assert_eq!(set.incomplete, 1);
    }

    #[test]
    fn attribution_absorb_equals_single_pass() {
        let mut all: Vec<SpanEvent> = Vec::new();
        for f in 0..10u64 {
            all.extend(session_spans(f * 33_000, 0, f));
        }
        let mut whole = Attribution::default();
        whole.ingest_spans(&all, &AttributionOptions::default()).unwrap();
        let mut a = Attribution::default();
        let mut b = Attribution::default();
        a.ingest_spans(&all[..30], &AttributionOptions::default()).unwrap();
        b.ingest_spans(&all[30..], &AttributionOptions::default()).unwrap();
        a.absorb(&b);
        assert_eq!(whole.complete, a.complete);
        assert_eq!(
            whole.finish().to_json().render(),
            a.finish().to_json().render(),
            "absorb must be exact"
        );
        assert!(whole.finish().tiles_exactly());
    }

    #[test]
    fn report_renders_table_and_json() {
        let mut acc = Attribution::default();
        acc.ingest_spans(&session_spans(0, 0, 0), &AttributionOptions::default()).unwrap();
        let report = acc.finish();
        assert!(report.tiles_exactly());
        let table = report.table();
        assert!(table.contains("uplink"), "{table}");
        let doc = holo_runtime::ser::parse(&report.to_json().render()).unwrap();
        assert_eq!(doc.get("frames").unwrap().as_f64(), Some(1.0));
    }
}
