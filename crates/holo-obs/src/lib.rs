//! Observability for SemHolo runs.
//!
//! Everything upstream of this crate *simulates*; this crate *judges*.
//! Four pieces, one contract — every number is a pure function of the
//! run, byte-identical across repeats and thread counts:
//!
//! - [`sketch`]: bounded-memory HDR-style latency histograms whose
//!   [`sketch::LatencySketch::absorb`] merge is exact, so fleet-scale
//!   aggregation costs O(buckets), not O(frames).
//! - [`attribution`]: reassembles every delivered frame's span chain
//!   into an additive stage budget (extract / encode / uplink /
//!   SFU-forward / cascade-hop / downlink / decode / render) that tiles
//!   the measured end-to-end latency **exactly** in integer µs.
//! - [`slo`]: declarative objectives (p99 motion-to-photon, usable
//!   rate, stall budget, windowed burn rates, tier floors) evaluated in
//!   virtual time.
//! - [`gate`]: the bench regression gate behind
//!   `scripts/bench_gate.sh` — fresh `BENCH_*.json` vs committed
//!   baselines, per-metric tolerances, machine-readable delta report.
//!
//! See DESIGN.md §12 for how the pieces compose.

pub mod attribution;
pub mod gate;
pub mod sketch;
pub mod slo;

pub use attribution::{
    collect_paths, Attribution, AttributionOptions, AttributionReport, FramePath, Segment, Stage,
};
pub use gate::{BenchEntry, Delta, DeltaStatus, GateConfig, GateReport};
pub use sketch::LatencySketch;
pub use slo::{FrameObs, SloSpec, SloSummary, SloVerdict};
