//! Bounded-memory percentile sketches over integer microseconds.
//!
//! A [`LatencySketch`] is an HDR-style log-linear histogram: each
//! power-of-two octave is split into [`SUBBUCKETS`] linear sub-buckets,
//! so relative error is bounded by `1/SUBBUCKETS` everywhere while the
//! whole structure stays a fixed ~`BUCKETS`-slot array. Everything in
//! it is integral — counts, microsecond bounds, a `u128` sum — so
//! [`LatencySketch::absorb`] is an **exact** merge: recording a stream
//! into one sketch and recording its partitions into several sketches
//! then absorbing them produces bit-identical state regardless of the
//! partitioning or merge order. That is the property that lets
//! fleet-scale runs aggregate per-room summaries in O(buckets) instead
//! of retaining per-frame samples (or spans) and tripping the recorder
//! cap; it is property-tested in `tests/slo_attribution.rs`.

use holo_runtime::ser::{JsonValue, ToJson};

/// Linear sub-buckets per power-of-two octave (2^4: ≤6.25% relative
/// bucket width).
pub const SUBBUCKETS: u64 = 16;
const SUB_BITS: u32 = 4;
/// Highest exponent tracked exactly: values at or above `2^MAX_EXP` µs
/// (~2^40 µs ≈ 12.7 virtual days) land in the overflow bucket.
const MAX_EXP: u32 = 40;
/// Total bucket count: 16 exact small values, then 16 sub-buckets for
/// each octave `2^4..2^40`.
pub const BUCKETS: usize = (SUBBUCKETS as usize) * (MAX_EXP as usize - SUB_BITS as usize + 1);

/// Bucket index for a microsecond value below the overflow threshold.
fn bucket_of(us: u64) -> usize {
    if us < SUBBUCKETS {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let shift = msb - SUB_BITS;
    let octave = (msb - SUB_BITS) as usize; // 0 for values in [16, 32)
    (octave + 1) * SUBBUCKETS as usize + ((us >> shift) & (SUBBUCKETS - 1)) as usize
}

/// Bucket index for `us`, or `None` when it would land in overflow.
pub(crate) fn bucket_index(us: u64) -> Option<usize> {
    if us >> MAX_EXP != 0 {
        None
    } else {
        Some(bucket_of(us))
    }
}

/// Inclusive `(lower, upper)` microsecond bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUBBUCKETS as usize {
        return (i as u64, i as u64);
    }
    let octave = (i / SUBBUCKETS as usize) as u32 - 1; // 0-based from [16,32)
    let sub = (i % SUBBUCKETS as usize) as u64;
    let base = 1u64 << (octave + SUB_BITS);
    let width = base / SUBBUCKETS;
    let lo = base + sub * width;
    (lo, lo + width - 1)
}

/// A deterministic log-linear latency histogram (integer µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySketch {
    counts: Box<[u64; BUCKETS]>,
    /// Observations at or above `2^40` µs.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observations, µs.
    pub sum_us: u128,
    /// Smallest observation (µs; `u64::MAX` when empty).
    pub min_us: u64,
    /// Largest observation (µs; 0 when empty).
    pub max_us: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            overflow: 0,
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        if us >> MAX_EXP != 0 {
            self.overflow += 1;
        } else {
            self.counts[bucket_of(us)] += 1;
        }
    }

    /// Exact merge: integral state adds component-wise, so
    /// `a.absorb(&b)` equals recording both streams into one sketch —
    /// in any split and any order.
    pub fn absorb(&mut self, other: &LatencySketch) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Mean observation in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Quantile `q ∈ [0, 1]`: the upper bound of the bucket holding the
    /// q-th observation (exact `max_us` for the overflow bucket, 0 when
    /// empty). Deterministic: pure integer arithmetic over the counts.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return bucket_bounds(i).1.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Index of the bucket holding quantile `q` (`None` when the
    /// quantile lands in overflow or the sketch is empty). Attribution
    /// uses this to slice per-stage budgets at a percentile.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return Some(i);
            }
        }
        None
    }

    /// Occupied buckets as `(lower_us, upper_us, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Canonical JSON: exact integral state, occupied buckets only
    /// (each as `[lower_us, upper_us, count]`).
    pub fn to_json(&self) -> JsonValue {
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lo, hi, c)| JsonValue::Arr(vec![lo.to_json(), hi.to_json(), c.to_json()]))
            .collect();
        JsonValue::obj([
            ("count", self.count.to_json()),
            ("sum_us", (self.sum_us as f64).to_json()),
            ("min_us", if self.count == 0 { JsonValue::Null } else { self.min_us.to_json() }),
            ("max_us", if self.count == 0 { JsonValue::Null } else { self.max_us.to_json() }),
            ("p50_us", self.quantile_us(0.50).to_json()),
            ("p90_us", self.quantile_us(0.90).to_json()),
            ("p99_us", self.quantile_us(0.99).to_json()),
            ("buckets", JsonValue::Arr(buckets)),
            ("overflow", self.overflow.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = LatencySketch::new();
        for us in 0..SUBBUCKETS {
            s.record(us);
            assert_eq!(bucket_bounds(bucket_of(us)), (us, us));
        }
        assert_eq!(s.count, SUBBUCKETS);
        assert_eq!(s.min_us, 0);
        assert_eq!(s.max_us, SUBBUCKETS - 1);
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let mut v = 1u64;
        while v >> MAX_EXP == 0 {
            for us in [v, v + v / 3, v.next_power_of_two() - 1] {
                if us >> MAX_EXP != 0 {
                    continue;
                }
                let (lo, hi) = bucket_bounds(bucket_of(us));
                assert!(lo <= us && us <= hi, "{us} outside [{lo}, {hi}]");
            }
            v *= 2;
        }
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        // Buckets are contiguous: each upper bound + 1 is the next
        // lower bound, from 0 to the overflow threshold.
        let mut expect_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} not contiguous");
            assert!(hi >= lo);
            expect_lo = hi + 1;
        }
        assert_eq!(expect_lo, 1u64 << MAX_EXP);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut s = LatencySketch::new();
        for us in [100u64, 200, 300, 400, 1_000_000] {
            s.record(us);
        }
        // target = ceil(q * count): the median of five observations is
        // the third smallest.
        let p50 = s.quantile_us(0.5);
        let (_, hi) = bucket_bounds(bucket_of(300));
        assert_eq!(p50, hi);
        // The top bucket's upper bound clamps to the exact max.
        assert_eq!(s.quantile_us(1.0), 1_000_000);
        assert_eq!(s.quantile_us(0.0), bucket_bounds(bucket_of(100)).1);
    }

    #[test]
    fn overflow_quantile_resolves_to_max() {
        let mut s = LatencySketch::new();
        s.record(5);
        s.record(1u64 << 41);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.quantile_us(1.0), 1u64 << 41);
        assert_eq!(s.quantile_bucket(1.0), None);
    }

    #[test]
    fn absorb_is_exact() {
        let stream: Vec<u64> = (0..500u64).map(|i| i * i * 37 % 900_000).collect();
        let mut whole = LatencySketch::new();
        for &v in &stream {
            whole.record(v);
        }
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        for (i, &v) in stream.iter().enumerate() {
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.absorb(&right);
        assert_eq!(whole, left);
        assert_eq!(whole.to_json().render(), left.to_json().render());
    }

    #[test]
    fn json_is_canonical_and_parses() {
        let mut s = LatencySketch::new();
        s.record(42_000);
        s.record(97_000);
        let text = s.to_json().render();
        assert_eq!(text, s.to_json().render());
        let doc = holo_runtime::ser::parse(&text).expect("sketch json parses");
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(2.0));
    }
}
