//! The perf regression gate: compare fresh `BENCH_*.json` artifacts
//! against committed baselines with per-metric tolerances.
//!
//! Bench results join on `(group, name)`. Two realities shape the
//! rules:
//!
//! - Some benches embed machine-shaped facts in their *names*
//!   (`detected_cores=8`, per-node egress rows), so a pair present on
//!   only one side is a **warning**, never a failure — the gate must
//!   run identically on a 4-core laptop and a 64-core CI box.
//! - Wall-clock medians are noisy, so a regression needs both a ratio
//!   breach (`current > baseline × tolerance`) *and* an absolute floor
//!   (`current − baseline > min_delta_ns`) — a 40 ns → 95 ns blip on a
//!   nanosecond-scale bench is not a regression worth failing a build.
//!
//! The same module hosts the snapshot comparator: metric snapshots are
//! byte-compared after stripping histograms flagged
//! `nondeterministic: true` (the wall-clock codec timing family) — by
//! flag, never by name list.

use crate::slo::deterministic_histograms;
use holo_runtime::ser::{self, JsonValue, ToJson};

/// One bench result row, the join key plus the gated statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Bench group (e.g. `"codec"`).
    pub group: String,
    /// Bench name within the group.
    pub name: String,
    /// Median wall time per iteration, ns — the gated statistic
    /// (medians resist outliers; means don't).
    pub median_ns: f64,
}

/// Parse one `BENCH_*.json` document into its entries.
pub fn parse_bench(doc: &JsonValue) -> Result<Vec<BenchEntry>, String> {
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| "bench document has no results array".to_string())?;
    results
        .iter()
        .map(|r| {
            let field = |k: &str| {
                r.get(k).ok_or_else(|| format!("bench result missing field {k:?}"))
            };
            Ok(BenchEntry {
                group: field("group")?
                    .as_str()
                    .ok_or_else(|| "group is not a string".to_string())?
                    .to_string(),
                name: field("name")?
                    .as_str()
                    .ok_or_else(|| "name is not a string".to_string())?
                    .to_string(),
                median_ns: field("median_ns")?
                    .as_f64()
                    .ok_or_else(|| "median_ns is not a number".to_string())?,
            })
        })
        .collect()
}

/// Gate tolerances.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Default allowed slowdown ratio (current / baseline).
    pub max_ratio: f64,
    /// Absolute slack: deltas under this many ns never regress.
    pub min_delta_ns: f64,
    /// Per-metric overrides, matched by longest `"group/name"` prefix.
    pub overrides: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            // Virtual-time sims on shared CI boxes jitter; 1.6× on the
            // median with a 200 ns floor separates real pessimizations
            // from scheduler noise in practice.
            max_ratio: 1.6,
            min_delta_ns: 200.0,
            overrides: Vec::new(),
        }
    }
}

impl GateConfig {
    /// Tolerance for one metric: the longest matching override prefix,
    /// else the default.
    pub fn ratio_for(&self, group: &str, name: &str) -> f64 {
        let key = format!("{group}/{name}");
        self.overrides
            .iter()
            .filter(|(prefix, _)| key.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|&(_, r)| r)
            .unwrap_or(self.max_ratio)
    }
}

/// A joined pair's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within tolerance.
    Ok,
    /// Got faster by more than the tolerance (informational).
    Improved,
    /// Slower than tolerance allows — fails the gate.
    Regressed,
    /// Present only in the baseline (machine-shaped name) — warning.
    MissingCurrent,
    /// Present only in the fresh run — warning.
    MissingBaseline,
}

impl DeltaStatus {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DeltaStatus::Ok => "ok",
            DeltaStatus::Improved => "improved",
            DeltaStatus::Regressed => "regressed",
            DeltaStatus::MissingCurrent => "missing_current",
            DeltaStatus::MissingBaseline => "missing_baseline",
        }
    }
}

/// One metric's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Bench group.
    pub group: String,
    /// Bench name.
    pub name: String,
    /// Baseline median ns (0 when missing).
    pub baseline_ns: f64,
    /// Fresh median ns (0 when missing).
    pub current_ns: f64,
    /// current / baseline (1.0 when either side is missing).
    pub ratio: f64,
    /// Tolerance applied to this metric.
    pub tolerance: f64,
    /// Outcome.
    pub status: DeltaStatus,
}

/// The gate's machine-readable outcome.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// All joined and unjoined metrics, sorted by `(group, name)`.
    pub deltas: Vec<Delta>,
}

impl GateReport {
    /// Compare baseline entries against fresh ones.
    pub fn compare(baseline: &[BenchEntry], current: &[BenchEntry], cfg: &GateConfig) -> Self {
        use std::collections::BTreeMap;
        let mut joined: BTreeMap<(String, String), (Option<f64>, Option<f64>)> = BTreeMap::new();
        for e in baseline {
            joined.entry((e.group.clone(), e.name.clone())).or_default().0 = Some(e.median_ns);
        }
        for e in current {
            joined.entry((e.group.clone(), e.name.clone())).or_default().1 = Some(e.median_ns);
        }
        let deltas = joined
            .into_iter()
            .map(|((group, name), sides)| {
                let tolerance = cfg.ratio_for(&group, &name);
                let (baseline_ns, current_ns, ratio, status) = match sides {
                    (Some(b), Some(c)) => {
                        let ratio = if b > 0.0 { c / b } else { 1.0 };
                        let status = if ratio > tolerance && c - b > cfg.min_delta_ns {
                            DeltaStatus::Regressed
                        } else if ratio < 1.0 / tolerance && b - c > cfg.min_delta_ns {
                            DeltaStatus::Improved
                        } else {
                            DeltaStatus::Ok
                        };
                        (b, c, ratio, status)
                    }
                    (Some(b), None) => (b, 0.0, 1.0, DeltaStatus::MissingCurrent),
                    (None, Some(c)) => (0.0, c, 1.0, DeltaStatus::MissingBaseline),
                    (None, None) => unreachable!("joined map entries have at least one side"),
                };
                Delta { group, name, baseline_ns, current_ns, ratio, tolerance, status }
            })
            .collect();
        Self { deltas }
    }

    /// Deltas with the given status.
    pub fn with_status(&self, status: DeltaStatus) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(move |d| d.status == status)
    }

    /// True when nothing regressed (warnings don't fail the gate).
    pub fn pass(&self) -> bool {
        self.with_status(DeltaStatus::Regressed).next().is_none()
    }

    /// Human table of everything that isn't a plain `ok`.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let counts = |s| self.with_status(s).count();
        let _ = writeln!(
            out,
            "bench gate: {} compared, {} regressed, {} improved, {} unmatched",
            self.deltas.len(),
            counts(DeltaStatus::Regressed),
            counts(DeltaStatus::Improved),
            counts(DeltaStatus::MissingCurrent) + counts(DeltaStatus::MissingBaseline),
        );
        for d in &self.deltas {
            if d.status == DeltaStatus::Ok {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<16} {}/{}: {:.0} ns -> {:.0} ns ({:.2}x, tol {:.2}x)",
                d.status.name(),
                d.group,
                d.name,
                d.baseline_ns,
                d.current_ns,
                d.ratio,
                d.tolerance,
            );
        }
        out
    }

    /// Machine-readable delta report (canonical JSON).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("pass", JsonValue::Bool(self.pass())),
            ("compared", self.deltas.len().to_json()),
            (
                "regressions",
                self.with_status(DeltaStatus::Regressed).count().to_json(),
            ),
            (
                "deltas",
                JsonValue::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            JsonValue::obj([
                                ("group", d.group.to_json()),
                                ("name", d.name.to_json()),
                                ("baseline_ns", d.baseline_ns.to_json()),
                                ("current_ns", d.current_ns.to_json()),
                                ("ratio", d.ratio.to_json()),
                                ("tolerance", d.tolerance.to_json()),
                                ("status", d.status.name().to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Rebuild a metric snapshot with every `nondeterministic: true`
/// histogram removed, for byte-comparison across runs. Everything else
/// — key order, counters, gauges, deterministic histograms — passes
/// through untouched.
pub fn strip_nondeterministic(snapshot: &JsonValue) -> JsonValue {
    let JsonValue::Obj(pairs) = snapshot else {
        return snapshot.clone();
    };
    let kept = deterministic_histograms(snapshot);
    JsonValue::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "histograms" {
                    (k.clone(), JsonValue::Obj(kept.clone()))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    )
}

/// Multiply every `*_ns` statistic in a bench document by `factor` —
/// the gate self-test's regression injector (`scripts/bench_gate.sh
/// --self-test` scales a copied baseline 2× and asserts the gate
/// fails).
pub fn scale_bench(doc: &JsonValue, factor: f64) -> JsonValue {
    fn walk(v: &JsonValue, factor: f64, under_ns_key: bool) -> JsonValue {
        match v {
            JsonValue::Obj(pairs) => JsonValue::Obj(
                pairs
                    .iter()
                    .map(|(k, inner)| {
                        (k.clone(), walk(inner, factor, k.ends_with("_ns")))
                    })
                    .collect(),
            ),
            JsonValue::Arr(items) => {
                JsonValue::Arr(items.iter().map(|i| walk(i, factor, false)).collect())
            }
            JsonValue::Num(n) if under_ns_key => JsonValue::Num(n * factor),
            other => other.clone(),
        }
    }
    walk(doc, factor, false)
}

/// Parse a bench document from its JSON text.
pub fn parse_bench_text(text: &str) -> Result<Vec<BenchEntry>, String> {
    let doc = ser::parse(text).map_err(|e| format!("bench json did not parse: {e:?}"))?;
    parse_bench(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, name: &str, median_ns: f64) -> BenchEntry {
        BenchEntry { group: group.to_string(), name: name.to_string(), median_ns }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![entry("codec", "encode", 10_000.0), entry("codec", "decode", 5_000.0)];
        let report = GateReport::compare(&base, &base, &GateConfig::default());
        assert!(report.pass());
        assert!(report.deltas.iter().all(|d| d.status == DeltaStatus::Ok));
    }

    #[test]
    fn two_x_slowdown_fails() {
        let base = vec![entry("codec", "encode", 10_000.0)];
        let cur = vec![entry("codec", "encode", 20_000.0)];
        let report = GateReport::compare(&base, &cur, &GateConfig::default());
        assert!(!report.pass());
        assert_eq!(report.deltas[0].status, DeltaStatus::Regressed);
        assert!(report.table().contains("regressed"));
    }

    #[test]
    fn nanosecond_noise_is_not_a_regression() {
        // 3.3x ratio but only 70 ns absolute — under the floor.
        let base = vec![entry("tiny", "op", 30.0)];
        let cur = vec![entry("tiny", "op", 100.0)];
        let report = GateReport::compare(&base, &cur, &GateConfig::default());
        assert!(report.pass());
    }

    #[test]
    fn machine_shaped_names_warn_not_fail() {
        let base = vec![entry("parallel", "detected_cores=8", 1e6)];
        let cur = vec![entry("parallel", "detected_cores=4", 1e6)];
        let report = GateReport::compare(&base, &cur, &GateConfig::default());
        assert!(report.pass());
        assert_eq!(report.with_status(DeltaStatus::MissingCurrent).count(), 1);
        assert_eq!(report.with_status(DeltaStatus::MissingBaseline).count(), 1);
    }

    #[test]
    fn overrides_match_longest_prefix() {
        let cfg = GateConfig {
            overrides: vec![("codec/".to_string(), 3.0), ("codec/encode".to_string(), 1.1)],
            ..GateConfig::default()
        };
        assert_eq!(cfg.ratio_for("codec", "encode"), 1.1);
        assert_eq!(cfg.ratio_for("codec", "decode"), 3.0);
        assert_eq!(cfg.ratio_for("mesh", "simplify"), 1.6);
    }

    #[test]
    fn scale_bench_hits_only_ns_fields() {
        let doc = ser::parse(
            r#"{"bench":"b","results":[{"group":"g","name":"n","samples":20,"median_ns":100,"p95_ns":150}]}"#,
        )
        .unwrap();
        let scaled = scale_bench(&doc, 2.0);
        let r = &scaled.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(r.get("median_ns").unwrap().as_f64(), Some(200.0));
        assert_eq!(r.get("p95_ns").unwrap().as_f64(), Some(300.0));
        assert_eq!(r.get("samples").unwrap().as_f64(), Some(20.0));
        assert_eq!(scaled.get("bench").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn scaled_baseline_fails_the_gate() {
        let text = r#"{"bench":"b","results":[{"group":"g","name":"n","median_ns":5000}]}"#;
        let base = parse_bench_text(text).unwrap();
        let scaled_doc = scale_bench(&ser::parse(text).unwrap(), 2.0);
        let cur = parse_bench(&scaled_doc).unwrap();
        let report = GateReport::compare(&base, &cur, &GateConfig::default());
        assert!(!report.pass());
    }

    #[test]
    fn snapshot_strip_removes_only_flagged_histograms() {
        let mut m = holo_trace::Metrics::default();
        m.counter("frames", 3);
        m.histogram("stage_ms", 1.0);
        m.histogram_wall("compress.lzma.encode_ms", 3.0);
        let stripped = strip_nondeterministic(&m.to_json());
        let text = stripped.render();
        assert!(text.contains("stage_ms"));
        assert!(!text.contains("compress.lzma.encode_ms"));
        assert!(text.contains("\"frames\":3"));
        // Stripping is idempotent and keeps canonical key order.
        assert_eq!(strip_nondeterministic(&stripped).render(), text);
    }

    #[test]
    fn gate_report_json_is_canonical() {
        let base = vec![entry("g", "n", 1000.0)];
        let cur = vec![entry("g", "n", 5000.0)];
        let report = GateReport::compare(&base, &cur, &GateConfig::default());
        let a = report.to_json().render();
        assert!(ser::parse(&a).is_ok());
        assert!(a.contains("\"pass\":false"));
    }
}
