//! Isosurface extraction by marching tetrahedra over a dense grid.
//!
//! X-Avatar extracts meshes from its implicit geometry network with
//! marching cubes at a configurable voxel resolution (128–1024 in the
//! paper's Figs. 2 and 4). We use marching *tetrahedra* — each grid cube is
//! split into six tetrahedra sharing the cube's main diagonal — which has
//! identical asymptotics and resolution-scaling behaviour but requires no
//! large case tables and is straightforward to verify (it produces closed,
//! consistent surfaces by construction). The substitution is documented in
//! DESIGN.md; it yields roughly 2x the triangles of classic MC for the
//! same grid.
//!
//! The dense extractor samples the full `(R+1)^3` lattice two z-slices at
//! a time, so memory is `O(R^2)`. For `R = 1024` prefer
//! [`crate::sparse::sparse_extract`], which skips empty space entirely.

use crate::sdf::Sdf;
use crate::trimesh::TriMesh;
use holo_math::{Aabb, Vec3};
use std::collections::HashMap;

/// Parameters for isosurface extraction.
#[derive(Debug, Clone)]
pub struct MarchingConfig {
    /// Number of cubes along the longest axis of `bounds`.
    pub resolution: u32,
    /// Region to polygonize. The grid is cubical with side
    /// `bounds.longest_side()` anchored at `bounds.min`.
    pub bounds: Aabb,
    /// Isovalue (0 for a standard SDF surface).
    pub iso: f32,
}

impl MarchingConfig {
    /// Config covering an SDF's bounds (slightly padded) at `resolution`.
    pub fn for_sdf<S: Sdf + ?Sized>(sdf: &S, resolution: u32) -> Self {
        let b = sdf.bounds();
        let pad = b.longest_side() * 0.02 + 1e-4;
        Self { resolution: resolution.max(2), bounds: b.expanded(pad), iso: 0.0 }
    }

    /// Side length of one grid cube.
    pub fn cell_size(&self) -> f32 {
        self.bounds.longest_side() / self.resolution as f32
    }
}

/// Counters describing the work an extraction performed; feeds the GPU
/// cost model that converts workload into modeled device time (Fig. 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractionStats {
    /// Number of field evaluations performed.
    pub field_evals: u64,
    /// Number of grid cubes visited (dense: all; sparse: near-surface).
    pub cubes_visited: u64,
    /// Triangles emitted before degenerate removal.
    pub triangles_emitted: u64,
}

/// Corner offsets of a unit cube; bit 0 = +x, bit 1 = +y, bit 2 = +z.
pub(crate) const CUBE_CORNERS: [(u32, u32, u32); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (1, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Six tetrahedra sharing the main diagonal (corner 0 to corner 7). Every
/// cube uses the same split, which makes faces of adjacent cubes agree and
/// the output surface watertight.
pub(crate) const CUBE_TETS: [[usize; 4]; 6] = [
    [0, 5, 1, 7],
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
];

/// Incrementally builds a welded triangle mesh from per-edge surface
/// vertices keyed by global lattice corner ids.
pub(crate) struct MeshBuilder {
    mesh: TriMesh,
    edge_vertices: HashMap<(u64, u64), u32>,
    pub stats: ExtractionStats,
}

impl MeshBuilder {
    pub fn new() -> Self {
        Self { mesh: TriMesh::new(), edge_vertices: HashMap::new(), stats: ExtractionStats::default() }
    }

    fn edge_vertex(&mut self, ka: u64, pa: Vec3, va: f32, kb: u64, pb: Vec3, vb: f32, iso: f32) -> u32 {
        let key = if ka < kb { (ka, kb) } else { (kb, ka) };
        if let Some(&idx) = self.edge_vertices.get(&key) {
            return idx;
        }
        let denom = vb - va;
        let t = if denom.abs() < 1e-12 { 0.5 } else { ((iso - va) / denom).clamp(0.0, 1.0) };
        let p = pa.lerp(pb, t);
        let idx = self.mesh.vertices.len() as u32;
        self.mesh.vertices.push(p);
        self.edge_vertices.insert(key, idx);
        idx
    }

    fn push_triangle(&mut self, ia: u32, ib: u32, ic: u32, outward_hint: Vec3, anchor: Vec3) {
        if ia == ib || ib == ic || ia == ic {
            return; // degenerate after welding
        }
        let a = self.mesh.vertices[ia as usize];
        let b = self.mesh.vertices[ib as usize];
        let c = self.mesh.vertices[ic as usize];
        let n = (b - a).cross(c - a);
        // Orient so the normal points from the inside anchor toward outside.
        let want = ((a + b + c) / 3.0 - anchor) + outward_hint * 0.0;
        if n.dot(want) >= 0.0 {
            self.mesh.faces.push([ia, ib, ic]);
        } else {
            self.mesh.faces.push([ia, ic, ib]);
        }
        self.stats.triangles_emitted += 1;
    }

    /// Polygonize one tetrahedron given corner lattice keys, positions, and
    /// field values.
    pub fn do_tet(&mut self, keys: [u64; 4], pos: [Vec3; 4], val: [f32; 4], iso: f32) {
        let inside: Vec<usize> = (0..4).filter(|&i| val[i] < iso).collect();
        match inside.len() {
            0 | 4 => {}
            1 => {
                let a = inside[0];
                let outs: Vec<usize> = (0..4).filter(|&i| i != a).collect();
                let v0 = self.edge_vertex(keys[a], pos[a], val[a], keys[outs[0]], pos[outs[0]], val[outs[0]], iso);
                let v1 = self.edge_vertex(keys[a], pos[a], val[a], keys[outs[1]], pos[outs[1]], val[outs[1]], iso);
                let v2 = self.edge_vertex(keys[a], pos[a], val[a], keys[outs[2]], pos[outs[2]], val[outs[2]], iso);
                self.push_triangle(v0, v1, v2, Vec3::ZERO, pos[a]);
            }
            3 => {
                let d = (0..4).find(|i| !inside.contains(i)).unwrap();
                let ins: Vec<usize> = inside;
                let v0 = self.edge_vertex(keys[d], pos[d], val[d], keys[ins[0]], pos[ins[0]], val[ins[0]], iso);
                let v1 = self.edge_vertex(keys[d], pos[d], val[d], keys[ins[1]], pos[ins[1]], val[ins[1]], iso);
                let v2 = self.edge_vertex(keys[d], pos[d], val[d], keys[ins[2]], pos[ins[2]], val[ins[2]], iso);
                // Anchor at the centroid of the inside face.
                let anchor = (pos[ins[0]] + pos[ins[1]] + pos[ins[2]]) / 3.0;
                self.push_triangle(v0, v1, v2, Vec3::ZERO, anchor);
            }
            2 => {
                let (a, b) = (inside[0], inside[1]);
                let outs: Vec<usize> = (0..4).filter(|&i| i != a && i != b).collect();
                let (c, d) = (outs[0], outs[1]);
                let vac = self.edge_vertex(keys[a], pos[a], val[a], keys[c], pos[c], val[c], iso);
                let vad = self.edge_vertex(keys[a], pos[a], val[a], keys[d], pos[d], val[d], iso);
                let vbc = self.edge_vertex(keys[b], pos[b], val[b], keys[c], pos[c], val[c], iso);
                let vbd = self.edge_vertex(keys[b], pos[b], val[b], keys[d], pos[d], val[d], iso);
                let anchor = (pos[a] + pos[b]) * 0.5;
                self.push_triangle(vac, vad, vbd, Vec3::ZERO, anchor);
                self.push_triangle(vac, vbd, vbc, Vec3::ZERO, anchor);
            }
            _ => unreachable!(),
        }
    }

    pub fn finish(mut self) -> (TriMesh, ExtractionStats) {
        self.mesh.compute_normals();
        (self.mesh, self.stats)
    }
}

/// Pack lattice coordinates into a unique 64-bit corner id.
#[inline]
pub(crate) fn corner_key(x: u32, y: u32, z: u32) -> u64 {
    ((x as u64) << 42) | ((y as u64) << 21) | z as u64
}

/// Extract the isosurface of `sdf` on a dense grid. Returns the welded
/// triangle mesh with computed normals.
pub fn marching_tetrahedra<S: Sdf + ?Sized>(sdf: &S, cfg: &MarchingConfig) -> TriMesh {
    marching_tetrahedra_with_stats(sdf, cfg).0
}

/// Like [`marching_tetrahedra`] but also returns workload counters.
pub fn marching_tetrahedra_with_stats<S: Sdf + ?Sized>(
    sdf: &S,
    cfg: &MarchingConfig,
) -> (TriMesh, ExtractionStats) {
    let r = cfg.resolution;
    let n = (r + 1) as usize;
    let cell = cfg.cell_size();
    let origin = cfg.bounds.min;
    let mut builder = MeshBuilder::new();

    let sample_slice = |z: u32, builder: &mut MeshBuilder| -> Vec<f32> {
        let mut slice = Vec::with_capacity(n * n);
        for y in 0..n as u32 {
            for x in 0..n as u32 {
                let p = origin + Vec3::new(x as f32, y as f32, z as f32) * cell;
                slice.push(sdf.distance(p));
                builder.stats.field_evals += 1;
            }
        }
        slice
    };

    let mut below = sample_slice(0, &mut builder);
    for z in 0..r {
        let above = sample_slice(z + 1, &mut builder);
        for y in 0..r {
            for x in 0..r {
                builder.stats.cubes_visited += 1;
                let mut keys = [0u64; 8];
                let mut pos = [Vec3::ZERO; 8];
                let mut val = [0f32; 8];
                let mut all_pos = true;
                let mut all_neg = true;
                for (ci, &(dx, dy, dz)) in CUBE_CORNERS.iter().enumerate() {
                    let (cx, cy, cz) = (x + dx, y + dy, z + dz);
                    keys[ci] = corner_key(cx, cy, cz);
                    pos[ci] = origin + Vec3::new(cx as f32, cy as f32, cz as f32) * cell;
                    let slice = if dz == 0 { &below } else { &above };
                    let v = slice[(cy as usize) * n + cx as usize];
                    val[ci] = v;
                    if v < cfg.iso {
                        all_pos = false;
                    } else {
                        all_neg = false;
                    }
                }
                if all_pos || all_neg {
                    continue;
                }
                for tet in &CUBE_TETS {
                    builder.do_tet(
                        [keys[tet[0]], keys[tet[1]], keys[tet[2]], keys[tet[3]]],
                        [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                        [val[tet[0]], val[tet[1]], val[tet[2]], val[tet[3]]],
                        cfg.iso,
                    );
                }
            }
        }
        below = above;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::{SdfCapsule, SdfSphere};

    #[test]
    fn sphere_surface_extracted() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let cfg = MarchingConfig::for_sdf(&s, 32);
        let (mesh, stats) = marching_tetrahedra_with_stats(&s, &cfg);
        assert!(mesh.face_count() > 500);
        assert!(mesh.validate().is_ok());
        assert!(stats.field_evals > 0);
        // Every vertex close to the unit sphere.
        for v in &mesh.vertices {
            let r = v.length();
            assert!((0.9..=1.1).contains(&r), "vertex radius {r}");
        }
    }

    #[test]
    fn sphere_mesh_is_watertight() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 0.8 };
        let cfg = MarchingConfig::for_sdf(&s, 24);
        let mesh = marching_tetrahedra(&s, &cfg);
        assert!(mesh.is_closed(), "marching tetrahedra surface must be closed");
        assert_eq!(mesh.euler_characteristic(), 2);
    }

    #[test]
    fn area_converges_with_resolution() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let analytic = 4.0 * std::f32::consts::PI;
        let area = |res: u32| {
            let cfg = MarchingConfig::for_sdf(&s, res);
            marching_tetrahedra(&s, &cfg).surface_area()
        };
        let coarse_err = (area(12) - analytic).abs();
        let fine_err = (area(48) - analytic).abs();
        assert!(fine_err < coarse_err, "error should shrink with resolution");
        assert!(fine_err / analytic < 0.05);
    }

    #[test]
    fn normals_outward() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let cfg = MarchingConfig::for_sdf(&s, 24);
        let mesh = marching_tetrahedra(&s, &cfg);
        let mut outward = 0usize;
        for i in 0..mesh.face_count() {
            let [a, b, c] = mesh.face_positions(i);
            let centroid = (a + b + c) / 3.0;
            if mesh.face_normal(i).dot(centroid.normalized()) > 0.0 {
                outward += 1;
            }
        }
        assert!(
            outward as f32 / mesh.face_count() as f32 > 0.99,
            "only {outward}/{} faces outward",
            mesh.face_count()
        );
    }

    #[test]
    fn capsule_topology_is_sphere_like() {
        let c = SdfCapsule { a: Vec3::ZERO, b: Vec3::new(0.0, 1.5, 0.0), radius: 0.4 };
        let cfg = MarchingConfig::for_sdf(&c, 32);
        let mesh = marching_tetrahedra(&c, &cfg);
        assert!(mesh.is_closed());
        assert_eq!(mesh.euler_characteristic(), 2);
    }

    #[test]
    fn empty_field_produces_empty_mesh() {
        // Sphere entirely outside the polygonized region.
        let s = SdfSphere { center: Vec3::splat(100.0), radius: 0.5 };
        let cfg = MarchingConfig {
            resolution: 8,
            bounds: Aabb::new(Vec3::ZERO, Vec3::ONE),
            iso: 0.0,
        };
        let mesh = marching_tetrahedra(&s, &cfg);
        assert_eq!(mesh.face_count(), 0);
    }

    #[test]
    fn triangle_count_scales_quadratically() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let count = |res: u32| {
            let cfg = MarchingConfig::for_sdf(&s, res);
            marching_tetrahedra(&s, &cfg).face_count() as f32
        };
        let ratio = count(32) / count(16);
        // Surface cells scale with R^2; allow generous tolerance.
        assert!((2.5..6.0).contains(&ratio), "scaling ratio {ratio}");
    }
}
