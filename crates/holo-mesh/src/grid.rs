//! Spatial hash grid for nearest-neighbor queries over point sets.
//!
//! The quality metrics (Chamfer, Hausdorff, F-score) need millions of
//! nearest-neighbor lookups per comparison; a uniform hash grid with
//! ring-expanding search keeps that linear in practice.

use holo_math::Vec3;
use std::collections::HashMap;

/// A uniform spatial hash over a fixed point set.
pub struct PointGrid {
    points: Vec<Vec3>,
    cell: f32,
    buckets: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl PointGrid {
    /// Build a grid over `points` with the given cell size. A good cell
    /// size is the expected nearest-neighbor distance (e.g. mesh sampling
    /// density); [`PointGrid::auto`] estimates one from the bounding box.
    pub fn new(points: Vec<Vec3>, cell: f32) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let mut buckets: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            buckets.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        Self { points, cell, buckets }
    }

    /// Build with a cell size chosen so the average bucket holds a few
    /// points. The cell is never smaller than 1/64 of the longest bounding
    /// side, which bounds the ring search even for degenerate (flat or
    /// collinear) point sets.
    pub fn auto(points: Vec<Vec3>) -> Self {
        if points.is_empty() {
            return Self::new(points, 1.0);
        }
        let bounds = holo_math::Aabb::from_points(&points);
        let n = points.len().max(1) as f32;
        let longest = bounds.longest_side().max(1e-4);
        let target = longest / n.cbrt().max(1.0) * 2.0;
        let cell = target.clamp(longest / 64.0, longest);
        Self::new(points, cell)
    }

    fn key(p: Vec3, cell: f32) -> (i32, i32, i32) {
        (
            (p.x / cell).floor() as i32,
            (p.y / cell).floor() as i32,
            (p.z / cell).floor() as i32,
        )
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index and distance of the nearest indexed point to `q`, or `None`
    /// when the grid is empty. Exact: expands search rings until the best
    /// candidate provably beats any unexplored ring.
    pub fn nearest(&self, q: Vec3) -> Option<(u32, f32)> {
        if self.points.is_empty() {
            return None;
        }
        let (cx, cy, cz) = Self::key(q, self.cell);
        let mut best: Option<(u32, f32)> = None;
        // Beyond this ring every occupied cell has been visited, so fall
        // back to a brute-force scan (cheap: it can happen at most once,
        // for queries far outside the indexed bounds).
        let max_ring = 130;
        let mut ring = 0i32;
        loop {
            if ring > max_ring {
                for (i, p) in self.points.iter().enumerate() {
                    let d = p.distance_sq(q);
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((i as u32, d));
                    }
                }
                break;
            }
            // Scan the shell of cells at Chebyshev distance `ring`.
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    for dz in -ring..=ring {
                        if dx.abs().max(dy.abs()).max(dz.abs()) != ring {
                            continue;
                        }
                        if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy, cz + dz)) {
                            for &i in bucket {
                                let d = self.points[i as usize].distance_sq(q);
                                if best.map_or(true, |(_, bd)| d < bd) {
                                    best = Some((i, d));
                                }
                            }
                        }
                    }
                }
            }
            if let Some((_, bd)) = best {
                // Any point in an unexplored ring is at least `ring * cell`
                // away (orthogonal distance to the shell boundary).
                let safe = ring as f32 * self.cell;
                if bd.sqrt() <= safe {
                    break;
                }
            }
            ring += 1;
        }
        best.map(|(i, d)| (i, d.sqrt()))
    }

    /// Distance from `q` to the nearest indexed point (`f32::INFINITY`
    /// when empty).
    pub fn nearest_distance(&self, q: Vec3) -> f32 {
        self.nearest(q).map_or(f32::INFINITY, |(_, d)| d)
    }

    /// All indexed points within `radius` of `q`.
    pub fn within(&self, q: Vec3, radius: f32) -> Vec<u32> {
        let mut out = Vec::new();
        let r_cells = (radius / self.cell).ceil() as i32;
        let (cx, cy, cz) = Self::key(q, self.cell);
        let r2 = radius * radius;
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                for dz in -r_cells..=r_cells {
                    if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            if self.points[i as usize].distance_sq(q) <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = Pcg32::new(seed);
        (0..n)
            .map(|_| Vec3::new(rng.range_f32(-2.0, 2.0), rng.range_f32(-2.0, 2.0), rng.range_f32(-2.0, 2.0)))
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(2000, 1);
        let grid = PointGrid::auto(pts.clone());
        let queries = random_points(200, 2);
        for q in queries {
            let (gi, gd) = grid.nearest(q).unwrap();
            let (bi, bd) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.distance(q)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!((gd - bd).abs() < 1e-5, "grid {gd} vs brute {bd}");
            // Index may differ on ties; distance must match.
            let _ = (gi, bi);
        }
    }

    #[test]
    fn empty_grid_returns_none() {
        let grid = PointGrid::new(Vec::new(), 1.0);
        assert!(grid.nearest(Vec3::ZERO).is_none());
        assert_eq!(grid.nearest_distance(Vec3::ZERO), f32::INFINITY);
    }

    #[test]
    fn within_radius_complete() {
        let pts = random_points(1000, 3);
        let grid = PointGrid::new(pts.clone(), 0.5);
        let q = Vec3::new(0.1, -0.2, 0.3);
        let r = 0.75;
        let mut found = grid.within(q, r);
        found.sort_unstable();
        let mut brute: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(q) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        brute.sort_unstable();
        assert_eq!(found, brute);
    }

    #[test]
    fn single_point() {
        let grid = PointGrid::new(vec![Vec3::new(5.0, 5.0, 5.0)], 0.1);
        let (i, d) = grid.nearest(Vec3::ZERO).unwrap();
        assert_eq!(i, 0);
        assert!((d - (75.0f32).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn far_query_still_exact() {
        let pts = random_points(100, 4);
        let grid = PointGrid::new(pts.clone(), 0.25);
        let q = Vec3::splat(50.0);
        let (_, gd) = grid.nearest(q).unwrap();
        let bd = pts.iter().map(|p| p.distance(q)).fold(f32::INFINITY, f32::min);
        assert!((gd - bd).abs() < 1e-4);
    }
}
