//! Colored point clouds, the capture substrate's fusion output and the
//! text-semantics reconstruction target.

use holo_math::{Aabb, Mat4, Vec3};
use std::collections::BTreeMap;

/// A point cloud with optional per-point colors.
#[derive(Debug, Clone, Default)]
pub struct PointCloud {
    /// Point positions.
    pub points: Vec<Vec3>,
    /// Optional RGB colors in `[0, 1]`, one per point when non-empty.
    pub colors: Vec<Vec3>,
}

impl PointCloud {
    /// An empty cloud.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from positions only.
    pub fn from_points(points: Vec<Vec3>) -> Self {
        Self { points, colors: Vec::new() }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Axis-aligned bounds.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    /// Size in bytes of the uncompressed binary wire format: 16-byte
    /// header, `f32` xyz per point, plus packed RGB bytes when colored.
    pub fn raw_size_bytes(&self) -> usize {
        16 + self.points.len() * 12 + if self.colors.is_empty() { 0 } else { self.points.len() * 3 }
    }

    /// Structural validation: finite coordinates, color length matches.
    pub fn validate(&self) -> Result<(), String> {
        if !self.colors.is_empty() && self.colors.len() != self.points.len() {
            return Err(format!(
                "color count {} != point count {}",
                self.colors.len(),
                self.points.len()
            ));
        }
        for (i, p) in self.points.iter().enumerate() {
            if !p.is_finite() {
                return Err(format!("point {i} not finite: {p:?}"));
            }
        }
        Ok(())
    }

    /// Append another cloud.
    pub fn append(&mut self, other: &PointCloud) {
        // Keep color buffers consistent when either side is colored.
        if !self.colors.is_empty() || !other.colors.is_empty() {
            self.colors.resize(self.points.len(), Vec3::ONE);
            if other.colors.is_empty() {
                self.colors.extend(std::iter::repeat(Vec3::ONE).take(other.points.len()));
            } else {
                self.colors.extend_from_slice(&other.colors);
            }
        }
        self.points.extend_from_slice(&other.points);
    }

    /// Apply an affine transform to every point.
    pub fn transform(&mut self, m: &Mat4) {
        for p in &mut self.points {
            *p = m.transform_point(*p);
        }
    }

    /// Voxel-grid downsample: one averaged point (and color) per occupied
    /// voxel of side `voxel_size`. This is the standard fusion filter for
    /// merged multi-camera captures.
    pub fn voxel_downsample(&self, voxel_size: f32) -> PointCloud {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        #[derive(Default)]
        struct Acc {
            pos: Vec3,
            col: Vec3,
            n: u32,
        }
        let inv = 1.0 / voxel_size;
        // BTreeMap: iteration is already in voxel-key order, so the
        // output order is canonical by construction.
        let mut cells: BTreeMap<(i32, i32, i32), Acc> = BTreeMap::new();
        let colored = !self.colors.is_empty();
        for (i, &p) in self.points.iter().enumerate() {
            let key = (
                (p.x * inv).floor() as i32,
                (p.y * inv).floor() as i32,
                (p.z * inv).floor() as i32,
            );
            let acc = cells.entry(key).or_default();
            acc.pos += p;
            if colored {
                acc.col += self.colors[i];
            }
            acc.n += 1;
        }
        let mut out = PointCloud::new();
        for (_, acc) in cells {
            let n = acc.n as f32;
            out.points.push(acc.pos / n);
            if colored {
                out.colors.push(acc.col / n);
            }
        }
        out
    }

    /// Centroid of the cloud (`Vec3::ZERO` when empty).
    pub fn centroid(&self) -> Vec3 {
        if self.points.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for &p in &self.points {
            c += p;
        }
        c / self.points.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = Pcg32::new(seed);
        let points = (0..n)
            .map(|_| Vec3::new(rng.range_f32(-1.0, 1.0), rng.range_f32(-1.0, 1.0), rng.range_f32(-1.0, 1.0)))
            .collect();
        PointCloud::from_points(points)
    }

    #[test]
    fn downsample_reduces_and_bounds_preserved() {
        let pc = random_cloud(10_000, 3);
        let ds = pc.voxel_downsample(0.25);
        assert!(ds.len() < pc.len());
        assert!(ds.len() > 100);
        let b = pc.bounds().expanded(0.01);
        for &p in &ds.points {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn downsample_deterministic() {
        let pc = random_cloud(5_000, 4);
        let a = pc.voxel_downsample(0.2);
        let b = pc.voxel_downsample(0.2);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn downsample_single_cell_averages() {
        let pc = PointCloud::from_points(vec![
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(0.2, 0.2, 0.2),
            Vec3::new(0.3, 0.3, 0.3),
        ]);
        let ds = pc.voxel_downsample(10.0);
        assert_eq!(ds.len(), 1);
        assert!((ds.points[0] - Vec3::splat(0.2)).length() < 1e-6);
    }

    #[test]
    fn raw_size_accounts_colors() {
        let mut pc = random_cloud(100, 5);
        assert_eq!(pc.raw_size_bytes(), 16 + 1200);
        pc.colors = vec![Vec3::ONE; 100];
        assert_eq!(pc.raw_size_bytes(), 16 + 1200 + 300);
    }

    #[test]
    fn append_merges_colors() {
        let mut a = random_cloud(10, 6);
        let mut b = random_cloud(5, 7);
        b.colors = vec![Vec3::X; 5];
        a.append(&b);
        assert_eq!(a.len(), 15);
        assert_eq!(a.colors.len(), 15);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn centroid_of_symmetric_cloud() {
        let pc = PointCloud::from_points(vec![Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)]);
        assert_eq!(pc.centroid(), Vec3::ZERO);
        assert_eq!(PointCloud::new().centroid(), Vec3::ZERO);
    }

    #[test]
    fn validate_rejects_mismatched_colors() {
        let mut pc = random_cloud(10, 8);
        pc.colors = vec![Vec3::ONE; 3];
        assert!(pc.validate().is_err());
    }
}
