//! Geometric quality metrics.
//!
//! The visual-quality axis of Table 1 and Fig. 2 is quantified here: the
//! reconstructed mesh is compared against the ground-truth capture via
//! point-sampled Chamfer distance, Hausdorff distance, F-score at a
//! tolerance, and normal consistency. All metrics are symmetric unless
//! noted and operate on area-uniform surface samples for meshes.

use crate::grid::PointGrid;
use crate::trimesh::TriMesh;
use holo_math::{Pcg32, Vec3};

/// Bundle of mesh-vs-mesh quality metrics.
#[derive(Debug, Clone, Copy)]
pub struct MeshQuality {
    /// Symmetric Chamfer distance (mean of the two directed means), meters.
    pub chamfer: f32,
    /// Symmetric Hausdorff distance (max of directed maxima), meters.
    pub hausdorff: f32,
    /// F-score at the tolerance used when computing the bundle, in [0, 1].
    pub f_score: f32,
    /// Mean absolute cosine between matched normals, in [0, 1].
    pub normal_consistency: f32,
}

/// Directed mean distance from each point in `from` to its nearest
/// neighbor in `to` (given as a prebuilt grid).
fn directed_mean(from: &[Vec3], to: &PointGrid) -> f32 {
    if from.is_empty() {
        return f32::INFINITY;
    }
    let sum: f32 = from.iter().map(|&p| to.nearest_distance(p)).sum();
    sum / from.len() as f32
}

/// Directed max distance.
fn directed_max(from: &[Vec3], to: &PointGrid) -> f32 {
    from.iter().map(|&p| to.nearest_distance(p)).fold(0.0, f32::max)
}

/// Symmetric Chamfer distance between two point sets.
pub fn chamfer_distance(a: &[Vec3], b: &[Vec3]) -> f32 {
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let ga = PointGrid::auto(a.to_vec());
    let gb = PointGrid::auto(b.to_vec());
    0.5 * (directed_mean(a, &gb) + directed_mean(b, &ga))
}

/// Symmetric Hausdorff distance between two point sets.
pub fn hausdorff_distance(a: &[Vec3], b: &[Vec3]) -> f32 {
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let ga = PointGrid::auto(a.to_vec());
    let gb = PointGrid::auto(b.to_vec());
    directed_max(a, &gb).max(directed_max(b, &ga))
}

/// F-score at tolerance `tau`: harmonic mean of precision (fraction of `a`
/// within `tau` of `b`) and recall (fraction of `b` within `tau` of `a`).
pub fn f_score(a: &[Vec3], b: &[Vec3], tau: f32) -> f32 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ga = PointGrid::auto(a.to_vec());
    let gb = PointGrid::auto(b.to_vec());
    let precision = a.iter().filter(|&&p| gb.nearest_distance(p) <= tau).count() as f32 / a.len() as f32;
    let recall = b.iter().filter(|&&p| ga.nearest_distance(p) <= tau).count() as f32 / b.len() as f32;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Mean absolute cosine between the normal of each sample in `a` and the
/// normal of its nearest neighbor in `b` (directed; callers typically
/// average both directions).
pub fn normal_consistency(a_pts: &[Vec3], a_nrm: &[Vec3], b_pts: &[Vec3], b_nrm: &[Vec3]) -> f32 {
    if a_pts.is_empty() || b_pts.is_empty() {
        return 0.0;
    }
    let gb = PointGrid::auto(b_pts.to_vec());
    let mut sum = 0.0;
    for (p, n) in a_pts.iter().zip(a_nrm) {
        if let Some((j, _)) = gb.nearest(*p) {
            sum += n.dot(b_nrm[j as usize]).abs();
        }
    }
    sum / a_pts.len() as f32
}

/// Compare two meshes by sampling `samples` area-uniform points from each.
///
/// `tau` is the F-score tolerance (a good default is 1% of the bounding
/// box diagonal of the reference mesh). Deterministic given `seed`.
pub fn compare_meshes(reference: &TriMesh, candidate: &TriMesh, samples: usize, tau: f32, seed: u64) -> MeshQuality {
    let mut rng = Pcg32::new(seed);
    let (ra, na) = reference.sample_surface(samples, &mut rng);
    let (rb, nb) = candidate.sample_surface(samples, &mut rng);
    if ra.is_empty() || rb.is_empty() {
        return MeshQuality { chamfer: f32::INFINITY, hausdorff: f32::INFINITY, f_score: 0.0, normal_consistency: 0.0 };
    }
    let ga = PointGrid::auto(ra.clone());
    let gb = PointGrid::auto(rb.clone());
    let chamfer = 0.5 * (directed_mean(&ra, &gb) + directed_mean(&rb, &ga));
    let hausdorff = directed_max(&ra, &gb).max(directed_max(&rb, &ga));
    let precision = rb.iter().filter(|&&p| ga.nearest_distance(p) <= tau).count() as f32 / rb.len() as f32;
    let recall = ra.iter().filter(|&&p| gb.nearest_distance(p) <= tau).count() as f32 / ra.len() as f32;
    let fs = if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
    let nc = 0.5 * (normal_consistency(&ra, &na, &rb, &nb) + normal_consistency(&rb, &nb, &ra, &na));
    MeshQuality { chamfer, hausdorff, f_score: fs, normal_consistency: nc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Mat4;

    fn sphere(r: f32) -> TriMesh {
        TriMesh::uv_sphere(Vec3::ZERO, r, 24, 48)
    }

    #[test]
    fn identical_meshes_score_perfectly() {
        // With finite sampling the Chamfer floor is the inter-sample
        // spacing (~sqrt(area/n)/2 ≈ 0.03 for 5000 samples on a unit
        // sphere), so tolerances reflect that, not zero.
        let m = sphere(1.0);
        let q = compare_meshes(&m, &m, 5000, 0.06, 7);
        assert!(q.chamfer < 0.05, "chamfer {}", q.chamfer);
        assert!(q.f_score > 0.9, "f-score {}", q.f_score);
        assert!(q.normal_consistency > 0.95, "nc {}", q.normal_consistency);
    }

    #[test]
    fn chamfer_grows_with_offset() {
        let a = sphere(1.0);
        let mut b = sphere(1.0);
        b.transform(&Mat4::translation(Vec3::new(0.3, 0.0, 0.0)));
        let near = compare_meshes(&a, &a, 1500, 0.02, 1).chamfer;
        let far = compare_meshes(&a, &b, 1500, 0.02, 1).chamfer;
        assert!(far > near * 2.0, "near {near} far {far}");
    }

    #[test]
    fn chamfer_radius_difference_scales() {
        let a = sphere(1.0);
        let b = sphere(1.1);
        let q = compare_meshes(&a, &b, 3000, 0.02, 2);
        // Two concentric spheres differ by ~0.1 everywhere.
        assert!((q.chamfer - 0.1).abs() < 0.03, "chamfer {}", q.chamfer);
        assert!(q.hausdorff >= q.chamfer);
    }

    #[test]
    fn f_score_tolerance_behaviour() {
        let a = sphere(1.0);
        let b = sphere(1.05);
        let strict = compare_meshes(&a, &b, 2000, 0.01, 3).f_score;
        let loose = compare_meshes(&a, &b, 2000, 0.1, 3).f_score;
        assert!(loose > strict, "loose {loose} strict {strict}");
        assert!(loose > 0.95);
    }

    #[test]
    fn point_set_metrics_basics() {
        let a = vec![Vec3::ZERO, Vec3::X];
        let b = vec![Vec3::ZERO, Vec3::X];
        assert!(chamfer_distance(&a, &b) < 1e-6);
        assert!(hausdorff_distance(&a, &b) < 1e-6);
        assert_eq!(f_score(&a, &b, 0.01), 1.0);
        let c = vec![Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        assert!(chamfer_distance(&a, &c) > 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let empty: Vec<Vec3> = Vec::new();
        let some = vec![Vec3::ZERO];
        assert_eq!(chamfer_distance(&empty, &some), f32::INFINITY);
        assert_eq!(f_score(&empty, &some, 0.1), 0.0);
        let q = compare_meshes(&TriMesh::new(), &sphere(1.0), 100, 0.01, 4);
        assert_eq!(q.f_score, 0.0);
    }

    #[test]
    fn normal_consistency_detects_orientation() {
        let m = sphere(1.0);
        let mut rng = Pcg32::new(5);
        let (pts, nrm) = m.sample_surface(1000, &mut rng);
        let nc_same = normal_consistency(&pts, &nrm, &pts, &nrm);
        assert!(nc_same > 0.999);
        // Random normals should score noticeably lower.
        let mut rng2 = Pcg32::new(6);
        let random_nrm: Vec<Vec3> = (0..pts.len())
            .map(|_| Vec3::new(rng2.normal(), rng2.normal(), rng2.normal()).normalized())
            .collect();
        let nc_rand = normal_consistency(&pts, &random_nrm, &pts, &nrm);
        assert!(nc_rand < 0.7, "random nc {nc_rand}");
    }
}
