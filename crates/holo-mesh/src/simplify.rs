//! Mesh simplification by vertex clustering.
//!
//! The foveated pipeline (§3.1) and any level-of-detail scheme need a way
//! to cheapen peripheral geometry. Vertex clustering snaps vertices to a
//! uniform grid and collapses everything inside a cell to its mean —
//! O(V + F), deterministic, and bounded-error (half a cell diagonal),
//! which is exactly the profile a per-frame live system can afford
//! (quadric simplification is higher quality but super-linear).

use crate::trimesh::TriMesh;
use holo_math::Vec3;
use std::collections::BTreeMap;

/// Simplify by clustering vertices onto a grid with `cells` cells along
/// the longest bounding-box axis. Degenerate faces (two or more corners
/// in one cell) are dropped. Returns a new mesh with computed normals.
pub fn simplify_cluster(mesh: &TriMesh, cells: u32) -> TriMesh {
    let cells = cells.max(2);
    if mesh.vertices.is_empty() {
        return TriMesh::new();
    }
    let bounds = mesh.bounds();
    let cell = bounds.longest_side().max(1e-9) / cells as f32;
    let key = |v: Vec3| {
        (
            ((v.x - bounds.min.x) / cell).floor() as i32,
            ((v.y - bounds.min.y) / cell).floor() as i32,
            ((v.z - bounds.min.z) / cell).floor() as i32,
        )
    };
    // Accumulate cluster means. BTreeMap so any iteration over the map
    // is canonically ordered; output order is the (semantic)
    // first-visit id order, restored by the sort below.
    let mut clusters: BTreeMap<(i32, i32, i32), (Vec3, u32, u32)> = BTreeMap::new();
    let mut vertex_cluster = Vec::with_capacity(mesh.vertices.len());
    for &v in &mesh.vertices {
        let k = key(v);
        let next_id = clusters.len() as u32;
        let entry = clusters.entry(k).or_insert((Vec3::ZERO, 0, next_id));
        entry.0 += v;
        entry.1 += 1;
        vertex_cluster.push(entry.2);
    }
    let mut out = TriMesh::new();
    // Cluster id -> output vertex index, in id order (deterministic).
    let mut by_id: Vec<(u32, Vec3)> = clusters
        .into_values()
        .map(|(sum, n, id)| (id, sum / n as f32))
        .collect();
    by_id.sort_by_key(|(id, _)| *id);
    out.vertices = by_id.into_iter().map(|(_, p)| p).collect();
    for f in &mesh.faces {
        let a = vertex_cluster[f[0] as usize];
        let b = vertex_cluster[f[1] as usize];
        let c = vertex_cluster[f[2] as usize];
        if a != b && b != c && a != c {
            out.faces.push([a, b, c]);
        }
    }
    out.compute_normals();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compare_meshes;

    fn dense_sphere() -> TriMesh {
        TriMesh::uv_sphere(Vec3::ZERO, 1.0, 32, 64)
    }

    #[test]
    fn reduces_face_count_substantially() {
        let m = dense_sphere();
        let s = simplify_cluster(&m, 12);
        assert!(s.face_count() * 4 < m.face_count(), "{} -> {}", m.face_count(), s.face_count());
        assert!(s.face_count() > 50);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn error_bounded_by_cell_size() {
        let m = dense_sphere();
        let cells = 16u32;
        let s = simplify_cluster(&m, cells);
        let cell = m.bounds().longest_side() / cells as f32;
        // Every simplified vertex within a cell diagonal of the sphere.
        for v in &s.vertices {
            let err = (v.length() - 1.0).abs();
            assert!(err < cell * 0.9, "vertex error {err} vs cell {cell}");
        }
        let q = compare_meshes(&m, &s, 2000, 0.05, 1);
        assert!(q.chamfer < cell, "chamfer {} vs cell {cell}", q.chamfer);
    }

    #[test]
    fn finer_grid_better_quality() {
        let m = dense_sphere();
        let coarse = compare_meshes(&m, &simplify_cluster(&m, 6), 2000, 0.05, 2).chamfer;
        let fine = compare_meshes(&m, &simplify_cluster(&m, 24), 2000, 0.05, 2).chamfer;
        assert!(fine < coarse, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn already_coarse_mesh_survives() {
        let m = TriMesh::uv_sphere(Vec3::ZERO, 1.0, 4, 6);
        let s = simplify_cluster(&m, 64);
        // Grid finer than the mesh: nothing collapses.
        assert_eq!(s.face_count(), m.face_count());
    }

    #[test]
    fn empty_mesh() {
        let s = simplify_cluster(&TriMesh::new(), 8);
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.face_count(), 0);
    }

    #[test]
    fn deterministic() {
        let m = dense_sphere();
        let a = simplify_cluster(&m, 10);
        let b = simplify_cluster(&m, 10);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.faces, b.faces);
    }
}
