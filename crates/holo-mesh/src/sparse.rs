//! Octree-accelerated isosurface extraction.
//!
//! A dense `R^3` grid at `R = 1024` means a billion field evaluations —
//! infeasible on a CPU and the reason the paper's Fig. 4 shows < 1 FPS
//! even on an A100. Since only `O(R^2)` cells intersect the surface, this
//! extractor recursively subdivides the domain and descends only into
//! cells whose center distance cannot rule out a surface crossing, then
//! polygonizes leaf cells with the same tetrahedral split as the dense
//! extractor. Output vertices are welded on the *global* leaf lattice, so
//! the result is identical in structure to the dense extraction restricted
//! to near-surface cells.

use crate::marching::{corner_key, ExtractionStats, MarchingConfig, MeshBuilder, CUBE_CORNERS, CUBE_TETS};
use crate::sdf::Sdf;
use crate::trimesh::TriMesh;
use holo_math::Vec3;
use std::collections::HashMap;

/// Extract the isosurface of `sdf`, visiting only near-surface cells.
///
/// `resolution` is rounded up to the next power of two (the octree leaf
/// count per axis). `safety` widens the pruning band; use at least the
/// smooth-union blend radius of the field, since blended fields
/// underestimate distance near creases. The default config helper uses
/// `cell diagonal * 1.0 + safety`.
pub fn sparse_extract<S: Sdf + ?Sized>(sdf: &S, resolution: u32, safety: f32) -> TriMesh {
    sparse_extract_with_stats(sdf, resolution, safety).0
}

/// Like [`sparse_extract`], additionally returning workload counters.
pub fn sparse_extract_with_stats<S: Sdf + ?Sized>(
    sdf: &S,
    resolution: u32,
    safety: f32,
) -> (TriMesh, ExtractionStats) {
    let res = resolution.max(2).next_power_of_two();
    let cfg = MarchingConfig::for_sdf(sdf, res);
    let cell = cfg.cell_size();
    let origin = cfg.bounds.min;
    let levels = res.trailing_zeros(); // res = 2^levels
    let mut builder = MeshBuilder::new();

    // Recursive descent over octree nodes. A node at `level` spans
    // 2^(levels-level) leaf cells per axis starting at integer leaf
    // coordinate (x, y, z).
    struct Ctx<'a, S: ?Sized> {
        sdf: &'a S,
        origin: Vec3,
        cell: f32,
        levels: u32,
        iso: f32,
        safety: f32,
        /// Leaf-lattice corner values, shared across the up-to-8 leaf
        /// cells that touch each corner.
        corner_cache: std::cell::RefCell<HashMap<u64, f32>>,
    }

    impl<S: Sdf + ?Sized> Ctx<'_, S> {
        fn corner_value(&self, builder: &mut MeshBuilder, key: u64, p: Vec3) -> f32 {
            if let Some(&v) = self.corner_cache.borrow().get(&key) {
                return v;
            }
            let v = self.sdf.distance(p);
            builder.stats.field_evals += 1;
            self.corner_cache.borrow_mut().insert(key, v);
            v
        }
    }

    fn descend<S: Sdf + ?Sized>(ctx: &Ctx<'_, S>, builder: &mut MeshBuilder, level: u32, x: u32, y: u32, z: u32) {
        let span = 1u32 << (ctx.levels - level); // leaf cells per axis
        let side = span as f32 * ctx.cell;
        let center = ctx.origin
            + Vec3::new(
                (x as f32 + span as f32 * 0.5) * ctx.cell,
                (y as f32 + span as f32 * 0.5) * ctx.cell,
                (z as f32 + span as f32 * 0.5) * ctx.cell,
            );
        let d = ctx.sdf.distance(center);
        builder.stats.field_evals += 1;
        let half_diag = side * 0.5 * 1.732_051;
        if (d - ctx.iso).abs() > half_diag + ctx.safety {
            return; // no surface can cross this node
        }
        if level == ctx.levels {
            // Leaf: polygonize this single cell.
            builder.stats.cubes_visited += 1;
            let mut keys = [0u64; 8];
            let mut pos = [Vec3::ZERO; 8];
            let mut val = [0f32; 8];
            for (ci, &(dx, dy, dz)) in CUBE_CORNERS.iter().enumerate() {
                let (cx, cy, cz) = (x + dx, y + dy, z + dz);
                keys[ci] = corner_key(cx, cy, cz);
                pos[ci] = ctx.origin + Vec3::new(cx as f32, cy as f32, cz as f32) * ctx.cell;
                val[ci] = ctx.corner_value(builder, keys[ci], pos[ci]);
            }
            if val.iter().all(|&v| v >= ctx.iso) || val.iter().all(|&v| v < ctx.iso) {
                return;
            }
            for tet in &CUBE_TETS {
                builder.do_tet(
                    [keys[tet[0]], keys[tet[1]], keys[tet[2]], keys[tet[3]]],
                    [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                    [val[tet[0]], val[tet[1]], val[tet[2]], val[tet[3]]],
                    ctx.iso,
                );
            }
            return;
        }
        let half = span / 2;
        for dz in 0..2u32 {
            for dy in 0..2u32 {
                for dx in 0..2u32 {
                    descend(ctx, builder, level + 1, x + dx * half, y + dy * half, z + dz * half);
                }
            }
        }
    }

    let ctx = Ctx {
        sdf,
        origin,
        cell,
        levels,
        iso: cfg.iso,
        safety,
        corner_cache: std::cell::RefCell::new(HashMap::new()),
    };
    descend(&ctx, &mut builder, 0, 0, 0, 0);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marching::marching_tetrahedra;
    use crate::sdf::{SdfSphere, SdfUnion};
    use holo_math::Aabb;

    #[test]
    fn matches_dense_extraction_area() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let res = 32;
        let dense = marching_tetrahedra(&s, &MarchingConfig::for_sdf(&s, res));
        let sparse = sparse_extract(&s, res, 0.0);
        let rel = (dense.surface_area() - sparse.surface_area()).abs() / dense.surface_area();
        assert!(rel < 0.01, "area mismatch {rel}");
        assert_eq!(dense.face_count(), sparse.face_count());
    }

    #[test]
    fn sparse_is_watertight() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 0.7 };
        let mesh = sparse_extract(&s, 64, 0.0);
        assert!(mesh.is_closed());
        assert_eq!(mesh.euler_characteristic(), 2);
    }

    #[test]
    fn evaluation_count_subquadratic_in_volume() {
        // The advantage grows with resolution (O(R^2) vs O(R^3)); at 128
        // the sparse extractor must already be several times cheaper.
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let (_, stats) = sparse_extract_with_stats(&s, 128, 0.0);
        let dense_evals = 129u64.pow(3);
        assert!(
            stats.field_evals < dense_evals / 5,
            "sparse used {} evals vs dense {}",
            stats.field_evals,
            dense_evals
        );
    }

    #[test]
    fn eval_count_scales_like_surface() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let (_, a) = sparse_extract_with_stats(&s, 32, 0.0);
        let (_, b) = sparse_extract_with_stats(&s, 64, 0.0);
        let ratio = b.field_evals as f64 / a.field_evals as f64;
        // Surface cells scale ~4x per resolution doubling (plus tree
        // overhead); must be far below the 8x of dense scaling.
        assert!((2.5..7.0).contains(&ratio), "eval scaling ratio {ratio}");
    }

    #[test]
    fn smooth_union_needs_safety_margin() {
        let mut u = SdfUnion::new(0.1);
        u.push(Box::new(SdfSphere { center: Vec3::new(-0.4, 0.0, 0.0), radius: 0.5 }));
        u.push(Box::new(SdfSphere { center: Vec3::new(0.4, 0.0, 0.0), radius: 0.5 }));
        let mesh = sparse_extract(&u, 64, 0.1);
        assert!(mesh.is_closed());
        // Blended pair of spheres is still genus 0.
        assert_eq!(mesh.euler_characteristic(), 2);
    }

    #[test]
    fn handles_offset_bounds() {
        let s = SdfSphere { center: Vec3::new(3.0, -2.0, 5.0), radius: 0.6 };
        let mesh = sparse_extract(&s, 32, 0.0);
        assert!(mesh.is_closed());
        let b = mesh.bounds();
        assert!(Aabb::new(Vec3::new(2.3, -2.7, 4.3), Vec3::new(3.7, -1.3, 5.7)).expanded(0.1).contains(b.center()));
    }
}
