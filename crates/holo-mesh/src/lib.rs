//! Geometry substrate for the SemHolo reproduction.
//!
//! This crate owns the 3D content representations the paper's pipelines
//! exchange — triangle meshes and point clouds — plus the machinery to
//! create and compare them:
//!
//! - [`trimesh`] — indexed triangle meshes ([`TriMesh`]) with normals,
//!   areas, edge topology, and the raw wire-size accounting used by
//!   Table 2.
//! - [`pointcloud`] — colored point clouds ([`PointCloud`]) with voxel-grid
//!   downsampling, the capture substrate's fusion output.
//! - [`sdf`] — signed distance fields: primitives (sphere, capsule,
//!   rounded cone, ellipsoid), smooth CSG, and transforms. The avatar body
//!   is modeled as an SDF, mirroring X-Avatar's implicit geometry network.
//! - [`marching`] — isosurface extraction by marching tetrahedra over a
//!   dense grid, the reconstruction step X-Avatar runs at resolutions
//!   128–1024 (Figs. 2 and 4).
//! - [`sparse`] — octree-accelerated extraction that only descends into
//!   cells near the surface, making resolution-1024 extraction feasible on
//!   a CPU.
//! - [`grid`] — spatial hash grid for nearest-neighbor queries.
//! - [`metrics`] — Chamfer distance, Hausdorff distance, F-score, and
//!   normal consistency, the quality axis of Table 1 and Fig. 2.
//! - [`simplify`] — vertex-clustering decimation for level-of-detail.
//! - [`voxel`] — occupancy voxelization helpers.

pub mod grid;
pub mod marching;
pub mod metrics;
pub mod pointcloud;
pub mod sdf;
pub mod simplify;
pub mod sparse;
pub mod trimesh;
pub mod voxel;

pub use grid::PointGrid;
pub use marching::{marching_tetrahedra, MarchingConfig};
pub use metrics::{chamfer_distance, f_score, hausdorff_distance, normal_consistency, MeshQuality};
pub use pointcloud::PointCloud;
pub use sdf::{Sdf, SdfCapsule, SdfEllipsoid, SdfRoundCone, SdfSphere};
pub use simplify::simplify_cluster;
pub use sparse::sparse_extract;
pub use trimesh::TriMesh;
