//! Occupancy voxelization.
//!
//! Used by the text-semantics cell partitioner and by the GPU memory model
//! (a dense voxel grid at resolution `R` is what exhausts the RTX 3080's
//! VRAM at `R >= 512` in Fig. 4).

use holo_math::{Aabb, Vec3};

/// A dense boolean occupancy grid over an axis-aligned region.
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    /// Grid dimensions (nx, ny, nz).
    pub dims: (u32, u32, u32),
    /// Region covered.
    pub bounds: Aabb,
    bits: Vec<u64>,
}

impl VoxelGrid {
    /// An all-empty grid.
    pub fn new(bounds: Aabb, dims: (u32, u32, u32)) -> Self {
        let n = dims.0 as usize * dims.1 as usize * dims.2 as usize;
        Self { dims, bounds, bits: vec![0; n.div_ceil(64)] }
    }

    /// Voxelize a point set: a voxel is occupied when any point falls in it.
    pub fn from_points(points: &[Vec3], resolution: u32) -> Self {
        let bounds = Aabb::from_points(points).expanded(1e-5);
        let mut g = Self::new(bounds, (resolution, resolution, resolution));
        for &p in points {
            if let Some(idx) = g.voxel_of(p) {
                g.set(idx, true);
            }
        }
        g
    }

    fn linear(&self, (x, y, z): (u32, u32, u32)) -> usize {
        (z as usize * self.dims.1 as usize + y as usize) * self.dims.0 as usize + x as usize
    }

    /// Voxel coordinates containing point `p`, if inside the bounds.
    pub fn voxel_of(&self, p: Vec3) -> Option<(u32, u32, u32)> {
        if !self.bounds.contains(p) {
            return None;
        }
        let s = self.bounds.size();
        let rel = p - self.bounds.min;
        let f = |r: f32, s: f32, n: u32| (((r / s.max(1e-12)) * n as f32) as u32).min(n - 1);
        Some((f(rel.x, s.x, self.dims.0), f(rel.y, s.y, self.dims.1), f(rel.z, s.z, self.dims.2)))
    }

    /// Set a voxel's occupancy.
    pub fn set(&mut self, v: (u32, u32, u32), occupied: bool) {
        let i = self.linear(v);
        if occupied {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Read a voxel's occupancy.
    pub fn get(&self, v: (u32, u32, u32)) -> bool {
        let i = self.linear(v);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Center point of voxel `v`.
    pub fn voxel_center(&self, v: (u32, u32, u32)) -> Vec3 {
        let s = self.bounds.size();
        self.bounds.min
            + Vec3::new(
                (v.0 as f32 + 0.5) / self.dims.0 as f32 * s.x,
                (v.1 as f32 + 0.5) / self.dims.1 as f32 * s.y,
                (v.2 as f32 + 0.5) / self.dims.2 as f32 * s.z,
            )
    }

    /// Memory a dense `f32` field of these dimensions would occupy, in
    /// bytes — the figure the GPU VRAM model charges for grid evaluation.
    pub fn dense_field_bytes(&self) -> u64 {
        self.dims.0 as u64 * self.dims.1 as u64 * self.dims.2 as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    #[test]
    fn set_get_roundtrip() {
        let mut g = VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::ONE), (8, 8, 8));
        assert!(!g.get((3, 4, 5)));
        g.set((3, 4, 5), true);
        assert!(g.get((3, 4, 5)));
        assert_eq!(g.occupied_count(), 1);
        g.set((3, 4, 5), false);
        assert_eq!(g.occupied_count(), 0);
    }

    #[test]
    fn from_points_covers_inputs() {
        let mut rng = Pcg32::new(1);
        let pts: Vec<Vec3> = (0..500)
            .map(|_| Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            .collect();
        let g = VoxelGrid::from_points(&pts, 16);
        for &p in &pts {
            let v = g.voxel_of(p).expect("point inside bounds");
            assert!(g.get(v), "voxel containing {p:?} not set");
        }
        assert!(g.occupied_count() <= 16 * 16 * 16);
    }

    #[test]
    fn voxel_center_inside_voxel() {
        let g = VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::splat(2.0)), (4, 4, 4));
        let c = g.voxel_center((0, 0, 0));
        assert_eq!(g.voxel_of(c), Some((0, 0, 0)));
        let c2 = g.voxel_center((3, 3, 3));
        assert_eq!(g.voxel_of(c2), Some((3, 3, 3)));
    }

    #[test]
    fn out_of_bounds_is_none() {
        let g = VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::ONE), (4, 4, 4));
        assert!(g.voxel_of(Vec3::splat(2.0)).is_none());
    }

    #[test]
    fn dense_field_bytes_formula() {
        let g = VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::ONE), (512, 512, 512));
        assert_eq!(g.dense_field_bytes(), 512u64 * 512 * 512 * 4);
    }
}
