//! Signed distance fields.
//!
//! X-Avatar represents the human body as an implicit surface decoded by a
//! neural network; our substitute models the body as an analytic SDF built
//! from skeleton-driven primitives (capsules for limbs, rounded cones for
//! tapering segments, ellipsoids for head/torso) blended with smooth CSG.
//! The isosurface extractors in [`crate::marching`] and [`crate::sparse`]
//! consume any [`Sdf`].

use holo_math::{Aabb, Vec3};

/// A signed distance field: negative inside, positive outside, zero on the
/// surface. Implementations should be exact or conservative (a lower bound
/// on true distance) so sphere tracing terminates correctly.
pub trait Sdf: Sync {
    /// Signed distance at `p`.
    fn distance(&self, p: Vec3) -> f32;

    /// A bounding box guaranteed to contain the zero level set.
    fn bounds(&self) -> Aabb;

    /// Surface normal by central differences.
    fn normal(&self, p: Vec3, eps: f32) -> Vec3 {
        let dx = self.distance(p + Vec3::new(eps, 0.0, 0.0)) - self.distance(p - Vec3::new(eps, 0.0, 0.0));
        let dy = self.distance(p + Vec3::new(0.0, eps, 0.0)) - self.distance(p - Vec3::new(0.0, eps, 0.0));
        let dz = self.distance(p + Vec3::new(0.0, 0.0, eps)) - self.distance(p - Vec3::new(0.0, 0.0, eps));
        Vec3::new(dx, dy, dz).normalized()
    }
}

/// Sphere primitive.
#[derive(Debug, Clone, Copy)]
pub struct SdfSphere {
    pub center: Vec3,
    pub radius: f32,
}

impl Sdf for SdfSphere {
    fn distance(&self, p: Vec3) -> f32 {
        (p - self.center).length() - self.radius
    }

    fn bounds(&self) -> Aabb {
        Aabb::new(self.center - Vec3::splat(self.radius), self.center + Vec3::splat(self.radius))
    }
}

/// Capsule primitive: the set of points within `radius` of segment `a`-`b`.
#[derive(Debug, Clone, Copy)]
pub struct SdfCapsule {
    pub a: Vec3,
    pub b: Vec3,
    pub radius: f32,
}

impl Sdf for SdfCapsule {
    fn distance(&self, p: Vec3) -> f32 {
        let pa = p - self.a;
        let ba = self.b - self.a;
        let denom = ba.dot(ba).max(1e-12);
        let h = (pa.dot(ba) / denom).clamp(0.0, 1.0);
        (pa - ba * h).length() - self.radius
    }

    fn bounds(&self) -> Aabb {
        let mut b = Aabb::from_points(&[self.a, self.b]);
        b = b.expanded(self.radius);
        b
    }
}

/// Rounded cone: a capsule whose radius tapers linearly from `ra` at `a`
/// to `rb` at `b`. Used for tapering limb segments (forearms, fingers).
#[derive(Debug, Clone, Copy)]
pub struct SdfRoundCone {
    pub a: Vec3,
    pub b: Vec3,
    pub ra: f32,
    pub rb: f32,
}

impl Sdf for SdfRoundCone {
    fn distance(&self, p: Vec3) -> f32 {
        // Inigo Quilez's exact round cone distance.
        let ba = self.b - self.a;
        let l2 = ba.dot(ba);
        let rr = self.ra - self.rb;
        let a2 = l2 - rr * rr;
        if a2 <= 0.0 || l2 < 1e-12 {
            // Degenerate: one sphere contains the other; fall back to the
            // union of the two end spheres.
            let d1 = (p - self.a).length() - self.ra;
            let d2 = (p - self.b).length() - self.rb;
            return d1.min(d2);
        }
        let il2 = 1.0 / l2;
        let pa = p - self.a;
        let y = pa.dot(ba);
        let z = y - l2;
        let x2 = (pa * l2 - ba * y).length_sq();
        let y2 = y * y * l2;
        let z2 = z * z * l2;
        let k = rr.signum() * rr * rr * x2;
        if z.signum() * a2 * z2 > k {
            return (x2 + z2).sqrt() * il2 - self.rb;
        }
        if y.signum() * a2 * y2 < k {
            return (x2 + y2).sqrt() * il2 - self.ra;
        }
        ((x2 * a2 * il2).sqrt() + y * rr) * il2 - self.ra
    }

    fn bounds(&self) -> Aabb {
        let r = self.ra.max(self.rb);
        Aabb::from_points(&[self.a, self.b]).expanded(r)
    }
}

/// Axis-aligned ellipsoid (approximate but conservative distance bound).
#[derive(Debug, Clone, Copy)]
pub struct SdfEllipsoid {
    pub center: Vec3,
    pub radii: Vec3,
}

impl Sdf for SdfEllipsoid {
    fn distance(&self, p: Vec3) -> f32 {
        // IQ's ellipsoid bound: exact sign, conservative magnitude.
        let q = p - self.center;
        let k0 = Vec3::new(q.x / self.radii.x, q.y / self.radii.y, q.z / self.radii.z).length();
        let k1 = Vec3::new(
            q.x / (self.radii.x * self.radii.x),
            q.y / (self.radii.y * self.radii.y),
            q.z / (self.radii.z * self.radii.z),
        )
        .length();
        if k1 < 1e-12 {
            return -self.radii.x.min(self.radii.y).min(self.radii.z);
        }
        k0 * (k0 - 1.0) / k1
    }

    fn bounds(&self) -> Aabb {
        Aabb::new(self.center - self.radii, self.center + self.radii)
    }
}

/// Smooth minimum (polynomial) used for organic blends between body parts.
#[inline]
pub fn smooth_min(a: f32, b: f32, k: f32) -> f32 {
    if k <= 0.0 {
        return a.min(b);
    }
    let h = (k - (a - b).abs()).max(0.0) / k;
    a.min(b) - h * h * k * 0.25
}

/// A smooth union of boxed SDF parts — the body model's aggregate shape.
pub struct SdfUnion {
    parts: Vec<Box<dyn Sdf + Send>>,
    /// Smoothing radius for the blend; 0 gives a hard union.
    pub smoothness: f32,
    cached_bounds: Aabb,
}

impl SdfUnion {
    /// Create an empty union with the given blend radius.
    pub fn new(smoothness: f32) -> Self {
        Self { parts: Vec::new(), smoothness, cached_bounds: Aabb::EMPTY }
    }

    /// Add a part.
    pub fn push(&mut self, part: Box<dyn Sdf + Send>) {
        self.cached_bounds.merge(&part.bounds());
        self.parts.push(part);
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no parts have been added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Sdf for SdfUnion {
    fn distance(&self, p: Vec3) -> f32 {
        let mut d = f32::INFINITY;
        for part in &self.parts {
            d = smooth_min(d, part.distance(p), self.smoothness);
        }
        d
    }

    fn bounds(&self) -> Aabb {
        // Smooth blending can bulge the surface slightly outward.
        self.cached_bounds.expanded(self.smoothness)
    }
}

/// A spatially accelerated smooth union: parts are bucketed into a coarse
/// grid so evaluation touches only nearby parts instead of all of them.
///
/// A body SDF has ~80 primitive parts; naive union evaluation makes
/// resolution-1024 extraction (Figs. 2/4) minutes of CPU. The grid keeps
/// per-cell part lists within a `margin`; queries farther than the margin
/// from every listed part return a *conservative underestimate* (the
/// margin, or the distance to the content bounds), which preserves
/// correctness for both sphere tracing and octree pruning.
pub struct GriddedUnion {
    parts: Vec<Box<dyn Sdf + Send>>,
    /// Blend radius.
    pub smoothness: f32,
    bounds: Aabb,
    dims: u32,
    cells: Vec<Vec<u16>>,
    margin: f32,
}

impl GriddedUnion {
    /// Build from parts with the given blend radius; `dims` grid cells
    /// per axis and `margin` meters of part-listing slack.
    pub fn build(parts: Vec<Box<dyn Sdf + Send>>, smoothness: f32, dims: u32, margin: f32) -> Self {
        let mut bounds = Aabb::EMPTY;
        for p in &parts {
            bounds.merge(&p.bounds());
        }
        if bounds.is_empty() {
            bounds = Aabb::new(Vec3::ZERO, Vec3::ONE);
        }
        let dims = dims.clamp(1, 64);
        let mut cells = vec![Vec::new(); (dims as usize).pow(3)];
        let size = bounds.size();
        let cell_size = size / dims as f32;
        for (pi, part) in parts.iter().enumerate() {
            let pb = part.bounds().expanded(margin);
            // Cell index range overlapped by the padded part box.
            let lo = (pb.min - bounds.min).mul_elem(Vec3::new(
                1.0 / cell_size.x.max(1e-9),
                1.0 / cell_size.y.max(1e-9),
                1.0 / cell_size.z.max(1e-9),
            ));
            let hi = (pb.max - bounds.min).mul_elem(Vec3::new(
                1.0 / cell_size.x.max(1e-9),
                1.0 / cell_size.y.max(1e-9),
                1.0 / cell_size.z.max(1e-9),
            ));
            let clamp_idx = |v: f32| (v.floor().max(0.0) as u32).min(dims - 1);
            for z in clamp_idx(lo.z)..=clamp_idx(hi.z) {
                for y in clamp_idx(lo.y)..=clamp_idx(hi.y) {
                    for x in clamp_idx(lo.x)..=clamp_idx(hi.x) {
                        cells[((z * dims + y) * dims + x) as usize].push(pi as u16);
                    }
                }
            }
        }
        Self { parts, smoothness, bounds, dims, cells, margin }
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no parts were provided.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Sdf for GriddedUnion {
    fn distance(&self, p: Vec3) -> f32 {
        // Outside the content box: distance to the box is a safe
        // underestimate of the distance to any part.
        let outside = self.bounds.signed_distance(p);
        if outside > 0.0 {
            return outside;
        }
        let size = self.bounds.size();
        let rel = p - self.bounds.min;
        let idx = |r: f32, s: f32| (((r / s.max(1e-9)) * self.dims as f32) as u32).min(self.dims - 1);
        let (x, y, z) = (idx(rel.x, size.x), idx(rel.y, size.y), idx(rel.z, size.z));
        let cell = &self.cells[((z * self.dims + y) * self.dims + x) as usize];
        // The margin minus the blend bulge bounds unlisted parts' reach.
        let cap = self.margin - self.smoothness;
        let mut d = f32::INFINITY;
        for &pi in cell {
            d = smooth_min(d, self.parts[pi as usize].distance(p), self.smoothness);
        }
        d.min(cap)
    }

    fn bounds(&self) -> Aabb {
        self.bounds.expanded(self.smoothness)
    }
}

/// An SDF displaced by a bounded high-frequency function, modeling surface
/// detail that keypoints cannot carry (cloth folds — the detail Fig. 2's
/// keypoint reconstructions lose).
pub struct SdfDisplaced<S: Sdf> {
    pub base: S,
    /// Displacement amplitude in meters.
    pub amplitude: f32,
    /// Spatial frequency of the displacement in cycles per meter.
    pub frequency: f32,
}

impl<S: Sdf> Sdf for SdfDisplaced<S> {
    fn distance(&self, p: Vec3) -> f32 {
        let d = self.base.distance(p);
        // Only displace near the surface so far-field distances stay valid.
        if d.abs() > self.amplitude * 4.0 {
            return d;
        }
        let w = self.frequency * std::f32::consts::TAU;
        let disp = (p.x * w).sin() * (p.y * w * 0.83).sin() * (p.z * w * 1.19).sin();
        d + disp * self.amplitude
    }

    fn bounds(&self) -> Aabb {
        self.base.bounds().expanded(self.amplitude)
    }
}

/// Blanket impl so `&S` and boxed SDFs work wherever an `Sdf` is expected.
impl<S: Sdf + ?Sized> Sdf for &S {
    fn distance(&self, p: Vec3) -> f32 {
        (**self).distance(p)
    }

    fn bounds(&self) -> Aabb {
        (**self).bounds()
    }
}

impl Sdf for Box<dyn Sdf + Send> {
    fn distance(&self, p: Vec3) -> f32 {
        (**self).distance(p)
    }

    fn bounds(&self) -> Aabb {
        (**self).bounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::{approx_eq, Pcg32};

    #[test]
    fn sphere_distance_exact() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 2.0 };
        assert!(approx_eq(s.distance(Vec3::new(5.0, 0.0, 0.0)), 3.0, 1e-6));
        assert!(approx_eq(s.distance(Vec3::ZERO), -2.0, 1e-6));
        assert!(approx_eq(s.distance(Vec3::new(0.0, 2.0, 0.0)), 0.0, 1e-6));
    }

    #[test]
    fn capsule_distance_on_axis_and_side() {
        let c = SdfCapsule { a: Vec3::ZERO, b: Vec3::new(0.0, 2.0, 0.0), radius: 0.5 };
        // Beyond the end cap.
        assert!(approx_eq(c.distance(Vec3::new(0.0, 3.0, 0.0)), 0.5, 1e-6));
        // Beside the shaft.
        assert!(approx_eq(c.distance(Vec3::new(1.5, 1.0, 0.0)), 1.0, 1e-6));
        // Inside.
        assert!(c.distance(Vec3::new(0.0, 1.0, 0.0)) < 0.0);
    }

    #[test]
    fn round_cone_matches_sphere_at_ends() {
        let rc = SdfRoundCone { a: Vec3::ZERO, b: Vec3::new(0.0, 2.0, 0.0), ra: 0.5, rb: 0.2 };
        // Far below a: behaves like the a-sphere.
        assert!(approx_eq(rc.distance(Vec3::new(0.0, -2.0, 0.0)), 1.5, 1e-4));
        // Far above b: behaves like the b-sphere.
        assert!(approx_eq(rc.distance(Vec3::new(0.0, 4.0, 0.0)), 1.8, 1e-4));
        // Inside the thick end.
        assert!(rc.distance(Vec3::ZERO) < 0.0);
    }

    #[test]
    fn round_cone_zero_level_between_radii() {
        let rc = SdfRoundCone { a: Vec3::ZERO, b: Vec3::new(0.0, 2.0, 0.0), ra: 0.5, rb: 0.2 };
        // At mid-height the lateral surface radius is between rb and ra.
        let mut lo = 0.0f32;
        let mut hi = 2.0f32;
        for _ in 0..40 {
            let mid = (lo + hi) * 0.5;
            if rc.distance(Vec3::new(mid, 1.0, 0.0)) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        assert!((0.2..=0.5).contains(&lo), "surface radius {lo}");
    }

    #[test]
    fn ellipsoid_sign_correct() {
        let e = SdfEllipsoid { center: Vec3::ZERO, radii: Vec3::new(2.0, 1.0, 0.5) };
        assert!(e.distance(Vec3::ZERO) < 0.0);
        assert!(e.distance(Vec3::new(3.0, 0.0, 0.0)) > 0.0);
        assert!(approx_eq(e.distance(Vec3::new(2.0, 0.0, 0.0)), 0.0, 1e-4));
        assert!(approx_eq(e.distance(Vec3::new(0.0, 0.0, 0.5)), 0.0, 1e-4));
    }

    #[test]
    fn smooth_min_bounded_by_hard_min() {
        let mut rng = Pcg32::new(1);
        for _ in 0..1000 {
            let a = rng.range_f32(-2.0, 2.0);
            let b = rng.range_f32(-2.0, 2.0);
            let s = smooth_min(a, b, 0.3);
            assert!(s <= a.min(b) + 1e-6);
            assert!(s >= a.min(b) - 0.3 * 0.25 - 1e-6);
        }
        assert_eq!(smooth_min(1.0, 2.0, 0.0), 1.0);
    }

    #[test]
    fn union_contains_all_parts() {
        let mut u = SdfUnion::new(0.05);
        u.push(Box::new(SdfSphere { center: Vec3::ZERO, radius: 1.0 }));
        u.push(Box::new(SdfSphere { center: Vec3::new(3.0, 0.0, 0.0), radius: 0.5 }));
        assert_eq!(u.len(), 2);
        assert!(u.distance(Vec3::ZERO) < 0.0);
        assert!(u.distance(Vec3::new(3.0, 0.0, 0.0)) < 0.0);
        assert!(u.distance(Vec3::new(1.8, 0.0, 0.0)) > 0.0);
        let b = u.bounds();
        assert!(b.contains(Vec3::new(3.4, 0.0, 0.0)));
    }

    #[test]
    fn normals_point_away_from_sphere_center() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let p = Vec3::new(0.8, 0.6, 0.0); // on the surface
        let n = s.normal(p, 1e-3);
        assert!(n.dot(p.normalized()) > 0.999);
    }

    #[test]
    fn gridded_union_matches_plain_union_near_surface() {
        let make_parts = || -> Vec<Box<dyn Sdf + Send>> {
            let mut parts: Vec<Box<dyn Sdf + Send>> = Vec::new();
            for i in 0..20 {
                let t = i as f32 * 0.31;
                parts.push(Box::new(SdfSphere {
                    center: Vec3::new(t.sin() * 0.8, 1.0 + (t * 1.7).cos() * 0.6, (t * 0.9).sin() * 0.4),
                    radius: 0.15,
                }));
            }
            parts
        };
        let mut plain = SdfUnion::new(0.02);
        for p in make_parts() {
            plain.push(p);
        }
        let grid = GriddedUnion::build(make_parts(), 0.02, 16, 0.3);
        let mut rng = Pcg32::new(3);
        let content = {
            let mut b = holo_math::Aabb::EMPTY;
            for p in make_parts() {
                b.merge(&p.bounds());
            }
            b
        };
        for _ in 0..3000 {
            let p = Vec3::new(rng.range_f32(-1.2, 1.2), rng.range_f32(-0.2, 2.0), rng.range_f32(-1.0, 1.0));
            let dp = plain.distance(p);
            let dg = grid.distance(p);
            if content.contains(p) && dp < 0.2 {
                // Exact inside the content box within the margin band.
                assert!((dp - dg).abs() < 1e-5, "mismatch at {p:?}: plain {dp} grid {dg}");
            } else {
                // Elsewhere: conservative underestimate, never larger,
                // never flipping sign to negative.
                assert!(dg <= dp + 1e-5, "overestimate at {p:?}: plain {dp} grid {dg}");
                if dp > 0.0 {
                    assert!(dg >= 0.0, "sign flip at {p:?}: plain {dp} grid {dg}");
                }
            }
        }
    }

    #[test]
    fn gridded_union_extraction_identical_surface() {
        let parts = |off: f32| -> Vec<Box<dyn Sdf + Send>> {
            vec![
                Box::new(SdfSphere { center: Vec3::new(off, 0.0, 0.0), radius: 0.5 }),
                Box::new(SdfSphere { center: Vec3::new(-off, 0.0, 0.0), radius: 0.5 }),
            ]
        };
        let grid = GriddedUnion::build(parts(0.3), 0.02, 12, 0.3);
        let mesh = crate::sparse::sparse_extract(&grid, 48, 0.05);
        assert!(mesh.is_closed());
        assert!(mesh.face_count() > 1000);
    }

    #[test]
    fn gridded_union_empty_is_safe() {
        let grid = GriddedUnion::build(Vec::new(), 0.02, 8, 0.3);
        assert!(grid.is_empty());
        assert!(grid.distance(Vec3::ZERO) > -1.0);
    }

    #[test]
    fn displacement_stays_within_amplitude() {
        let base = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let disp = SdfDisplaced { base, amplitude: 0.02, frequency: 8.0 };
        let mut rng = Pcg32::new(2);
        for _ in 0..500 {
            let dir = Vec3::new(rng.normal(), rng.normal(), rng.normal()).normalized();
            let p = dir * 1.0;
            let d = disp.distance(p);
            assert!(d.abs() <= 0.021, "displaced distance {d} at surface");
        }
    }
}
