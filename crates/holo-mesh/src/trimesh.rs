//! Indexed triangle meshes.

use holo_math::{Aabb, Mat4, Pcg32, Vec3};
use std::collections::BTreeMap;

/// An indexed triangle mesh: a vertex buffer plus a face index buffer.
///
/// Optional per-vertex normals and RGB colors ride alongside; when present
/// their length equals `vertices.len()`.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as triples of vertex indices (counter-clockwise winding).
    pub faces: Vec<[u32; 3]>,
    /// Optional per-vertex unit normals.
    pub normals: Vec<Vec3>,
    /// Optional per-vertex RGB colors in `[0, 1]`.
    pub colors: Vec<Vec3>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Size in bytes of the *uncompressed* binary wire format used as the
    /// "traditional communication" baseline in Table 2: a 16-byte header
    /// (magic, version, vertex count, face count), `f32` positions, and
    /// `u32` indices. Normals/colors are excluded, matching the paper's
    /// untextured-mesh measurement.
    pub fn raw_size_bytes(&self) -> usize {
        16 + self.vertices.len() * 12 + self.faces.len() * 12
    }

    /// Axis-aligned bounds of the vertices.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.vertices)
    }

    /// Validate structural invariants: all face indices in range, normals
    /// and colors either empty or one per vertex, all coordinates finite.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.vertices.len() as u32;
        for (i, f) in self.faces.iter().enumerate() {
            for &idx in f {
                if idx >= n {
                    return Err(format!("face {i} references vertex {idx} out of {n}"));
                }
            }
        }
        if !self.normals.is_empty() && self.normals.len() != self.vertices.len() {
            return Err(format!(
                "normal count {} != vertex count {}",
                self.normals.len(),
                self.vertices.len()
            ));
        }
        if !self.colors.is_empty() && self.colors.len() != self.vertices.len() {
            return Err(format!(
                "color count {} != vertex count {}",
                self.colors.len(),
                self.vertices.len()
            ));
        }
        for (i, v) in self.vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!("vertex {i} is not finite: {v:?}"));
            }
        }
        Ok(())
    }

    /// The three corner positions of face `i`.
    pub fn face_positions(&self, i: usize) -> [Vec3; 3] {
        let f = self.faces[i];
        [
            self.vertices[f[0] as usize],
            self.vertices[f[1] as usize],
            self.vertices[f[2] as usize],
        ]
    }

    /// Area of triangle `i`.
    pub fn face_area(&self, i: usize) -> f32 {
        let [a, b, c] = self.face_positions(i);
        (b - a).cross(c - a).length() * 0.5
    }

    /// Geometric (unnormalized) face normal of triangle `i`.
    pub fn face_normal(&self, i: usize) -> Vec3 {
        let [a, b, c] = self.face_positions(i);
        (b - a).cross(c - a).normalized()
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f32 {
        (0..self.faces.len()).map(|i| self.face_area(i)).sum()
    }

    /// Recompute per-vertex normals as the area-weighted average of
    /// adjacent face normals.
    pub fn compute_normals(&mut self) {
        let mut acc = vec![Vec3::ZERO; self.vertices.len()];
        for f in &self.faces {
            let a = self.vertices[f[0] as usize];
            let b = self.vertices[f[1] as usize];
            let c = self.vertices[f[2] as usize];
            let n = (b - a).cross(c - a); // length encodes 2x area
            for &idx in f {
                acc[idx as usize] += n;
            }
        }
        self.normals = acc.into_iter().map(|n| n.normalized()).collect();
    }

    /// Apply an affine transform to vertices (and rotate normals).
    pub fn transform(&mut self, m: &Mat4) {
        for v in &mut self.vertices {
            *v = m.transform_point(*v);
        }
        for n in &mut self.normals {
            *n = m.transform_dir(*n).normalized();
        }
    }

    /// Append another mesh (re-indexing its faces).
    pub fn append(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.faces.extend(other.faces.iter().map(|f| [f[0] + base, f[1] + base, f[2] + base]));
        if !self.normals.is_empty() || !other.normals.is_empty() {
            // Keep lengths consistent: pad whichever side lacks normals.
            self.normals.resize(base as usize, Vec3::ZERO);
            if other.normals.is_empty() {
                self.normals.extend(std::iter::repeat(Vec3::ZERO).take(other.vertices.len()));
            } else {
                self.normals.extend_from_slice(&other.normals);
            }
        }
        if !self.colors.is_empty() || !other.colors.is_empty() {
            self.colors.resize(base as usize, Vec3::ONE);
            if other.colors.is_empty() {
                self.colors.extend(std::iter::repeat(Vec3::ONE).take(other.vertices.len()));
            } else {
                self.colors.extend_from_slice(&other.colors);
            }
        }
    }

    /// Undirected edge list with per-edge face counts. Edges with count 1
    /// are boundary edges; counts > 2 indicate non-manifold topology.
    /// Returned as a `BTreeMap` so callers iterating it (reports, dumps)
    /// get canonical edge order by construction.
    pub fn edge_face_counts(&self) -> BTreeMap<(u32, u32), u32> {
        let mut edges: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for f in &self.faces {
            for k in 0..3 {
                let a = f[k];
                let b = f[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        edges
    }

    /// True when every edge is shared by exactly two faces (closed
    /// 2-manifold surface).
    pub fn is_closed(&self) -> bool {
        !self.faces.is_empty() && self.edge_face_counts().values().all(|&c| c == 2)
    }

    /// Euler characteristic `V - E + F` (2 for a sphere-topology surface).
    pub fn euler_characteristic(&self) -> i64 {
        let v = self.vertices.len() as i64;
        let e = self.edge_face_counts().len() as i64;
        let f = self.faces.len() as i64;
        v - e + f
    }

    /// Sample `n` points uniformly by surface area, with interpolated
    /// normals when present. Used by the quality metrics.
    pub fn sample_surface(&self, n: usize, rng: &mut Pcg32) -> (Vec<Vec3>, Vec<Vec3>) {
        let mut points = Vec::with_capacity(n);
        let mut normals = Vec::with_capacity(n);
        if self.faces.is_empty() || n == 0 {
            return (points, normals);
        }
        // Cumulative area table for area-proportional face selection.
        let mut cdf = Vec::with_capacity(self.faces.len());
        let mut total = 0.0f32;
        for i in 0..self.faces.len() {
            total += self.face_area(i);
            cdf.push(total);
        }
        if total <= 0.0 {
            return (points, normals);
        }
        for _ in 0..n {
            let r = rng.next_f32() * total;
            let fi = cdf.partition_point(|&c| c < r).min(self.faces.len() - 1);
            let [a, b, c] = self.face_positions(fi);
            // Uniform barycentric sample.
            let (mut u, mut v) = (rng.next_f32(), rng.next_f32());
            if u + v > 1.0 {
                u = 1.0 - u;
                v = 1.0 - v;
            }
            points.push(a + (b - a) * u + (c - a) * v);
            normals.push(self.face_normal(fi));
        }
        (points, normals)
    }

    /// Build a UV-sphere mesh (used widely in tests and as a calibration
    /// target: its area and volume are known analytically).
    pub fn uv_sphere(center: Vec3, radius: f32, rings: u32, segments: u32) -> Self {
        let mut mesh = TriMesh::new();
        let rings = rings.max(2);
        let segments = segments.max(3);
        // Poles + ring vertices.
        mesh.vertices.push(center + Vec3::new(0.0, radius, 0.0));
        for r in 1..rings {
            let phi = std::f32::consts::PI * r as f32 / rings as f32;
            for s in 0..segments {
                let theta = std::f32::consts::TAU * s as f32 / segments as f32;
                mesh.vertices.push(
                    center
                        + Vec3::new(
                            radius * phi.sin() * theta.cos(),
                            radius * phi.cos(),
                            radius * phi.sin() * theta.sin(),
                        ),
                );
            }
        }
        mesh.vertices.push(center - Vec3::new(0.0, radius, 0.0));
        let ring_start = |r: u32| 1 + (r - 1) * segments;
        // Top cap.
        for s in 0..segments {
            let a = ring_start(1) + s;
            let b = ring_start(1) + (s + 1) % segments;
            mesh.faces.push([0, b, a]);
        }
        // Body quads.
        for r in 1..rings - 1 {
            for s in 0..segments {
                let a = ring_start(r) + s;
                let b = ring_start(r) + (s + 1) % segments;
                let c = ring_start(r + 1) + s;
                let d = ring_start(r + 1) + (s + 1) % segments;
                mesh.faces.push([a, b, d]);
                mesh.faces.push([a, d, c]);
            }
        }
        // Bottom cap.
        let south = mesh.vertices.len() as u32 - 1;
        for s in 0..segments {
            let a = ring_start(rings - 1) + s;
            let b = ring_start(rings - 1) + (s + 1) % segments;
            mesh.faces.push([a, b, south]);
        }
        mesh.compute_normals();
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_sphere() -> TriMesh {
        TriMesh::uv_sphere(Vec3::ZERO, 1.0, 24, 48)
    }

    #[test]
    fn sphere_is_closed_manifold() {
        let m = unit_sphere();
        assert!(m.validate().is_ok());
        assert!(m.is_closed());
        assert_eq!(m.euler_characteristic(), 2);
    }

    #[test]
    fn sphere_area_close_to_analytic() {
        let m = unit_sphere();
        let area = m.surface_area();
        let analytic = 4.0 * std::f32::consts::PI;
        assert!((area - analytic).abs() / analytic < 0.02, "area {area} vs {analytic}");
    }

    #[test]
    fn raw_size_matches_layout() {
        let m = unit_sphere();
        assert_eq!(m.raw_size_bytes(), 16 + m.vertex_count() * 12 + m.face_count() * 12);
    }

    #[test]
    fn normals_point_outward_on_sphere() {
        let m = unit_sphere();
        for (v, n) in m.vertices.iter().zip(&m.normals) {
            assert!(v.normalized().dot(*n) > 0.9, "normal misaligned at {v:?}");
        }
    }

    #[test]
    fn validate_catches_bad_index() {
        let mut m = unit_sphere();
        m.faces.push([0, 1, 9_999_999]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_nan() {
        let mut m = unit_sphere();
        m.vertices[0].x = f32::NAN;
        assert!(m.validate().is_err());
    }

    #[test]
    fn transform_moves_bounds() {
        let mut m = unit_sphere();
        m.transform(&Mat4::translation(Vec3::new(10.0, 0.0, 0.0)));
        let b = m.bounds();
        assert!((b.center().x - 10.0).abs() < 1e-4);
    }

    #[test]
    fn append_reindexes() {
        let mut a = unit_sphere();
        let b = TriMesh::uv_sphere(Vec3::new(5.0, 0.0, 0.0), 1.0, 8, 12);
        let (va, fa) = (a.vertex_count(), a.face_count());
        a.append(&b);
        assert_eq!(a.vertex_count(), va + b.vertex_count());
        assert_eq!(a.face_count(), fa + b.face_count());
        assert!(a.validate().is_ok());
    }

    #[test]
    fn surface_samples_lie_on_sphere() {
        let m = unit_sphere();
        let mut rng = Pcg32::new(1);
        let (pts, nrm) = m.sample_surface(500, &mut rng);
        assert_eq!(pts.len(), 500);
        assert_eq!(nrm.len(), 500);
        for p in pts {
            let r = p.length();
            assert!((0.97..=1.01).contains(&r), "sample radius {r}");
        }
    }

    #[test]
    fn empty_mesh_behaves() {
        let m = TriMesh::new();
        assert_eq!(m.surface_area(), 0.0);
        assert!(!m.is_closed());
        let mut rng = Pcg32::new(2);
        let (pts, _) = m.sample_surface(10, &mut rng);
        assert!(pts.is_empty());
    }
}
