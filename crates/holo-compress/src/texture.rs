//! Block-truncation texture codec (DXT1/BTC family).
//!
//! §3.1 proposes delivering "the compressed 2D texture, given its high
//! compression ratio and thus relatively small data size" alongside
//! keypoint-reconstructed geometry. This codec is that channel: each 4x4
//! pixel block stores two RGB565 endpoint colors and sixteen 2-bit
//! interpolation indices — 8 bytes per block, a fixed 6x ratio versus
//! RGB888 (4 bits per pixel), decodable in constant time per block like
//! the ASTC/DXT codecs MR headsets use in hardware.

use holo_math::Vec3;
use holo_runtime::ser::{ByteReader, DecodeError};

/// A simple RGB8 image.
#[derive(Debug, Clone)]
pub struct Texture {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// RGB bytes, row-major, 3 bytes per pixel.
    pub data: Vec<u8>,
}

impl Texture {
    /// Allocate a black texture.
    pub fn new(width: u32, height: u32) -> Self {
        Self { width, height, data: vec![0; (width * height * 3) as usize] }
    }

    /// Raw (uncompressed) size in bytes.
    pub fn raw_size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Pixel accessor (clamped to edges).
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        let x = x.min(self.width.saturating_sub(1));
        let y = y.min(self.height.saturating_sub(1));
        let i = ((y * self.width + x) * 3) as usize;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Pixel setter; out-of-range coordinates are ignored.
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = ((y * self.width + x) * 3) as usize;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Peak signal-to-noise ratio against another texture of identical
    /// dimensions, in dB.
    pub fn psnr(&self, other: &Texture) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let mse: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len().max(1) as f64;
        if mse <= 1e-12 {
            return f64::INFINITY;
        }
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }

    /// Fill with a deterministic procedural pattern (skin + clothing bands
    /// + high-frequency detail), the stand-in for a captured human texture.
    pub fn synthetic_body_texture(width: u32, height: u32) -> Self {
        let mut t = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let u = x as f32 / width.max(1) as f32;
                let v = y as f32 / height.max(1) as f32;
                // Upper third: skin; rest: clothing with stripes + noise.
                let (base, detail) = if v < 0.33 {
                    (Vec3::new(0.85, 0.66, 0.55), ((u * 40.0).sin() * (v * 55.0).cos()) * 0.03)
                } else {
                    let stripe = if ((v * 24.0) as u32) % 2 == 0 { 0.12 } else { -0.05 };
                    (Vec3::new(0.25, 0.35, 0.60) + Vec3::splat(stripe), ((u * 90.0).sin() * (v * 70.0).sin()) * 0.06)
                };
                let c = base + Vec3::splat(detail);
                t.set(x, y, [
                    (c.x.clamp(0.0, 1.0) * 255.0) as u8,
                    (c.y.clamp(0.0, 1.0) * 255.0) as u8,
                    (c.z.clamp(0.0, 1.0) * 255.0) as u8,
                ]);
            }
        }
        t
    }
}

/// The block codec.
pub struct TextureCodec;

fn to565(rgb: [u8; 3]) -> u16 {
    ((rgb[0] as u16 >> 3) << 11) | ((rgb[1] as u16 >> 2) << 5) | (rgb[2] as u16 >> 3)
}

fn from565(c: u16) -> [u8; 3] {
    let r = ((c >> 11) & 0x1F) as u32;
    let g = ((c >> 5) & 0x3F) as u32;
    let b = (c & 0x1F) as u32;
    [((r * 255 + 15) / 31) as u8, ((g * 255 + 31) / 63) as u8, ((b * 255 + 15) / 31) as u8]
}

fn palette(c0: [u8; 3], c1: [u8; 3]) -> [[u8; 3]; 4] {
    let mix = |a: u8, b: u8, num: u32, den: u32| (((a as u32) * (den - num) + (b as u32) * num) / den) as u8;
    [
        c0,
        c1,
        [mix(c0[0], c1[0], 1, 3), mix(c0[1], c1[1], 1, 3), mix(c0[2], c1[2], 1, 3)],
        [mix(c0[0], c1[0], 2, 3), mix(c0[1], c1[1], 2, 3), mix(c0[2], c1[2], 2, 3)],
    ]
}

fn color_dist(a: [u8; 3], b: [u8; 3]) -> u32 {
    let d = |x: u8, y: u8| {
        let d = x as i32 - y as i32;
        (d * d) as u32
    };
    d(a[0], b[0]) + d(a[1], b[1]) + d(a[2], b[2])
}

impl TextureCodec {
    /// Compressed size for a texture of the given dimensions: 8 bytes per
    /// 4x4 block plus an 8-byte header.
    pub fn compressed_size(width: u32, height: u32) -> usize {
        let bw = width.div_ceil(4) as usize;
        let bh = height.div_ceil(4) as usize;
        8 + bw * bh * 8
    }

    /// Compress a texture (4 bpp fixed rate).
    pub fn compress(tex: &Texture) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::compressed_size(tex.width, tex.height));
        out.extend_from_slice(&tex.width.to_le_bytes());
        out.extend_from_slice(&tex.height.to_le_bytes());
        for by in 0..tex.height.div_ceil(4) {
            for bx in 0..tex.width.div_ceil(4) {
                // Gather the block (edge-clamped).
                let mut pix = [[0u8; 3]; 16];
                for i in 0..16 {
                    pix[i] = tex.get(bx * 4 + (i % 4) as u32, by * 4 + (i / 4) as u32);
                }
                // Endpoints: min/max along the principal luminance axis.
                let lum = |p: [u8; 3]| p[0] as u32 * 2 + p[1] as u32 * 5 + p[2] as u32;
                let (mut lo, mut hi) = (pix[0], pix[0]);
                for &p in &pix {
                    if lum(p) < lum(lo) {
                        lo = p;
                    }
                    if lum(p) > lum(hi) {
                        hi = p;
                    }
                }
                let (c0, c1) = (to565(hi), to565(lo));
                let pal = palette(from565(c0), from565(c1));
                let mut indices = 0u32;
                for (i, &p) in pix.iter().enumerate() {
                    let best = (0..4).min_by_key(|&k| color_dist(p, pal[k])).unwrap() as u32;
                    indices |= best << (i * 2);
                }
                out.extend_from_slice(&c0.to_le_bytes());
                out.extend_from_slice(&c1.to_le_bytes());
                out.extend_from_slice(&indices.to_le_bytes());
            }
        }
        out
    }

    /// Decompress.
    ///
    /// Hostile-input contract: the declared dimensions are capped and
    /// the exact stream length is validated *before* the output texture
    /// is allocated, so a short header can never trigger a large
    /// allocation or an out-of-bounds block read.
    pub fn decompress(data: &[u8]) -> Result<Texture, DecodeError> {
        let mut r = ByteReader::new(data);
        let width = r.u32_le()?;
        let height = r.u32_le()?;
        if width > 16384 || height > 16384 {
            return Err(DecodeError::LimitExceeded {
                what: "texture dimension",
                requested: width.max(height) as u64,
                limit: 16384,
            });
        }
        let expected = Self::compressed_size(width, height);
        if data.len() != expected {
            return Err(if data.len() < expected {
                DecodeError::Truncated { needed: expected, available: data.len() }
            } else {
                DecodeError::corrupt(
                    "texture",
                    format!("stream {} bytes, expected {expected}", data.len()),
                )
            });
        }
        let mut tex = Texture::new(width, height);
        for by in 0..height.div_ceil(4) {
            for bx in 0..width.div_ceil(4) {
                let c0 = r.u16_le()?;
                let c1 = r.u16_le()?;
                let indices = r.u32_le()?;
                let pal = palette(from565(c0), from565(c1));
                for i in 0..16 {
                    let k = ((indices >> (i * 2)) & 3) as usize;
                    tex.set(bx * 4 + (i % 4) as u32, by * 4 + (i / 4) as u32, pal[k]);
                }
            }
        }
        Ok(tex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_color_is_exact_modulo_565() {
        let mut tex = Texture::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                tex.set(x, y, [120, 200, 48]);
            }
        }
        let c = TextureCodec::compress(&tex);
        let d = TextureCodec::decompress(&c).unwrap();
        // 565 quantization loses at most 8 levels per channel.
        for y in 0..16 {
            for x in 0..16 {
                let p = d.get(x, y);
                assert!((p[0] as i32 - 120).abs() <= 8);
                assert!((p[1] as i32 - 200).abs() <= 4);
                assert!((p[2] as i32 - 48).abs() <= 8);
            }
        }
    }

    #[test]
    fn ratio_is_six_x() {
        let tex = Texture::synthetic_body_texture(256, 256);
        let c = TextureCodec::compress(&tex);
        let ratio = tex.raw_size_bytes() as f64 / c.len() as f64;
        assert!((5.5..6.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn synthetic_texture_quality_reasonable() {
        let tex = Texture::synthetic_body_texture(128, 128);
        let d = TextureCodec::decompress(&TextureCodec::compress(&tex)).unwrap();
        let psnr = tex.psnr(&d);
        assert!(psnr > 25.0, "PSNR {psnr:.1} dB too low");
    }

    #[test]
    fn non_multiple_of_four_dimensions() {
        let tex = Texture::synthetic_body_texture(37, 21);
        let c = TextureCodec::compress(&tex);
        let d = TextureCodec::decompress(&c).unwrap();
        assert_eq!((d.width, d.height), (37, 21));
        assert!(tex.psnr(&d) > 20.0);
    }

    #[test]
    fn corrupt_input_errors() {
        assert!(TextureCodec::decompress(&[1, 2, 3]).is_err());
        let tex = Texture::synthetic_body_texture(16, 16);
        let mut c = TextureCodec::compress(&tex);
        c.pop();
        assert!(TextureCodec::decompress(&c).is_err());
    }

    #[test]
    fn psnr_identity_infinite() {
        let tex = Texture::synthetic_body_texture(32, 32);
        assert!(tex.psnr(&tex).is_infinite());
    }

    #[test]
    fn one_pixel_texture() {
        let mut tex = Texture::new(1, 1);
        tex.set(0, 0, [255, 0, 128]);
        let d = TextureCodec::decompress(&TextureCodec::compress(&tex)).unwrap();
        let p = d.get(0, 0);
        assert!((p[0] as i32 - 255).abs() <= 8);
        assert!((p[2] as i32 - 128).abs() <= 8);
    }
}
