//! LZ77 + adaptive range coding — the crate's "LZMA".
//!
//! Structurally a sibling of LZMA: greedy LZ77 parsing over a hash-chain
//! match finder, literals coded through context-conditioned bit trees
//! (previous-byte high bits x byte-lane alignment, which captures the
//! strong per-lane statistics of `f32` streams like the pose payload),
//! match lengths and distances coded with bucketed slot trees, and a
//! repeat-distance shortcut. Used wherever the paper says "LZMA"
//! (Table 2's pose-stream compression).

use crate::primitives::{read_varint, write_varint};
use crate::rc::{decode_bucketed, encode_bucketed, BitModel, BitTree, RangeDecoder, RangeEncoder};
use holo_runtime::ser::DecodeError;

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 273;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

/// Absolute cap on decompressed output — no header can make the
/// decoder allocate more than this (64 MiB).
pub const MAX_DECODE_BYTES: usize = 64 << 20;

/// Cap on the expansion ratio a stream may declare. The adaptive coder
/// tops out around 310:1 on saturated models (one ~7-bit match symbol
/// per 273 output bytes), so 4096:1 admits every stream the encoder
/// can produce while bounding what a hostile header can demand to
/// `input_len * 4096`.
pub const MAX_DECODE_RATIO: usize = 4096;

/// The output cap for a given input size: what
/// [`lzma_decompress`] will refuse to exceed (the declared-cap
/// contract the fuzz harness enforces).
pub fn decode_cap(input_len: usize) -> usize {
    MAX_DECODE_BYTES.min(input_len.saturating_mul(MAX_DECODE_RATIO))
}

/// Number of literal contexts: 4 byte lanes x 8 previous-byte buckets.
const LIT_CONTEXTS: usize = 32;

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(506832829)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(2654435761))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(2246822519));
    (h >> (32 - HASH_BITS)) as usize
}

struct Models {
    is_match: [BitModel; 2],
    is_rep: BitModel,
    literal: Vec<BitTree>,
    len_slot: BitTree,
    dist_slot: BitTree,
}

impl Models {
    fn new() -> Self {
        Self {
            is_match: [BitModel::new(); 2],
            is_rep: BitModel::new(),
            literal: (0..LIT_CONTEXTS).map(|_| BitTree::new(8)).collect(),
            len_slot: BitTree::new(6),
            dist_slot: BitTree::new(6),
        }
    }

    fn lit_ctx(pos: usize, prev: u8) -> usize {
        ((pos & 3) << 3) | (prev >> 5) as usize
    }
}

/// Compress `data`. The output embeds the original length; an empty input
/// produces a tiny valid stream.
///
/// When tracing is on, records `compress.lzma.encode_ms` (wall clock —
/// the one nondeterministic metric family, excluded from the trace
/// byte-identity guarantee), `compress.lzma.ratio`, and byte counters.
pub fn lzma_compress(data: &[u8]) -> Vec<u8> {
    if !holo_trace::enabled() {
        return lzma_compress_inner(data);
    }
    let start = std::time::Instant::now();
    let out = lzma_compress_inner(data);
    holo_trace::histogram_wall("compress.lzma.encode_ms", start.elapsed().as_secs_f64() * 1e3);
    holo_trace::histogram("compress.lzma.ratio", out.len() as f64 / data.len().max(1) as f64);
    holo_trace::counter("compress.lzma.bytes_in", data.len() as u64);
    holo_trace::counter("compress.lzma.bytes_out", out.len() as u64);
    out
}

fn lzma_compress_inner(data: &[u8]) -> Vec<u8> {
    let mut header = Vec::new();
    write_varint(&mut header, data.len() as u32);
    if data.is_empty() {
        return header;
    }
    let mut enc = RangeEncoder::new();
    let mut models = Models::new();

    // Hash-chain match finder.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev_link = vec![usize::MAX; data.len()];

    let mut i = 0usize;
    let mut last_dist = 0usize;
    let mut after_match = 0usize; // is_match context
    while i < data.len() {
        // Find the best match at i.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            // Try the repeat distance first (cheap to encode).
            if last_dist > 0 && last_dist <= i {
                let l = match_len(data, i - last_dist, i);
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = last_dist;
                }
            }
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < MAX_CHAIN {
                let l = match_len(data, cand, i);
                // Prefer longer; on ties prefer the repeat distance.
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                }
                cand = prev_link[cand];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            enc.encode_bit(&mut models.is_match[after_match], 1);
            let is_rep = best_dist == last_dist && last_dist != 0;
            enc.encode_bit(&mut models.is_rep, is_rep as u8);
            encode_bucketed(&mut enc, &mut models.len_slot, (best_len - MIN_MATCH) as u32);
            if !is_rep {
                encode_bucketed(&mut enc, &mut models.dist_slot, (best_dist - 1) as u32);
            }
            last_dist = best_dist;
            // Insert all covered positions into the dictionary.
            let end = (i + best_len).min(data.len());
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev_link[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
            after_match = 1;
        } else {
            enc.encode_bit(&mut models.is_match[after_match], 0);
            let prev = if i > 0 { data[i - 1] } else { 0 };
            let ctx = Models::lit_ctx(i, prev);
            enc.encode_tree(&mut models.literal[ctx], data[i] as u32);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev_link[i] = head[h];
                head[h] = i;
            }
            i += 1;
            after_match = 0;
        }
    }
    header.extend_from_slice(&enc.finish());
    header
}

fn match_len(data: &[u8], from: usize, at: usize) -> usize {
    let max = (data.len() - at).min(MAX_MATCH);
    let mut l = 0;
    while l < max && data[from + l] == data[at + l] {
        l += 1;
    }
    l
}

/// Decompress a stream produced by [`lzma_compress`]. Records
/// `compress.lzma.decode_ms` (wall clock) when tracing is on.
///
/// Hostile-input contract: never panics, and never allocates beyond
/// [`decode_cap`] of the input length — a header-declared size past
/// the cap is a [`DecodeError::LimitExceeded`] *before* any
/// allocation, and a stream that runs out of coded bytes mid-decode is
/// a [`DecodeError::Truncated`] instead of an endless zero-fed loop.
pub fn lzma_decompress(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    if !holo_trace::enabled() {
        return lzma_decompress_inner(input);
    }
    let start = std::time::Instant::now();
    let out = lzma_decompress_inner(input);
    holo_trace::histogram_wall("compress.lzma.decode_ms", start.elapsed().as_secs_f64() * 1e3);
    if let Ok(bytes) = &out {
        holo_trace::counter("compress.lzma.bytes_decoded", bytes.len() as u64);
    }
    out
}

fn lzma_decompress_inner(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let (total, used) = read_varint(input).ok_or(DecodeError::Truncated {
        needed: 1,
        available: input.len(),
    })?;
    let total = total as usize;
    if total == 0 {
        return Ok(Vec::new());
    }
    let cap = decode_cap(input.len());
    if total > cap {
        return Err(DecodeError::LimitExceeded {
            what: "lzma output",
            requested: total as u64,
            limit: cap as u64,
        });
    }
    let coded = &input[used..];
    let mut dec = RangeDecoder::new(coded);
    let mut models = Models::new();
    // Capacity is a bounded hint; growth past it is paid for by real
    // coded bytes (the exhaustion check below stops zero-fed decoding).
    let mut out: Vec<u8> = Vec::with_capacity(total.min(64 << 10));
    let mut last_dist = 0usize;
    let mut after_match = 0usize;
    while out.len() < total {
        if dec.exhausted() {
            return Err(DecodeError::Truncated { needed: total, available: out.len() });
        }
        if dec.decode_bit(&mut models.is_match[after_match]) == 1 {
            let is_rep = dec.decode_bit(&mut models.is_rep) == 1;
            let len = decode_bucketed(&mut dec, &mut models.len_slot) as usize + MIN_MATCH;
            let dist = if is_rep {
                if last_dist == 0 {
                    return Err(DecodeError::corrupt("lzma", "rep distance before any match"));
                }
                last_dist
            } else {
                decode_bucketed(&mut dec, &mut models.dist_slot) as usize + 1
            };
            if dist > out.len() {
                return Err(DecodeError::corrupt(
                    "lzma",
                    format!("distance {dist} exceeds output {}", out.len()),
                ));
            }
            if len > total - out.len() {
                return Err(DecodeError::corrupt("lzma", "match overruns declared length"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
            last_dist = dist;
            after_match = 1;
        } else {
            let prev = out.last().copied().unwrap_or(0);
            let ctx = Models::lit_ctx(out.len(), prev);
            out.push(dec.decode_tree(&mut models.literal[ctx]) as u8);
            after_match = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;
    use holo_runtime::check::{any, collection};
    use holo_runtime::holo_prop;

    fn roundtrip(data: &[u8]) {
        let c = lzma_compress(data);
        let d = lzma_decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[1, 2]);
        roundtrip(&[7; 3]);
        roundtrip(b"ab");
    }

    #[test]
    fn tracing_records_codec_metrics() {
        let was = holo_trace::enabled();
        holo_trace::enable();
        holo_trace::reset();
        let data = vec![7u8; 4096];
        let c = lzma_compress(&data);
        assert_eq!(lzma_decompress(&c).unwrap(), data);
        let snap = holo_trace::snapshot_json().render();
        if !was {
            holo_trace::disable();
        }
        for key in [
            "compress.lzma.encode_ms",
            "compress.lzma.decode_ms",
            "compress.lzma.ratio",
            "compress.lzma.bytes_in",
            "compress.lzma.bytes_out",
        ] {
            assert!(snap.contains(key), "missing {key} in {snap}");
        }
    }

    #[test]
    fn repetitive_compresses_hard() {
        let data = vec![42u8; 100_000];
        let c = lzma_compress(&data);
        assert!(c.len() < 600, "constant stream coded to {} bytes", c.len());
        assert_eq!(lzma_decompress(&c).unwrap(), data);
    }

    #[test]
    fn text_like_data() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox jumps over the lazy dog. semantic holographic communication."
            .repeat(50);
        let c = lzma_compress(&data);
        assert!(c.len() < data.len() / 5, "text coded {} of {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn random_data_does_not_blow_up() {
        let mut rng = Pcg32::new(1);
        let data: Vec<u8> = (0..20_000).map(|_| rng.next_u32() as u8).collect();
        let c = lzma_compress(&data);
        // Random data is incompressible; overhead must stay small.
        assert!(c.len() < data.len() + data.len() / 16 + 64);
        roundtrip(&data);
    }

    #[test]
    fn float_stream_exploits_lane_structure() {
        // A synthetic pose-like stream: slowly varying floats.
        let mut rng = Pcg32::new(2);
        let mut vals = vec![0.0f32; 2000];
        let mut x = 0.3f32;
        for v in &mut vals {
            x += rng.normal() * 0.01;
            *v = x;
        }
        let bytes: Vec<u8> = vals.iter().flat_map(|f| f.to_le_bytes()).collect();
        let c = lzma_compress(&bytes);
        assert!(c.len() < bytes.len(), "float stream should compress: {} vs {}", c.len(), bytes.len());
        roundtrip(&bytes);
    }

    #[test]
    fn pose_payload_ratio_near_paper() {
        // The Table 2 workload: a real pose payload from the body crate.
        use holo_body::{MotionKind, MotionSynthesizer, PosePayload};
        let mut synth = MotionSynthesizer::new(42);
        let clip = synth.clip(MotionKind::Talking, 2.0, 30.0);
        let mut total_raw = 0usize;
        let mut total_comp = 0usize;
        for f in &clip.frames {
            let payload = PosePayload::new(f.clone(), vec![]);
            let bytes = payload.to_bytes();
            let c = lzma_compress(&bytes);
            assert_eq!(lzma_decompress(&c).unwrap(), bytes);
            total_raw += bytes.len();
            total_comp += c.len();
        }
        let ratio = total_raw as f64 / total_comp as f64;
        // Paper: 1.91 KB -> 1.23 KB, ratio ~1.55. Require meaningful
        // compression in the same regime.
        assert!(ratio > 1.2, "pose stream ratio {ratio:.2}");
    }

    #[test]
    fn corrupted_stream_errors_not_panics() {
        let data = b"hello world hello world hello world".repeat(20);
        let mut c = lzma_compress(&data);
        // Truncate hard.
        c.truncate(c.len() / 2);
        // Either an error or wrong output, but never a panic.
        let _ = lzma_decompress(&c);
        // Garbage input.
        let _ = lzma_decompress(&[0xFF, 0xFF, 0x03, 1, 2, 3]);
    }

    holo_prop! {
        #![cases(64)]

        fn prop_roundtrip(data in collection::vec(any::<u8>(), 0..4096)) {
            roundtrip(&data);
        }

        fn prop_roundtrip_structured(
            seed in any::<u64>(),
            n in 1usize..2000,
            period in 1usize..32,
        ) {
            // Periodic data with noise: exercises match finding heavily.
            let mut rng = Pcg32::new(seed);
            let pattern: Vec<u8> = (0..period).map(|_| rng.next_u32() as u8).collect();
            let data: Vec<u8> = (0..n)
                .map(|i| {
                    if rng.chance(0.05) {
                        rng.next_u32() as u8
                    } else {
                        pattern[i % period]
                    }
                })
                .collect();
            roundtrip(&data);
        }
    }
}
