//! Compression substrate for the SemHolo reproduction.
//!
//! Table 2 of the paper compresses the keypoint-semantics pose stream with
//! **LZMA** (1.91 KB → 1.23 KB per frame) and the traditional mesh stream
//! with **Draco** (397.7 KB → 42.1 KB per frame). Neither is available as
//! a sanctioned offline crate, so this crate implements the same algorithm
//! families from scratch:
//!
//! - [`rc`] — an adaptive binary range coder (the entropy backbone of both
//!   codecs), with adaptive bit models, bit trees, and direct bits.
//! - [`primitives`] — zigzag, varint, and delta transforms.
//! - [`lzma`] — an LZ77 codec with hash-chain match finding, order-1
//!   literal contexts, and rep-distance modeling: structurally an LZMA
//!   sibling, used everywhere the paper says "LZMA".
//! - [`meshcodec`] — a Draco-class triangle-mesh codec: connectivity by
//!   region-growing traversal with implicit vertex numbering, positions by
//!   quantization + parallelogram prediction, everything entropy-coded.
//! - [`texture`] — a DXT/BTC-style 4x4 block texture codec (4 bpp), the
//!   "compressed 2D texture" channel of §3.1.
//! - [`temporal`] — inter-frame mesh compression for fixed-topology
//!   streams (connectivity once, closed-loop position deltas after), the
//!   Draco-animation-class upgrade of the traditional baseline.
//!
//! All codecs are deterministic and round-trip tested (holo_prop!).

pub mod lzma;
pub mod temporal;
pub mod meshcodec;
pub mod primitives;
pub mod rc;
pub mod texture;

pub use lzma::{lzma_compress, lzma_decompress};
pub use meshcodec::{decode_mesh, encode_mesh, MeshCodecConfig};
pub use temporal::{TemporalMeshDecoder, TemporalMeshEncoder};
pub use texture::{Texture, TextureCodec};
