//! Temporal (inter-frame) mesh compression for fixed-topology streams.
//!
//! The traditional pipeline re-sends the whole mesh every frame — but a
//! parametric avatar mesh has *constant connectivity* (SMPL-X topology
//! never changes). A temporal codec ships connectivity once in a
//! keyframe and then, per frame, only quantized vertex-position deltas,
//! entropy-coded — the same idea as Draco's animation extension and the
//! skeleton-based prediction literature the paper cites ([54, 81]). This
//! is the strongest fair version of the "traditional" baseline and is
//! measured as an extra Table 2 row.
//!
//! Wire format per stream:
//! - keyframe: the full static-codec bitstream ([`crate::meshcodec`]).
//! - delta frame: per-vertex quantized position residuals against the
//!   *previous reconstructed* frame (closed loop, so errors never
//!   accumulate), zigzag + bucketed range coding.

use crate::meshcodec::{decode_mesh, encode_mesh_with_permutation, MeshCodecConfig};
use crate::primitives::{unzigzag, zigzag};
use crate::rc::{decode_bucketed, encode_bucketed, BitTree, RangeDecoder, RangeEncoder};
use holo_math::Vec3;
use holo_mesh::trimesh::TriMesh;
use holo_runtime::ser::{ByteReader, DecodeError};

const DELTA_MAGIC: u32 = 0x4D44_4C54; // "MDLT"
const KEY_MAGIC: u32 = 0x4D4B_4559; // "MKEY"

/// Encoder state: the previous frame as the receiver reconstructed it.
pub struct TemporalMeshEncoder {
    cfg: MeshCodecConfig,
    /// Quantization step for delta frames, meters.
    pub delta_step: f32,
    reference: Option<TriMesh>,
    /// Topology of the last keyframe *input* (decoder-side topology is
    /// permuted, so identity is checked against the original).
    key_faces: Vec<[u32; 3]>,
    /// `perm[k]` = input-vertex index behind decoded vertex `k`.
    perm: Vec<u32>,
    frames_since_key: u32,
    /// Force a keyframe every N frames (loss recovery); 0 = never.
    pub keyframe_interval: u32,
}

/// Decoder state.
pub struct TemporalMeshDecoder {
    reference: Option<TriMesh>,
}

impl TemporalMeshEncoder {
    /// Build an encoder. `delta_step` bounds the per-frame position error.
    pub fn new(cfg: MeshCodecConfig, delta_step: f32) -> Self {
        Self {
            cfg,
            delta_step: delta_step.max(1e-6),
            reference: None,
            key_faces: Vec::new(),
            perm: Vec::new(),
            frames_since_key: 0,
            keyframe_interval: 120,
        }
    }

    /// Encode one frame. Emits a keyframe when topology changes, at the
    /// keyframe interval, or on the first frame; otherwise a delta frame.
    pub fn encode(&mut self, mesh: &TriMesh) -> Vec<u8> {
        let need_key = self.reference.is_none()
            || self.key_faces != mesh.faces
            || (self.keyframe_interval > 0 && self.frames_since_key >= self.keyframe_interval);
        if need_key {
            self.frames_since_key = 0;
            let (body, perm) = encode_mesh_with_permutation(mesh, &self.cfg);
            // The receiver's reference is the *decoded* keyframe (the
            // static codec reorders vertices; `perm` maps back).
            self.reference = Some(decode_mesh(&body).expect("own keyframe must decode"));
            self.key_faces = mesh.faces.clone();
            self.perm = perm;
            let mut out = Vec::with_capacity(body.len() + 4);
            out.extend_from_slice(&KEY_MAGIC.to_le_bytes());
            out.extend_from_slice(&body);
            return out;
        }
        self.frames_since_key += 1;
        let reference = self.reference.as_mut().unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(&DELTA_MAGIC.to_le_bytes());
        out.extend_from_slice(&(reference.vertex_count() as u32).to_le_bytes());
        out.extend_from_slice(&self.delta_step.to_le_bytes());
        let mut enc = RangeEncoder::new();
        let mut trees = [BitTree::new(6), BitTree::new(6), BitTree::new(6)];
        let inv = 1.0 / self.delta_step;
        // Closed loop: the reference advances by the *quantized* deltas,
        // in the decoder's (permuted) vertex order.
        for (r, &src_idx) in reference.vertices.iter_mut().zip(&self.perm) {
            let v = &mesh.vertices[src_idx as usize];
            let d = *v - *r;
            let q = [
                (d.x * inv).round() as i32,
                (d.y * inv).round() as i32,
                (d.z * inv).round() as i32,
            ];
            for (k, tree) in trees.iter_mut().enumerate() {
                encode_bucketed(&mut enc, tree, zigzag(q[k]));
            }
            *r += Vec3::new(q[0] as f32, q[1] as f32, q[2] as f32) * self.delta_step;
        }
        out.extend_from_slice(&enc.finish());
        out
    }
}

impl Default for TemporalMeshDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl TemporalMeshDecoder {
    /// Fresh decoder (expects a keyframe first).
    pub fn new() -> Self {
        Self { reference: None }
    }

    /// Decode one frame.
    ///
    /// Hostile-input contract: typed errors on truncation, bad magic,
    /// and count/step mismatches; a delta frame whose coded bytes run
    /// dry mid-stream is rejected (and the reference rolled back)
    /// instead of silently applying zero-fed garbage deltas.
    pub fn decode(&mut self, data: &[u8]) -> Result<TriMesh, DecodeError> {
        let mut r = ByteReader::new(data);
        let magic = r.u32_le()?;
        match magic {
            KEY_MAGIC => {
                let mesh = decode_mesh(r.rest())?;
                self.reference = Some(mesh.clone());
                Ok(mesh)
            }
            DELTA_MAGIC => {
                let reference = self.reference.as_mut().ok_or_else(|| {
                    DecodeError::corrupt("temporal", "delta frame before any keyframe")
                })?;
                let nv = r.u32_le()? as usize;
                let step = r.f32_le()?;
                if nv != reference.vertex_count() {
                    return Err(DecodeError::corrupt(
                        "temporal",
                        format!("delta vertex count {nv} != reference {}", reference.vertex_count()),
                    ));
                }
                if !step.is_finite() || step <= 0.0 {
                    return Err(DecodeError::corrupt("temporal", "invalid delta step"));
                }
                let mut dec = RangeDecoder::new(r.rest());
                let mut trees = [BitTree::new(6), BitTree::new(6), BitTree::new(6)];
                // Closed loop: apply to a scratch copy so a mid-stream
                // truncation doesn't poison the reference.
                let mut verts = reference.vertices.clone();
                for (i, v) in verts.iter_mut().enumerate() {
                    if dec.exhausted() {
                        return Err(DecodeError::Truncated { needed: nv, available: i });
                    }
                    let mut q = [0i32; 3];
                    for (k, tree) in trees.iter_mut().enumerate() {
                        q[k] = unzigzag(decode_bucketed(&mut dec, tree));
                    }
                    *v += Vec3::new(q[0] as f32, q[1] as f32, q[2] as f32) * step;
                }
                reference.vertices = verts;
                let mut out = reference.clone();
                out.compute_normals();
                Ok(out)
            }
            other => Err(DecodeError::corrupt(
                "temporal",
                format!("unknown temporal frame magic {other:#x}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_body::{BodyModel, MotionKind, MotionSynthesizer};

    fn clip_meshes(frames: usize) -> Vec<TriMesh> {
        let model = BodyModel::standard();
        let mut synth = MotionSynthesizer::new(11);
        let clip = synth.clip(MotionKind::Talking, frames as f32 / 30.0, 30.0);
        clip.frames.iter().map(|p| model.pose_mesh(p)).collect()
    }

    #[test]
    fn stream_roundtrips_within_quantization_error() {
        let meshes = clip_meshes(6);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let mut dec = TemporalMeshDecoder::new();
        for mesh in &meshes {
            let bytes = enc.encode(mesh);
            let out = dec.decode(&bytes).unwrap();
            assert_eq!(out.face_count(), mesh.face_count());
            // Positions within quantization error (keyframe uses the
            // static codec's step; deltas use delta_step; both are
            // bounded by a few mm here). Vertex ORDER differs after the
            // keyframe re-ordering, so compare via nearest distances.
            let grid = holo_mesh::grid::PointGrid::auto(out.vertices.clone());
            let worst = mesh
                .vertices
                .iter()
                .map(|v| grid.nearest_distance(*v))
                .fold(0.0f32, f32::max);
            assert!(worst < 0.006, "worst vertex error {worst}");
        }
    }

    #[test]
    fn delta_frames_are_much_smaller_than_keyframes() {
        let meshes = clip_meshes(5);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let sizes: Vec<usize> = meshes.iter().map(|m| enc.encode(m).len()).collect();
        let key = sizes[0];
        let mean_delta = sizes[1..].iter().sum::<usize>() / (sizes.len() - 1);
        assert!(
            mean_delta * 2 < key,
            "delta {mean_delta} B should be far below keyframe {key} B"
        );
    }

    #[test]
    fn closed_loop_does_not_drift() {
        // 20 frames of motion; the final decoded frame must still match
        // the final input within quantization error (no accumulation).
        let meshes = clip_meshes(20);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let mut dec = TemporalMeshDecoder::new();
        let mut last = None;
        for mesh in &meshes {
            last = Some(dec.decode(&enc.encode(mesh)).unwrap());
        }
        let out = last.unwrap();
        let target = meshes.last().unwrap();
        let grid = holo_mesh::grid::PointGrid::auto(out.vertices.clone());
        let mean: f32 = target.vertices.iter().map(|v| grid.nearest_distance(*v)).sum::<f32>()
            / target.vertex_count() as f32;
        assert!(mean < 0.003, "drift after 20 frames: mean {mean}");
    }

    #[test]
    fn keyframe_interval_forces_refresh() {
        let meshes = clip_meshes(6);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        enc.keyframe_interval = 2;
        let kinds: Vec<u32> = meshes
            .iter()
            .map(|m| u32::from_le_bytes(enc.encode(m)[0..4].try_into().unwrap()))
            .collect();
        let keys = kinds.iter().filter(|&&k| k == KEY_MAGIC).count();
        assert!(keys >= 2, "expected periodic keyframes, got {keys}");
    }

    #[test]
    fn decoder_rejects_delta_without_keyframe() {
        let meshes = clip_meshes(2);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let _key = enc.encode(&meshes[0]);
        let delta = enc.encode(&meshes[1]);
        let mut fresh = TemporalMeshDecoder::new();
        assert!(fresh.decode(&delta).is_err());
        assert!(fresh.decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn topology_change_triggers_keyframe() {
        let meshes = clip_meshes(1);
        let mut enc = TemporalMeshEncoder::new(MeshCodecConfig::default(), 0.001);
        let first = enc.encode(&meshes[0]);
        assert_eq!(u32::from_le_bytes(first[0..4].try_into().unwrap()), KEY_MAGIC);
        // A different mesh entirely.
        let sphere = TriMesh::uv_sphere(holo_math::Vec3::ZERO, 1.0, 8, 12);
        let second = enc.encode(&sphere);
        assert_eq!(u32::from_le_bytes(second[0..4].try_into().unwrap()), KEY_MAGIC);
    }
}
