//! Adaptive binary range coder.
//!
//! The classic LZMA-style arithmetic coder: probabilities are 11-bit
//! adaptive counters, the encoder keeps a 32-bit range with a 64-bit low
//! accumulator and byte-wise carry propagation, the decoder mirrors it.
//! Everything else in this crate (the LZ codec, the mesh codec) is built
//! from three primitives: adaptive bits, bit trees, and direct bits.

/// Number of probability quantization bits (LZMA uses 11).
const PROB_BITS: u32 = 11;
/// Initial probability = 0.5.
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift (smaller adapts faster; LZMA uses 5).
const PROB_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability of a bit being 0.
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        Self(PROB_INIT)
    }
}

impl BitModel {
    /// Fresh model at probability 0.5.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn update(&mut self, bit: u8) {
        if bit == 0 {
            self.0 += (((1u32 << PROB_BITS) as u16) - self.0) >> PROB_SHIFT;
        } else {
            self.0 -= self.0 >> PROB_SHIFT;
        }
    }
}

/// A complete binary tree of bit models coding fixed-width symbols
/// MSB-first (LZMA's "bit tree").
#[derive(Debug, Clone)]
pub struct BitTree {
    bits: u32,
    models: Vec<BitModel>,
}

impl BitTree {
    /// A tree coding `bits`-wide symbols.
    pub fn new(bits: u32) -> Self {
        assert!(bits >= 1 && bits <= 16);
        Self { bits, models: vec![BitModel::new(); 1 << bits] }
    }

    /// Symbol width in bits.
    pub fn width(&self) -> u32 {
        self.bits
    }
}

/// Range encoder writing to an in-memory buffer.
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Start a new stream.
    pub fn new() -> Self {
        Self { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out: Vec::new() }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000u64 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode one bit with an adaptive model.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: u8) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode a fixed-width symbol through a bit tree, MSB first.
    pub fn encode_tree(&mut self, tree: &mut BitTree, symbol: u32) {
        debug_assert!(symbol < (1 << tree.bits));
        let mut ctx = 1usize;
        for i in (0..tree.bits).rev() {
            let bit = ((symbol >> i) & 1) as u8;
            let m = &mut tree.models[ctx];
            self.encode_bit_raw(m, bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    // encode_bit without the borrow gymnastics of indexing twice
    fn encode_bit_raw(&mut self, model: &mut BitModel, bit: u8) {
        self.encode_bit(model, bit);
    }

    /// Encode `bits` raw (uniform) bits, MSB first.
    pub fn encode_direct(&mut self, value: u32, bits: u32) {
        for i in (0..bits).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder reading from a byte slice.
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Open a stream produced by [`RangeEncoder::finish`].
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = Self { range: u32::MAX, code: 0, input, pos: 1 };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Whether the decoder has read past the end of its input. Past-end
    /// reads return zero bytes (the encoder's flush guarantees a valid
    /// stream never needs them), so on *truncated or hostile* input the
    /// decoder keeps producing arbitrary symbols forever — decode loops
    /// must check this flag and bail instead of trusting their
    /// header-declared counts.
    pub fn exhausted(&self) -> bool {
        self.pos > self.input.len()
    }

    /// Decode one bit with an adaptive model.
    pub fn decode_bit(&mut self, model: &mut BitModel) -> u8 {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decode a fixed-width symbol through a bit tree.
    pub fn decode_tree(&mut self, tree: &mut BitTree) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..tree.bits {
            let m = &mut tree.models[ctx];
            let bit = self.decode_bit_raw(m);
            ctx = (ctx << 1) | bit as usize;
        }
        ctx as u32 - (1 << tree.bits)
    }

    fn decode_bit_raw(&mut self, model: &mut BitModel) -> u8 {
        self.decode_bit(model)
    }

    /// Decode `bits` raw bits.
    pub fn decode_direct(&mut self, bits: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..bits {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        value
    }
}

/// Encode an unsigned value as a bucketed "slot + direct bits" code (the
/// LZMA distance scheme): small values cost few bits, large ones grow
/// logarithmically. `slot_tree` must be 6 bits wide (64 slots).
pub fn encode_bucketed(enc: &mut RangeEncoder, slot_tree: &mut BitTree, value: u32) {
    debug_assert_eq!(slot_tree.width(), 6);
    let slot = if value < 4 {
        value
    } else {
        let bits = 31 - value.leading_zeros();
        (bits << 1) | ((value >> (bits - 1)) & 1)
    };
    enc.encode_tree(slot_tree, slot);
    if slot >= 4 {
        let bits = (slot >> 1) - 1;
        let base = (2 | (slot & 1)) << bits;
        enc.encode_direct(value - base, bits);
    }
}

/// Inverse of [`encode_bucketed`].
pub fn decode_bucketed(dec: &mut RangeDecoder<'_>, slot_tree: &mut BitTree) -> u32 {
    let slot = dec.decode_tree(slot_tree);
    if slot < 4 {
        slot
    } else {
        let bits = (slot >> 1) - 1;
        let base = (2 | (slot & 1)) << bits;
        base + dec.decode_direct(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    #[test]
    fn single_model_roundtrip() {
        let mut rng = Pcg32::new(1);
        let bits: Vec<u8> = (0..10_000).map(|_| rng.chance(0.8) as u8).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut m = BitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    #[test]
    fn skewed_bits_compress_below_entropy_plus_overhead() {
        let mut rng = Pcg32::new(2);
        let n = 50_000;
        let p = 0.95f64;
        let bits: Vec<u8> = (0..n).map(|_| rng.chance(p as f32) as u8).collect();
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        for &b in &bits {
            enc.encode_bit(&mut m, 1 - b); // mostly zeros for the model
        }
        let data = enc.finish();
        // Shannon entropy of Bernoulli(0.05) is ~0.286 bits.
        let entropy_bytes = (n as f64) * 0.2864 / 8.0;
        assert!(
            (data.len() as f64) < entropy_bytes * 1.15 + 64.0,
            "coded {} bytes vs entropy {:.0}",
            data.len(),
            entropy_bytes
        );
    }

    #[test]
    fn tree_roundtrip() {
        let mut rng = Pcg32::new(3);
        let symbols: Vec<u32> = (0..5000).map(|_| rng.range_u32(256)).collect();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(8);
        for &s in &symbols {
            enc.encode_tree(&mut tree, s);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut tree = BitTree::new(8);
        for &s in &symbols {
            assert_eq!(dec.decode_tree(&mut tree), s);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let mut rng = Pcg32::new(4);
        let values: Vec<(u32, u32)> = (0..2000)
            .map(|_| {
                let bits = 1 + rng.range_u32(24);
                (rng.next_u32() & ((1u32 << bits) - 1), bits)
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &(v, b) in &values {
            enc.encode_direct(v, b);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        for &(v, b) in &values {
            assert_eq!(dec.decode_direct(b), v);
        }
    }

    #[test]
    fn mixed_stream_roundtrip() {
        // Interleave all three primitives to catch state interactions.
        let mut rng = Pcg32::new(5);
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        let mut tree = BitTree::new(5);
        let mut script = Vec::new();
        for _ in 0..3000 {
            match rng.range_u32(3) {
                0 => {
                    let b = rng.chance(0.3) as u8;
                    enc.encode_bit(&mut m, b);
                    script.push((0u8, b as u32));
                }
                1 => {
                    let s = rng.range_u32(32);
                    enc.encode_tree(&mut tree, s);
                    script.push((1, s));
                }
                _ => {
                    let v = rng.range_u32(1 << 13);
                    enc.encode_direct(v, 13);
                    script.push((2, v));
                }
            }
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut m = BitModel::new();
        let mut tree = BitTree::new(5);
        for &(kind, v) in &script {
            match kind {
                0 => assert_eq!(dec.decode_bit(&mut m) as u32, v),
                1 => assert_eq!(dec.decode_tree(&mut tree), v),
                _ => assert_eq!(dec.decode_direct(13), v),
            }
        }
    }

    #[test]
    fn bucketed_roundtrip_all_magnitudes() {
        let values: Vec<u32> = (0..20)
            .flat_map(|k| {
                let base = 1u32 << k;
                [base - 1, base, base + 1]
            })
            .chain([0, 1, 2, 3, u32::MAX / 2])
            .collect();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(6);
        for &v in &values {
            encode_bucketed(&mut enc, &mut tree, v);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut tree = BitTree::new(6);
        for &v in &values {
            assert_eq!(decode_bucketed(&mut dec, &mut tree), v);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        let data = enc.finish();
        assert!(data.len() <= 5);
        let _ = RangeDecoder::new(&data);
    }
}
