//! Draco-class triangle-mesh codec.
//!
//! Table 2 compresses the per-frame untextured mesh with Google Draco
//! (397.7 KB → 42.1 KB). This codec implements the same ingredient list:
//!
//! 1. **Position quantization** to a configurable bit depth over the mesh
//!    bounds (Draco's `qp`, default 14 bits).
//! 2. **Connectivity by region growing**: faces are attached one at a time
//!    across the active boundary, so most vertices need *no index at all*
//!    — they are numbered implicitly in discovery order (the core trick of
//!    Edgebreaker/Touma-Gotsman-style coders).
//! 3. **Parallelogram prediction**: a newly attached vertex is predicted
//!    from the known triangle across the shared edge; only the (small)
//!    residual is coded.
//! 4. **Adaptive range coding** of every symbol class.
//!
//! The codec is lossless in connectivity (up to vertex re-ordering;
//! unreferenced vertices are dropped) and lossy in positions by at most
//! half a quantization step per component.

use crate::primitives::{unzigzag, zigzag};
use crate::rc::{decode_bucketed, encode_bucketed, BitModel, BitTree, RangeDecoder, RangeEncoder};
use holo_math::Vec3;
use holo_mesh::trimesh::TriMesh;
use holo_runtime::ser::{ByteReader, DecodeError};
use std::collections::HashMap;

/// Codec parameters.
#[derive(Debug, Clone, Copy)]
pub struct MeshCodecConfig {
    /// Position quantization bits per component (Draco default: 14).
    pub position_bits: u32,
}

impl Default for MeshCodecConfig {
    fn default() -> Self {
        Self { position_bits: 14 }
    }
}

const MAGIC: u32 = 0x4D43_4431; // "MCD1"

struct Models {
    /// First op bit: 1 = skip (no face across this edge).
    skip: BitModel,
    /// Second op bit: 1 = new vertex, 0 = known vertex.
    is_new: BitModel,
    /// Seed-vertex "already discovered" bit.
    seed_known: BitModel,
    /// Residual magnitude trees per component (attach prediction).
    attach: [BitTree; 3],
    /// Delta trees per component (seed absolute coding).
    seed: [BitTree; 3],
    /// Known-vertex back-reference tree.
    backref: BitTree,
}

impl Models {
    fn new() -> Self {
        Self {
            skip: BitModel::new(),
            is_new: BitModel::new(),
            seed_known: BitModel::new(),
            attach: [BitTree::new(6), BitTree::new(6), BitTree::new(6)],
            seed: [BitTree::new(6), BitTree::new(6), BitTree::new(6)],
            backref: BitTree::new(6),
        }
    }
}

type QPos = [i32; 3];

fn quantize_positions(mesh: &TriMesh, bits: u32) -> (Vec<QPos>, Vec3, f32) {
    let bounds = mesh.bounds();
    let (origin, step) = if mesh.vertices.is_empty() {
        (Vec3::ZERO, 1.0)
    } else {
        let longest = bounds.longest_side().max(1e-9);
        (bounds.min, longest / ((1u64 << bits) - 1) as f32)
    };
    let q = mesh
        .vertices
        .iter()
        .map(|v| {
            let r = (*v - origin) / step;
            [r.x.round() as i32, r.y.round() as i32, r.z.round() as i32]
        })
        .collect();
    (q, origin, step)
}

/// Encode a mesh. Unreferenced vertices are not preserved.
pub fn encode_mesh(mesh: &TriMesh, cfg: &MeshCodecConfig) -> Vec<u8> {
    encode_mesh_with_permutation(mesh, cfg).0
}

/// Like [`encode_mesh`], additionally returning the vertex permutation:
/// `perm[k]` is the index in `mesh.vertices` of the vertex the decoder
/// will emit at position `k` (discovery order). Temporal coding needs it
/// to compute deltas against the receiver's reordered reference.
pub fn encode_mesh_with_permutation(mesh: &TriMesh, cfg: &MeshCodecConfig) -> (Vec<u8>, Vec<u32>) {
    if !holo_trace::enabled() {
        return encode_mesh_inner(mesh, cfg);
    }
    let start = std::time::Instant::now();
    let out = encode_mesh_inner(mesh, cfg);
    holo_trace::histogram_wall("compress.mesh.encode_ms", start.elapsed().as_secs_f64() * 1e3);
    // Raw baseline: 12 bytes/vertex position + 12 bytes/face of indices.
    let raw = mesh.vertices.len() * 12 + mesh.faces.len() * 12;
    holo_trace::histogram("compress.mesh.ratio", out.0.len() as f64 / raw.max(1) as f64);
    holo_trace::counter("compress.mesh.bytes_out", out.0.len() as u64);
    out
}

fn encode_mesh_inner(mesh: &TriMesh, cfg: &MeshCodecConfig) -> (Vec<u8>, Vec<u32>) {
    let bits = cfg.position_bits.clamp(4, 20);
    let (qpos, origin, step) = quantize_positions(mesh, bits);

    // Header (uncoded): magic, bits, face count, origin, step.
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(bits as u8);
    out.extend_from_slice(&(mesh.faces.len() as u32).to_le_bytes());
    for c in [origin.x, origin.y, origin.z, step] {
        out.extend_from_slice(&c.to_le_bytes());
    }

    let mut order: Vec<u32> = Vec::with_capacity(mesh.vertices.len());
    if mesh.faces.is_empty() {
        return (out, order);
    }

    // Directed edge -> (face index, third vertex). First writer wins;
    // duplicate directed edges (non-manifold) are reached via seeding.
    let mut edge_map: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
    for (fi, f) in mesh.faces.iter().enumerate() {
        for k in 0..3 {
            let a = f[k];
            let b = f[(k + 1) % 3];
            let c = f[(k + 2) % 3];
            edge_map.entry((a, b)).or_insert((fi as u32, c));
        }
    }

    let mut enc = RangeEncoder::new();
    let mut models = Models::new();
    let mut visited = vec![false; mesh.faces.len()];
    let mut disc: Vec<Option<u32>> = vec![None; mesh.vertices.len()];
    let mut next_disc = 0u32;
    let mut last_abs: QPos = [0, 0, 0];
    // Stack entries: (u, v, opp) — find the face containing directed edge
    // (u, v); `opp` supports parallelogram prediction.
    let mut stack: Vec<(u32, u32, u32)> = Vec::new();

    let encode_residual = |enc: &mut RangeEncoder, models: &mut [BitTree; 3], r: QPos| {
        for (k, tree) in models.iter_mut().enumerate() {
            encode_bucketed(enc, tree, zigzag(r[k]));
        }
    };

    for seed_face in 0..mesh.faces.len() {
        if visited[seed_face] {
            continue;
        }
        // Start a component: emit the seed triangle's vertices.
        visited[seed_face] = true;
        let f = mesh.faces[seed_face];
        for &v in &f {
            match disc[v as usize] {
                Some(d) => {
                    enc.encode_bit(&mut models.seed_known, 1);
                    encode_bucketed(&mut enc, &mut models.backref, next_disc - 1 - d);
                }
                None => {
                    enc.encode_bit(&mut models.seed_known, 0);
                    let q = qpos[v as usize];
                    let r = [q[0] - last_abs[0], q[1] - last_abs[1], q[2] - last_abs[2]];
                    encode_residual(&mut enc, &mut models.seed, r);
                    last_abs = q;
                    disc[v as usize] = Some(next_disc);
                    order.push(v);
                    next_disc += 1;
                }
            }
        }
        let (s0, s1, s2) = (f[0], f[1], f[2]);
        stack.push((s1, s0, s2));
        stack.push((s2, s1, s0));
        stack.push((s0, s2, s1));

        while let Some((u, v, opp)) = stack.pop() {
            let hit = edge_map.get(&(u, v)).copied();
            let (fi, c) = match hit {
                Some((fi, c)) if !visited[fi as usize] => (fi, c),
                _ => {
                    enc.encode_bit(&mut models.skip, 1);
                    continue;
                }
            };
            enc.encode_bit(&mut models.skip, 0);
            visited[fi as usize] = true;
            match disc[c as usize] {
                Some(d) => {
                    enc.encode_bit(&mut models.is_new, 0);
                    encode_bucketed(&mut enc, &mut models.backref, next_disc - 1 - d);
                }
                None => {
                    enc.encode_bit(&mut models.is_new, 1);
                    let (qu, qv, qo) =
                        (qpos[u as usize], qpos[v as usize], qpos[opp as usize]);
                    let pred = [qu[0] + qv[0] - qo[0], qu[1] + qv[1] - qo[1], qu[2] + qv[2] - qo[2]];
                    let q = qpos[c as usize];
                    let r = [q[0] - pred[0], q[1] - pred[1], q[2] - pred[2]];
                    encode_residual(&mut enc, &mut models.attach, r);
                    disc[c as usize] = Some(next_disc);
                    order.push(c);
                    next_disc += 1;
                }
            }
            stack.push((c, v, u));
            stack.push((u, c, v));
        }
    }

    out.extend_from_slice(&enc.finish());
    (out, order)
}

/// Decode a mesh produced by [`encode_mesh`]. Vertices come back in
/// discovery order; faces keep their original winding.
///
/// Hostile-input contract: never panics (all header parsing is
/// bounds-checked, residual arithmetic wraps instead of overflowing),
/// and never allocates beyond what the coded bytes actually pay for —
/// a truncated or zero-padded stream is caught by the range decoder's
/// exhaustion check instead of spinning to a 100M-face declared count.
pub fn decode_mesh(data: &[u8]) -> Result<TriMesh, DecodeError> {
    if !holo_trace::enabled() {
        return decode_mesh_inner(data);
    }
    let start = std::time::Instant::now();
    let out = decode_mesh_inner(data);
    holo_trace::histogram_wall("compress.mesh.decode_ms", start.elapsed().as_secs_f64() * 1e3);
    out
}

/// Most faces one coded byte can legitimately produce: a saturated
/// skip/is_new model pair costs ~0.011 bits per face, so ~715
/// faces/byte is the physical ceiling; 1024 adds margin without
/// admitting absurd declared counts.
const MAX_FACES_PER_BYTE: usize = 1024;

fn decode_mesh_inner(data: &[u8]) -> Result<TriMesh, DecodeError> {
    let mut r = ByteReader::new(data);
    r.expect_magic(MAGIC)?;
    let _bits = r.u8()?;
    let face_count = r.u32_le()? as usize;
    let fl = [r.f32_le()?, r.f32_le()?, r.f32_le()?, r.f32_le()?];
    let (origin, step) = (Vec3::new(fl[0], fl[1], fl[2]), fl[3]);
    if !step.is_finite() || step <= 0.0 {
        return Err(DecodeError::corrupt("mesh header", "invalid quantization step"));
    }

    let mut mesh = TriMesh::new();
    if face_count == 0 {
        return Ok(mesh);
    }
    // Guard against absurd declared counts on corrupted input: more
    // faces than the coded bytes could possibly encode.
    let face_cap = data.len().saturating_mul(MAX_FACES_PER_BYTE).min(100_000_000);
    if face_count > face_cap {
        return Err(DecodeError::LimitExceeded {
            what: "mesh faces",
            requested: face_count as u64,
            limit: face_cap as u64,
        });
    }

    let mut dec = RangeDecoder::new(r.rest());
    let mut models = Models::new();
    let mut qverts: Vec<QPos> = Vec::new();
    let mut last_abs: QPos = [0, 0, 0];
    let mut stack: Vec<(u32, u32, u32)> = Vec::new();

    let decode_residual = |dec: &mut RangeDecoder<'_>, trees: &mut [BitTree; 3]| -> QPos {
        let mut r = [0i32; 3];
        for (k, tree) in trees.iter_mut().enumerate() {
            r[k] = unzigzag(decode_bucketed(dec, tree));
        }
        r
    };

    while mesh.faces.len() < face_count {
        if dec.exhausted() {
            // A valid stream always carries enough coded bytes for its
            // declared face count; running dry means truncation (or a
            // zero-fed tail after corruption).
            return Err(DecodeError::Truncated { needed: face_count, available: mesh.faces.len() });
        }
        if stack.is_empty() {
            // Seed triangle.
            let mut ids = [0u32; 3];
            for slot in &mut ids {
                if dec.decode_bit(&mut models.seed_known) == 1 {
                    let back = decode_bucketed(&mut dec, &mut models.backref);
                    let n = qverts.len() as u32;
                    if back >= n {
                        return Err(DecodeError::corrupt("mesh", "seed backref out of range"));
                    }
                    *slot = n - 1 - back;
                } else {
                    let r = decode_residual(&mut dec, &mut models.seed);
                    // Wrapping: hostile residuals may not fit i32 sums;
                    // the reconstructed positions are garbage either
                    // way, but the decoder must not panic in debug.
                    let q = [
                        last_abs[0].wrapping_add(r[0]),
                        last_abs[1].wrapping_add(r[1]),
                        last_abs[2].wrapping_add(r[2]),
                    ];
                    last_abs = q;
                    *slot = qverts.len() as u32;
                    qverts.push(q);
                }
            }
            mesh.faces.push(ids);
            let (s0, s1, s2) = (ids[0], ids[1], ids[2]);
            stack.push((s1, s0, s2));
            stack.push((s2, s1, s0));
            stack.push((s0, s2, s1));
            continue;
        }
        let Some((u, v, opp)) = stack.pop() else { unreachable!("stack checked non-empty") };
        if dec.decode_bit(&mut models.skip) == 1 {
            continue;
        }
        let c = if dec.decode_bit(&mut models.is_new) == 1 {
            let (qu, qv, qo) = (qverts[u as usize], qverts[v as usize], qverts[opp as usize]);
            let r = decode_residual(&mut dec, &mut models.attach);
            let q = [
                qu[0].wrapping_add(qv[0]).wrapping_sub(qo[0]).wrapping_add(r[0]),
                qu[1].wrapping_add(qv[1]).wrapping_sub(qo[1]).wrapping_add(r[1]),
                qu[2].wrapping_add(qv[2]).wrapping_sub(qo[2]).wrapping_add(r[2]),
            ];
            let id = qverts.len() as u32;
            qverts.push(q);
            id
        } else {
            let back = decode_bucketed(&mut dec, &mut models.backref);
            let n = qverts.len() as u32;
            if back >= n {
                return Err(DecodeError::corrupt("mesh", "backref out of range"));
            }
            n - 1 - back
        };
        mesh.faces.push([u, v, c]);
        stack.push((c, v, u));
        stack.push((u, c, v));
    }

    mesh.vertices = qverts
        .into_iter()
        .map(|q| origin + Vec3::new(q[0] as f32, q[1] as f32, q[2] as f32) * step)
        .collect();
    mesh.compute_normals();
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;
    use holo_mesh::sdf::SdfSphere;
    use holo_mesh::sparse::sparse_extract;

    fn assert_roundtrip(mesh: &TriMesh, bits: u32) -> TriMesh {
        let cfg = MeshCodecConfig { position_bits: bits };
        let data = encode_mesh(mesh, &cfg);
        let decoded = decode_mesh(&data).expect("decode");
        assert_eq!(decoded.face_count(), mesh.face_count(), "face count");
        assert!(decoded.validate().is_ok());
        // Geometric fidelity: every original vertex has a decoded vertex
        // within half a quantization cell (per component -> sqrt(3)/2 of a
        // step in distance), and vice versa.
        let step = mesh.bounds().longest_side().max(1e-9) / ((1u64 << bits) - 1) as f32;
        let tol = step * 0.9; // sqrt(3)/2 plus float slack
        let grid = holo_mesh::grid::PointGrid::auto(decoded.vertices.clone());
        for v in &mesh.vertices {
            // Unreferenced original vertices are legitimately dropped.
            let referenced = mesh.faces.iter().flatten().any(|&i| mesh.vertices[i as usize] == *v);
            if !referenced {
                continue;
            }
            let d = grid.nearest_distance(*v);
            assert!(d <= tol, "original vertex {v:?} has no decoded twin (d={d}, step={step})");
        }
        let grid2 = holo_mesh::grid::PointGrid::auto(mesh.vertices.clone());
        for v in &decoded.vertices {
            let d = grid2.nearest_distance(*v);
            assert!(d <= tol, "decoded vertex {v:?} has no original twin (d={d})");
        }
        // Surface area agreement.
        let (a, b) = (mesh.surface_area(), decoded.surface_area());
        assert!((a - b).abs() / a.max(1e-9) < 0.05, "area {a} vs {b}");
        decoded
    }

    fn sphere_mesh() -> TriMesh {
        TriMesh::uv_sphere(Vec3::new(0.3, -0.2, 1.0), 0.9, 16, 24)
    }

    #[test]
    fn sphere_roundtrip() {
        assert_roundtrip(&sphere_mesh(), 14);
    }

    #[test]
    fn quantization_error_bounded() {
        let mesh = sphere_mesh();
        let cfg = MeshCodecConfig { position_bits: 12 };
        let data = encode_mesh(&mesh, &cfg);
        let decoded = decode_mesh(&data).unwrap();
        let step = mesh.bounds().longest_side() / ((1u64 << 12) - 1) as f32;
        // Every decoded vertex must be within one quantization cell of
        // some original vertex.
        for v in &decoded.vertices {
            let nearest = mesh.vertices.iter().map(|o| (*o - *v).length()).fold(f32::INFINITY, f32::min);
            assert!(nearest <= step * 1.8, "vertex error {nearest} vs step {step}");
        }
    }

    #[test]
    fn marching_cubes_mesh_roundtrip() {
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let mesh = sparse_extract(&s, 32, 0.0);
        assert_roundtrip(&mesh, 14);
    }

    #[test]
    fn compression_ratio_draco_class() {
        // The Table 2 scenario needs ~10x on smooth organic meshes.
        let s = SdfSphere { center: Vec3::ZERO, radius: 1.0 };
        let mesh = sparse_extract(&s, 64, 0.0);
        let raw = mesh.raw_size_bytes();
        let coded = encode_mesh(&mesh, &MeshCodecConfig::default()).len();
        let ratio = raw as f64 / coded as f64;
        assert!(ratio > 5.0, "ratio {ratio:.1} ({raw} -> {coded})");
    }

    #[test]
    fn empty_mesh() {
        let m = TriMesh::new();
        let data = encode_mesh(&m, &MeshCodecConfig::default());
        let d = decode_mesh(&data).unwrap();
        assert_eq!(d.face_count(), 0);
        assert_eq!(d.vertex_count(), 0);
    }

    #[test]
    fn single_triangle() {
        let mut m = TriMesh::new();
        m.vertices = vec![Vec3::ZERO, Vec3::X, Vec3::Y];
        m.faces = vec![[0, 1, 2]];
        let decoded = assert_roundtrip(&m, 14);
        assert_eq!(decoded.vertex_count(), 3);
    }

    #[test]
    fn disconnected_components() {
        let mut m = sphere_mesh();
        let other = TriMesh::uv_sphere(Vec3::new(5.0, 0.0, 0.0), 0.5, 8, 12);
        m.append(&other);
        assert_roundtrip(&m, 14);
    }

    #[test]
    fn open_surface_with_boundary() {
        // A grid patch: has boundary edges everywhere.
        let mut m = TriMesh::new();
        let n = 10u32;
        for y in 0..=n {
            for x in 0..=n {
                m.vertices.push(Vec3::new(x as f32 * 0.1, y as f32 * 0.1, (x as f32 * 0.37).sin() * 0.05));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * (n + 1) + x;
                m.faces.push([i, i + 1, i + n + 2]);
                m.faces.push([i, i + n + 2, i + n + 1]);
            }
        }
        assert_roundtrip(&m, 14);
    }

    #[test]
    fn nonmanifold_edge_survives() {
        // Three triangles sharing one edge.
        let mut m = TriMesh::new();
        m.vertices = vec![
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        m.faces = vec![[0, 1, 2], [0, 1, 3], [0, 1, 4]];
        let data = encode_mesh(&m, &MeshCodecConfig::default());
        let decoded = decode_mesh(&data).unwrap();
        assert_eq!(decoded.face_count(), 3);
    }

    #[test]
    fn unreferenced_vertices_dropped() {
        let mut m = TriMesh::new();
        m.vertices = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::splat(9.0)];
        m.faces = vec![[0, 1, 2]];
        let data = encode_mesh(&m, &MeshCodecConfig::default());
        let decoded = decode_mesh(&data).unwrap();
        assert_eq!(decoded.vertex_count(), 3);
    }

    #[test]
    fn corrupted_header_is_error() {
        assert!(decode_mesh(&[1, 2, 3]).is_err());
        let mesh = sphere_mesh();
        let mut data = encode_mesh(&mesh, &MeshCodecConfig::default());
        data[0] ^= 0xFF;
        assert!(decode_mesh(&data).is_err());
    }

    #[test]
    fn random_soup_roundtrips() {
        // Random triangle soup (worst case for prediction, still correct).
        let mut rng = Pcg32::new(7);
        let mut m = TriMesh::new();
        for _ in 0..200 {
            m.vertices.push(Vec3::new(
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
            ));
        }
        for _ in 0..300 {
            let a = rng.range_u32(200);
            let mut b = rng.range_u32(200);
            let mut c = rng.range_u32(200);
            if b == a {
                b = (b + 1) % 200;
            }
            if c == a || c == b {
                c = (c + 2) % 200;
            }
            m.faces.push([a, b, c]);
        }
        let data = encode_mesh(&m, &MeshCodecConfig::default());
        let decoded = decode_mesh(&data).unwrap();
        assert_eq!(decoded.face_count(), m.face_count());
    }
}
