//! Byte-level transform primitives: zigzag, varint, delta.
//!
//! These are the pre-transforms both codecs and several wire formats use:
//! delta-encode a slowly-varying stream, zigzag-map signed residuals to
//! unsigned, varint-pack the result.

/// Map a signed integer to unsigned with small magnitudes first
/// (0, -1, 1, -2, 2, ...).
#[inline]
pub fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Append `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)` or `None` on a
/// truncated or overlong input.
pub fn read_varint(data: &[u8]) -> Option<(u32, usize)> {
    let mut v = 0u64;
    for (i, &byte) in data.iter().enumerate().take(5) {
        v |= ((byte & 0x7F) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            if v > u32::MAX as u64 {
                return None;
            }
            return Some((v as u32, i + 1));
        }
    }
    None
}

/// In-place forward delta: `out[i] = in[i] - in[i-1]` (first element kept).
pub fn delta_encode(values: &mut [i32]) {
    for i in (1..values.len()).rev() {
        values[i] = values[i].wrapping_sub(values[i - 1]);
    }
}

/// Inverse of [`delta_encode`].
pub fn delta_decode(values: &mut [i32]) {
    for i in 1..values.len() {
        values[i] = values[i].wrapping_add(values[i - 1]);
    }
}

/// Quantize a float to a signed grid with the given step.
#[inline]
pub fn quantize(v: f32, step: f32) -> i32 {
    (v / step).round() as i32
}

/// Inverse of [`quantize`].
#[inline]
pub fn dequantize(q: i32, step: f32) -> f32 {
    q as f32 * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for v in [-1000, -2, -1, 0, 1, 2, 1000, i32::MIN, i32::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_roundtrip() {
        let mut rng = Pcg32::new(1);
        let mut buf = Vec::new();
        let values: Vec<u32> = (0..1000)
            .map(|_| rng.next_u32() >> rng.range_u32(32))
            .chain([0, 1, 127, 128, 16383, 16384, u32::MAX])
            .collect();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, used) = read_varint(&buf[pos..]).unwrap();
            assert_eq!(got, v);
            pos += used;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u32::MAX);
        assert!(read_varint(&buf[..buf.len() - 1]).is_none());
        assert!(read_varint(&[]).is_none());
    }

    #[test]
    fn delta_roundtrip() {
        let mut rng = Pcg32::new(2);
        let original: Vec<i32> = (0..500).map(|_| rng.next_u32() as i32).collect();
        let mut work = original.clone();
        delta_encode(&mut work);
        delta_decode(&mut work);
        assert_eq!(work, original);
    }

    #[test]
    fn delta_shrinks_smooth_streams() {
        let smooth: Vec<i32> = (0..1000).map(|i| 10_000 + i * 3).collect();
        let mut d = smooth.clone();
        delta_encode(&mut d);
        assert!(d[1..].iter().all(|&x| x == 3));
    }

    #[test]
    fn quantize_error_bounded() {
        let mut rng = Pcg32::new(3);
        let step = 0.01f32;
        for _ in 0..1000 {
            let v = rng.range_f32(-100.0, 100.0);
            let back = dequantize(quantize(v, step), step);
            assert!((v - back).abs() <= step * 0.5 + 1e-4);
        }
    }
}
