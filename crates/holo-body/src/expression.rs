//! Facial expression basis.
//!
//! Fig. 3 of the paper observes that X-Avatar's *learned* appearance model
//! reproduces coarse expressions (an open mouth) but misses fine ones (the
//! pout). We model the expression space explicitly to make that loss
//! measurable: ten components, each a localized surface bump on the face,
//! split into **coarse** components (large spatial support, low frequency)
//! and **fine** components (small support, high frequency). The "learned"
//! model is a low-pass reconstruction that keeps only the coarse
//! components — exactly the failure mode the paper reports.

use crate::params::EXPRESSION_DIM;
use holo_math::{Quat, Vec3};

/// One expression blendshape: a smooth radial bump applied to the face
/// surface, positioned relative to the head joint frame.
#[derive(Debug, Clone)]
pub struct ExpressionComponent {
    /// Human-readable name ("jaw_open", "pout", ...).
    pub name: &'static str,
    /// Coarse components survive the learned model; fine ones do not.
    pub coarse: bool,
    /// Bump center in the head joint's local frame (meters).
    pub local_center: Vec3,
    /// Spatial support radius (meters). Coarse = wide, fine = narrow.
    pub radius: f32,
    /// Outward surface displacement per unit coefficient (meters).
    pub amplitude: f32,
}

/// The full expression basis.
#[derive(Debug, Clone)]
pub struct ExpressionBasis {
    /// Exactly [`EXPRESSION_DIM`] components.
    pub components: Vec<ExpressionComponent>,
}

impl ExpressionBasis {
    /// The standard 10-component basis: 3 coarse + 7 fine.
    pub fn standard() -> Self {
        let c = |name, coarse, center: (f32, f32, f32), radius, amplitude| ExpressionComponent {
            name,
            coarse,
            local_center: Vec3::new(center.0, center.1, center.2),
            radius,
            amplitude,
        };
        Self {
            components: vec![
                // Coarse: big, low-frequency facial motions.
                c("jaw_open", true, (0.0, -0.045, 0.075), 0.040, 0.015),
                c("mouth_wide", true, (0.0, -0.035, 0.080), 0.045, 0.010),
                c("brow_raise", true, (0.0, 0.055, 0.080), 0.045, 0.008),
                // Fine: small, high-frequency details.
                c("pout", false, (0.0, -0.038, 0.092), 0.014, 0.008),
                c("smirk_left", false, (0.024, -0.036, 0.080), 0.012, 0.006),
                c("smirk_right", false, (-0.024, -0.036, 0.080), 0.012, 0.006),
                c("nose_wrinkle", false, (0.0, 0.005, 0.090), 0.012, 0.004),
                c("squint_left", false, (0.030, 0.033, 0.078), 0.012, 0.005),
                c("squint_right", false, (-0.030, 0.033, 0.078), 0.012, 0.005),
                c("dimple", false, (0.034, -0.042, 0.070), 0.010, 0.005),
            ],
        }
    }

    /// Number of coarse components.
    pub fn coarse_count(&self) -> usize {
        self.components.iter().filter(|c| c.coarse).count()
    }

    /// World-space bumps `(center, radius, displacement)` for a coefficient
    /// vector, given the head joint's world position and orientation.
    pub fn bumps(
        &self,
        coefficients: &[f32; EXPRESSION_DIM],
        head_position: Vec3,
        head_rotation: Quat,
    ) -> Vec<(Vec3, f32, f32)> {
        self.components
            .iter()
            .zip(coefficients)
            .filter(|(_, &w)| w.abs() > 1e-4)
            .map(|(comp, &w)| {
                let center = head_position + head_rotation.rotate(comp.local_center);
                (center, comp.radius, comp.amplitude * w)
            })
            .collect()
    }

    /// Simulate the learned appearance model of Fig. 3: coarse components
    /// pass through, fine components are lost (zeroed).
    pub fn learned_reconstruction(&self, coefficients: &[f32; EXPRESSION_DIM]) -> [f32; EXPRESSION_DIM] {
        let mut out = [0.0; EXPRESSION_DIM];
        for (i, comp) in self.components.iter().enumerate() {
            if comp.coarse {
                out[i] = coefficients[i];
            }
        }
        out
    }

    /// Surface-displacement error between two coefficient vectors:
    /// the RMS of per-component displacement differences weighted by the
    /// spatial support area of each bump. This approximates the visual
    /// error a viewer perceives on the face.
    pub fn displacement_error(&self, a: &[f32; EXPRESSION_DIM], b: &[f32; EXPRESSION_DIM]) -> f32 {
        let mut sum = 0.0;
        let mut weight = 0.0;
        for (i, comp) in self.components.iter().enumerate() {
            let area = comp.radius * comp.radius;
            let d = (a[i] - b[i]) * comp.amplitude;
            sum += d * d * area;
            weight += area;
        }
        (sum / weight.max(1e-12)).sqrt()
    }

    /// Per-component absolute reconstruction error.
    pub fn component_errors(&self, truth: &[f32; EXPRESSION_DIM], recon: &[f32; EXPRESSION_DIM]) -> Vec<(&'static str, f32)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, (truth[i] - recon[i]).abs() * c.amplitude))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_has_expression_dim_components() {
        let b = ExpressionBasis::standard();
        assert_eq!(b.components.len(), EXPRESSION_DIM);
        assert_eq!(b.coarse_count(), 3);
    }

    #[test]
    fn learned_model_keeps_coarse_loses_fine() {
        let b = ExpressionBasis::standard();
        // Open mouth (coarse) + pout (fine), the exact Fig. 3 scenario.
        let mut coeffs = [0.0; EXPRESSION_DIM];
        coeffs[0] = 1.0; // jaw_open
        coeffs[3] = 1.0; // pout
        let learned = b.learned_reconstruction(&coeffs);
        assert_eq!(learned[0], 1.0, "open mouth must survive");
        assert_eq!(learned[3], 0.0, "pout must be lost");
        let errors = b.component_errors(&coeffs, &learned);
        let pout_err = errors.iter().find(|(n, _)| *n == "pout").unwrap().1;
        let jaw_err = errors.iter().find(|(n, _)| *n == "jaw_open").unwrap().1;
        assert!(pout_err > 0.0);
        assert_eq!(jaw_err, 0.0);
    }

    #[test]
    fn displacement_error_zero_for_identical() {
        let b = ExpressionBasis::standard();
        let coeffs = [0.5; EXPRESSION_DIM];
        assert_eq!(b.displacement_error(&coeffs, &coeffs), 0.0);
        let zero = [0.0; EXPRESSION_DIM];
        assert!(b.displacement_error(&coeffs, &zero) > 0.0);
    }

    #[test]
    fn bumps_follow_head_frame() {
        let b = ExpressionBasis::standard();
        let mut coeffs = [0.0; EXPRESSION_DIM];
        coeffs[0] = 1.0;
        let head = Vec3::new(0.0, 1.6, 0.0);
        let bumps = b.bumps(&coeffs, head, Quat::IDENTITY);
        assert_eq!(bumps.len(), 1);
        // Jaw bump sits in front of and below the head joint.
        assert!(bumps[0].0.z > head.z);
        assert!(bumps[0].0.y < head.y);
        // Rotating the head 180 degrees about y flips the bump behind.
        let turned = b.bumps(&coeffs, head, Quat::from_axis_angle(Vec3::Y, std::f32::consts::PI));
        assert!(turned[0].0.z < head.z);
    }

    #[test]
    fn zero_coefficients_produce_no_bumps() {
        let b = ExpressionBasis::standard();
        assert!(b.bumps(&[0.0; EXPRESSION_DIM], Vec3::ZERO, Quat::IDENTITY).is_empty());
    }

    #[test]
    fn fine_components_have_smaller_support() {
        let b = ExpressionBasis::standard();
        let max_fine = b.components.iter().filter(|c| !c.coarse).map(|c| c.radius).fold(0.0f32, f32::max);
        let min_coarse = b.components.iter().filter(|c| c.coarse).map(|c| c.radius).fold(f32::INFINITY, f32::min);
        assert!(max_fine < min_coarse, "fine bumps must be spatially smaller than coarse ones");
    }
}
