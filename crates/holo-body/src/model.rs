//! The fixed-topology skinned body mesh — the SMPL-X mesh substitute.
//!
//! SMPL-X decodes parameters into a 10,475-vertex / 20,908-face template
//! mesh. [`BodyModel`] reproduces that: a template extracted once from the
//! neutral T-pose SDF at a resolution calibrated to land in the same size
//! class, with per-vertex linear-blend-skinning weights derived from bone
//! proximity. Posing is pure LBS, so mesh topology (and therefore the
//! Table 2 wire size) is constant across frames, exactly like SMPL-X.

use crate::params::SmplxParams;
use crate::skeleton::{Joint, Skeleton, JOINT_COUNT};
use crate::surface::{body_bones, BodySdf, SurfaceDetail};
use holo_math::Vec3;
use holo_mesh::sdf::{Sdf, SdfRoundCone};
use holo_mesh::sparse::sparse_extract;
use holo_mesh::trimesh::TriMesh;
use std::sync::{Arc, OnceLock};

/// Extraction resolution for the template; calibrated so the template
/// lands in SMPL-X's size class (~10k vertices, ~21k faces).
const TEMPLATE_RESOLUTION: u32 = 64;
/// Number of joints influencing each vertex.
const INFLUENCES: usize = 4;

/// A parametric body mesh: fixed-topology template + skinning weights.
#[derive(Debug, Clone)]
pub struct BodyModel {
    /// The neutral skeleton the template was built on.
    pub skeleton: Skeleton,
    /// T-pose template mesh.
    pub template: TriMesh,
    /// Per-vertex joint influences: `(joint index, weight)`, weights sum
    /// to 1.
    pub weights: Vec<[(u16, f32); INFLUENCES]>,
}

static STANDARD: OnceLock<Arc<BodyModel>> = OnceLock::new();

impl BodyModel {
    /// The shared standard model (built once per process; extraction takes
    /// on the order of a second).
    pub fn standard() -> Arc<BodyModel> {
        STANDARD.get_or_init(|| Arc::new(Self::build(TEMPLATE_RESOLUTION))).clone()
    }

    /// Build a model at an explicit template resolution.
    pub fn build(resolution: u32) -> Self {
        let skeleton = Skeleton::neutral();
        let params = SmplxParams::default();
        let sdf = BodySdf::from_pose(&skeleton, &params, SurfaceDetail::bare());
        let template = sparse_extract(&sdf, resolution, 0.03);
        let posed = skeleton.forward_kinematics(&params);
        let bones = body_bones(&posed, 1.0);

        // Per-vertex influences: inverse-square distance to the nearest
        // bones, grouped by driver joint.
        let mut weights = Vec::with_capacity(template.vertices.len());
        for &v in &template.vertices {
            // Distance to the closest bone of each driver joint.
            let mut per_joint = [f32::INFINITY; JOINT_COUNT];
            for bone in &bones {
                let cone = SdfRoundCone { a: bone.a, b: bone.b, ra: bone.ra, rb: bone.rb };
                let d = cone.distance(v).max(0.0) + 1e-3;
                let j = bone.driver.index();
                if d < per_joint[j] {
                    per_joint[j] = d;
                }
            }
            // Top-`INFLUENCES` joints by proximity.
            let mut order: Vec<usize> = (0..JOINT_COUNT).filter(|&j| per_joint[j].is_finite()).collect();
            order.sort_by(|&a, &b| per_joint[a].partial_cmp(&per_joint[b]).unwrap());
            let mut infl = [(0u16, 0f32); INFLUENCES];
            let mut total = 0.0;
            for (slot, &j) in order.iter().take(INFLUENCES).enumerate() {
                let w = 1.0 / (per_joint[j] * per_joint[j]);
                infl[slot] = (j as u16, w);
                total += w;
            }
            for slot in &mut infl {
                slot.1 /= total.max(1e-12);
            }
            weights.push(infl);
        }
        Self { skeleton, template, weights }
    }

    /// Vertex count of the fixed template.
    pub fn vertex_count(&self) -> usize {
        self.template.vertex_count()
    }

    /// Face count of the fixed template.
    pub fn face_count(&self) -> usize {
        self.template.face_count()
    }

    /// Pose the template with linear blend skinning. Topology (faces) is
    /// shared with the template; positions and normals are fresh.
    pub fn pose_mesh(&self, params: &SmplxParams) -> TriMesh {
        let skeleton = Skeleton::from_betas(&params.betas);
        let posed = skeleton.forward_kinematics(params);
        // Skinning matrices map *neutral* rest space into the posed,
        // shaped space (shape changes ride along via the joint
        // transforms).
        let rest = self.skeleton.rest_transforms();
        let mats: Vec<holo_math::Mat4> =
            (0..JOINT_COUNT).map(|i| posed.world[i] * rest[i].rigid_inverse()).collect();
        let mut out = TriMesh {
            vertices: Vec::with_capacity(self.template.vertices.len()),
            faces: self.template.faces.clone(),
            normals: Vec::new(),
            colors: self.template.colors.clone(),
        };
        for (v, infl) in self.template.vertices.iter().zip(&self.weights) {
            let mut p = Vec3::ZERO;
            for &(j, w) in infl {
                if w > 0.0 {
                    p += mats[j as usize].transform_point(*v) * w;
                }
            }
            out.vertices.push(p);
        }
        out.compute_normals();
        out
    }

    /// World positions of all joints under `params` (convenience).
    pub fn joint_positions(&self, params: &SmplxParams) -> [Vec3; JOINT_COUNT] {
        Skeleton::from_betas(&params.betas).forward_kinematics(params).positions()
    }
}

/// Joints commonly used to sanity-check skinning in tests.
pub fn limb_probe_joints() -> [Joint; 4] {
    [Joint::LeftWrist, Joint::RightWrist, Joint::LeftAnkle, Joint::RightAnkle]
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Quat;

    fn model() -> Arc<BodyModel> {
        BodyModel::standard()
    }

    #[test]
    fn template_in_smplx_size_class() {
        let m = model();
        let v = m.vertex_count();
        let f = m.face_count();
        // SMPL-X: 10,475 vertices / 20,908 faces. Same order of magnitude
        // required; exact equality is not meaningful for a different
        // tessellation.
        assert!((6_000..16_000).contains(&v), "vertex count {v}");
        assert!((12_000..32_000).contains(&f), "face count {f}");
        assert!(m.template.validate().is_ok());
    }

    #[test]
    fn weights_normalized() {
        let m = model();
        for infl in &m.weights {
            let sum: f32 = infl.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-4, "weight sum {sum}");
            for &(j, w) in infl {
                assert!((j as usize) < JOINT_COUNT);
                assert!((0.0..=1.0 + 1e-4).contains(&w));
            }
        }
    }

    #[test]
    fn identity_pose_reproduces_template() {
        let m = model();
        let posed = m.pose_mesh(&SmplxParams::default());
        let mut max_dev = 0.0f32;
        for (a, b) in posed.vertices.iter().zip(&m.template.vertices) {
            max_dev = max_dev.max((*a - *b).length());
        }
        assert!(max_dev < 1e-4, "identity pose deviation {max_dev}");
    }

    #[test]
    fn posed_mesh_keeps_topology_and_size() {
        let m = model();
        let mut rng = holo_math::Pcg32::new(4);
        let params = SmplxParams::random_plausible(&mut rng);
        let posed = m.pose_mesh(&params);
        assert_eq!(posed.face_count(), m.face_count());
        assert_eq!(posed.vertex_count(), m.vertex_count());
        assert_eq!(posed.raw_size_bytes(), m.template.raw_size_bytes());
        assert!(posed.validate().is_ok());
    }

    #[test]
    fn elbow_bend_moves_forearm_vertices() {
        let m = model();
        let mut params = SmplxParams::default();
        params.joint_rotations[Joint::LeftElbow.index()] = Quat::from_axis_angle(Vec3::Y, 1.2);
        let posed = m.pose_mesh(&params);
        let rest_wrist = m.skeleton.rest_positions()[Joint::LeftWrist.index()];
        // Count vertices near the rest wrist before/after: they should move.
        let near_before = m.template.vertices.iter().filter(|v| v.distance(rest_wrist) < 0.08).count();
        let near_after = posed.vertices.iter().filter(|v| v.distance(rest_wrist) < 0.08).count();
        assert!(near_before > 0);
        assert!(
            (near_after as f32) < near_before as f32 * 0.5,
            "forearm vertices did not move: {near_before} -> {near_after}"
        );
    }

    #[test]
    fn torso_stable_under_arm_motion() {
        let m = model();
        let mut params = SmplxParams::default();
        params.joint_rotations[Joint::LeftShoulder.index()] = Quat::from_axis_angle(Vec3::Z, -1.0);
        let posed = m.pose_mesh(&params);
        // A vertex near the pelvis should barely move.
        let pelvis = m.skeleton.rest_positions()[Joint::Pelvis.index()];
        let (idx, _) = m
            .template
            .vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.distance(pelvis)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let moved = posed.vertices[idx].distance(m.template.vertices[idx]);
        assert!(moved < 0.02, "pelvis vertex moved {moved}");
    }
}
