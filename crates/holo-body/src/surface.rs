//! The posed body as an analytic signed distance field.
//!
//! This is the X-Avatar substitute: where the paper's proof-of-concept
//! decodes geometry from a pose-conditioned neural implicit function, we
//! build an analytic implicit function from the posed skeleton — rounded
//! cones for limbs, capsules for fingers and spine, ellipsoids for head,
//! torso and hips — blended with a smooth union. Ground-truth captures add
//! high-frequency cloth displacement (folds) and expression bumps, the
//! detail that keypoints cannot encode and whose loss Fig. 2 and Fig. 3
//! visualize.

use crate::expression::ExpressionBasis;
use crate::params::SmplxParams;
use crate::skeleton::{Joint, PosedSkeleton, Skeleton};
use holo_math::{Aabb, Vec3};
use holo_mesh::sdf::{smooth_min, GriddedUnion, Sdf, SdfCapsule, SdfEllipsoid, SdfRoundCone, SdfSphere};

/// What surface detail to include when building a [`BodySdf`].
#[derive(Debug, Clone, Copy)]
pub struct SurfaceDetail {
    /// High-frequency cloth-fold displacement over the clothed region.
    pub cloth: bool,
    /// Cloth displacement amplitude, meters.
    pub cloth_amplitude: f32,
    /// Cloth displacement spatial frequency, cycles per meter.
    pub cloth_frequency: f32,
    /// Apply expression bumps on the face.
    pub expression: bool,
}

impl SurfaceDetail {
    /// Full ground-truth detail (what the RGB-D rig captures).
    pub fn full() -> Self {
        Self { cloth: true, cloth_amplitude: 0.008, cloth_frequency: 14.0, expression: true }
    }

    /// Bare geometry, as reconstructable from keypoints alone: no cloth
    /// folds (keypoints carry no texture/detail) — the "non-clothed body
    /// structure" of §3.1.
    pub fn bare() -> Self {
        Self { cloth: false, cloth_amplitude: 0.0, cloth_frequency: 0.0, expression: true }
    }
}

/// Per-bone capsule/cone description used both for the SDF and for the
/// skinning-weight computation in [`crate::model::BodyModel`].
#[derive(Debug, Clone, Copy)]
pub struct Bone {
    /// Joint whose transform drives this bone's surface.
    pub driver: Joint,
    /// Segment endpoints (world space, posed).
    pub a: Vec3,
    pub b: Vec3,
    /// Radii at the two endpoints.
    pub ra: f32,
    pub rb: f32,
}

/// Build the bone list for a posed skeleton. `girth` scales all radii
/// (driven by shape beta 4).
pub fn body_bones(posed: &PosedSkeleton, girth: f32) -> Vec<Bone> {
    let positions = posed.positions();
    body_bones_from_positions(&positions, girth)
}

/// Build the bone list directly from joint world positions — the
/// model-free reconstruction path of §3.1 (no parametric fitting; the
/// observed keypoints *are* the skeleton, jitter and all).
pub fn body_bones_from_positions(
    positions: &[Vec3; crate::skeleton::JOINT_COUNT],
    girth: f32,
) -> Vec<Bone> {
    let p = |j: Joint| positions[j.index()];
    let mut bones = Vec::with_capacity(64);
    let mut seg = |driver: Joint, a: Vec3, b: Vec3, ra: f32, rb: f32| {
        bones.push(Bone { driver, a, b, ra: ra * girth, rb: rb * girth });
    };
    use Joint::*;
    // Arms: upper arm tapers into forearm into wrist.
    seg(LeftShoulder, p(LeftShoulder), p(LeftElbow), 0.050, 0.040);
    seg(LeftElbow, p(LeftElbow), p(LeftWrist), 0.040, 0.030);
    seg(RightShoulder, p(RightShoulder), p(RightElbow), 0.050, 0.040);
    seg(RightElbow, p(RightElbow), p(RightWrist), 0.040, 0.030);
    // Legs.
    seg(LeftHip, p(LeftHip), p(LeftKnee), 0.080, 0.058);
    seg(LeftKnee, p(LeftKnee), p(LeftAnkle), 0.058, 0.040);
    seg(LeftAnkle, p(LeftAnkle), p(LeftFoot), 0.040, 0.034);
    seg(RightHip, p(RightHip), p(RightKnee), 0.080, 0.058);
    seg(RightKnee, p(RightKnee), p(RightAnkle), 0.058, 0.040);
    seg(RightAnkle, p(RightAnkle), p(RightFoot), 0.040, 0.034);
    // Spine / neck.
    seg(Pelvis, p(Pelvis), p(Spine1), 0.105, 0.100);
    seg(Spine1, p(Spine1), p(Spine2), 0.100, 0.105);
    seg(Spine2, p(Spine2), p(Spine3), 0.105, 0.110);
    seg(Spine3, p(Spine3), p(Neck), 0.110, 0.055);
    seg(Neck, p(Neck), p(Head), 0.055, 0.050);
    // Collars connect chest to shoulders.
    seg(LeftCollar, p(LeftCollar), p(LeftShoulder), 0.055, 0.050);
    seg(RightCollar, p(RightCollar), p(RightShoulder), 0.055, 0.050);
    // Fingers: one thin capsule per phalanx, tapering slightly.
    let fingers = [
        (LeftThumb1, LeftThumb2, LeftThumb3),
        (LeftIndex1, LeftIndex2, LeftIndex3),
        (LeftMiddle1, LeftMiddle2, LeftMiddle3),
        (LeftRing1, LeftRing2, LeftRing3),
        (LeftPinky1, LeftPinky2, LeftPinky3),
        (RightThumb1, RightThumb2, RightThumb3),
        (RightIndex1, RightIndex2, RightIndex3),
        (RightMiddle1, RightMiddle2, RightMiddle3),
        (RightRing1, RightRing2, RightRing3),
        (RightPinky1, RightPinky2, RightPinky3),
    ];
    for (j1, j2, j3) in fingers {
        let wrist = if (j1 as usize) < (RightThumb1 as usize) { LeftWrist } else { RightWrist };
        seg(wrist, p(wrist), p(j1), 0.030, 0.011);
        seg(j1, p(j1), p(j2), 0.011, 0.009);
        seg(j2, p(j2), p(j3), 0.009, 0.007);
        // Fingertip extends a little past the last joint.
        let tip = p(j3) + (p(j3) - p(j2)).normalized() * 0.02;
        seg(j3, p(j3), tip, 0.007, 0.006);
    }
    bones
}

/// Pull each expression bump's center onto the actual body surface
/// (blendshape displacement is a *surface* phenomenon; head geometry
/// varies with pose and girth, so the nominal face-frame anchor can sit
/// off the skin).
fn project_bumps_to_surface(union: &GriddedUnion, bumps: &mut [(Vec3, f32, f32)]) {
    for (center, _, _) in bumps.iter_mut() {
        for _ in 0..4 {
            let d = union.distance(*center);
            if d.abs() < 1e-4 {
                break;
            }
            let n = union.normal(*center, 1e-3);
            *center -= n * d;
        }
    }
}

/// The posed body surface as a signed distance field.
pub struct BodySdf {
    union: GriddedUnion,
    /// Expression bumps: `(center, radius, displacement)`.
    bumps: Vec<(Vec3, f32, f32)>,
    cloth: Option<(f32, f32)>, // (amplitude, frequency)
    /// Only points below this height get cloth displacement (clothes cover
    /// the body, not the face).
    cloth_top: f32,
    bounds: Aabb,
}

impl BodySdf {
    /// Build the SDF for `params` on `skeleton`, with the given detail.
    pub fn from_pose(skeleton: &Skeleton, params: &SmplxParams, detail: SurfaceDetail) -> Self {
        let posed = skeleton.forward_kinematics(params);
        Self::from_posed(&posed, params, detail)
    }

    /// Model-free construction: the surface is hung directly on observed
    /// joint positions. Head orientation is estimated from the neck-head
    /// axis (twist unobservable), and expression bumps use that frame.
    pub fn from_joint_positions(
        positions: &[Vec3; crate::skeleton::JOINT_COUNT],
        expression: &[f32; crate::params::EXPRESSION_DIM],
        detail: SurfaceDetail,
    ) -> Self {
        let girth = 1.0;
        let mut parts: Vec<Box<dyn Sdf + Send>> = Vec::new();
        for bone in body_bones_from_positions(positions, girth) {
            if (bone.ra - bone.rb).abs() < 1e-4 {
                parts.push(Box::new(SdfCapsule { a: bone.a, b: bone.b, radius: bone.ra }));
            } else {
                parts.push(Box::new(SdfRoundCone { a: bone.a, b: bone.b, ra: bone.ra, rb: bone.rb }));
            }
        }
        let head = positions[Joint::Head.index()];
        let neck = positions[Joint::Neck.index()];
        let head_up = (head - neck).normalized();
        parts.push(Box::new(SdfEllipsoid {
            center: head + head_up * 0.04,
            radii: Vec3::new(0.085, 0.115, 0.095),
        }));
        // Chin from the jaw keypoint directly.
        let jaw = positions[Joint::Jaw.index()];
        parts.push(Box::new(SdfSphere { center: jaw + Vec3::new(0.0, -0.02, 0.02), radius: 0.045 }));
        let pelvis = positions[Joint::Pelvis.index()];
        parts.push(Box::new(SdfEllipsoid {
            center: pelvis - Vec3::new(0.0, 0.02, 0.0),
            radii: Vec3::new(0.14, 0.11, 0.10),
        }));
        let union = GriddedUnion::build(parts, 0.02, 24, 0.28);
        // Head frame: forward from the eye midpoint.
        let eyes = (positions[Joint::LeftEye.index()] + positions[Joint::RightEye.index()]) * 0.5;
        let fwd = (eyes - head).normalized();
        let head_rot = quat_from_frame(if fwd.length_sq() > 1e-6 { fwd } else { Vec3::Z }, head_up);
        let mut bumps = if detail.expression {
            ExpressionBasis::standard().bumps(expression, head, head_rot)
        } else {
            Vec::new()
        };
        project_bumps_to_surface(&union, &mut bumps);
        let cloth = detail.cloth.then_some((detail.cloth_amplitude, detail.cloth_frequency));
        let cloth_top = neck.y;
        let mut bounds = union.bounds();
        if detail.cloth {
            bounds = bounds.expanded(detail.cloth_amplitude);
        }
        Self { union, bumps, cloth, cloth_top, bounds }
    }

    /// Build from an already-computed posed skeleton.
    pub fn from_posed(posed: &PosedSkeleton, params: &SmplxParams, detail: SurfaceDetail) -> Self {
        let girth = 1.0 + 0.06 * params.betas[4].clamp(-3.0, 3.0);
        let mut parts: Vec<Box<dyn Sdf + Send>> = Vec::new();
        for bone in body_bones(posed, girth) {
            if (bone.ra - bone.rb).abs() < 1e-4 {
                parts.push(Box::new(SdfCapsule { a: bone.a, b: bone.b, radius: bone.ra }));
            } else {
                parts.push(Box::new(SdfRoundCone { a: bone.a, b: bone.b, ra: bone.ra, rb: bone.rb }));
            }
        }
        // Head: an ellipsoid around the head joint.
        let head = posed.position(Joint::Head);
        let head_up = posed.world[Joint::Head.index()].transform_dir(Vec3::Y);
        parts.push(Box::new(SdfEllipsoid {
            center: head + head_up * 0.04,
            radii: Vec3::new(0.085, 0.115, 0.095) * girth,
        }));
        // Jaw: a chin sphere attached to the jaw joint's *frame*, so
        // rotating the jaw (mouth opening) visibly moves the chin.
        let chin = posed.world[Joint::Jaw.index()].transform_point(Vec3::new(0.0, -0.025, 0.035));
        parts.push(Box::new(SdfSphere { center: chin, radius: 0.045 * girth }));
        // Pelvis mass.
        let pelvis = posed.position(Joint::Pelvis);
        parts.push(Box::new(SdfEllipsoid {
            center: pelvis - Vec3::new(0.0, 0.02, 0.0),
            radii: Vec3::new(0.14, 0.11, 0.10) * girth,
        }));
        let union = GriddedUnion::build(parts, 0.02, 24, 0.28);

        let mut bumps = if detail.expression {
            let basis = ExpressionBasis::standard();
            let head_rot = {
                // Extract the head rotation from its world transform.
                let m = &posed.world[Joint::Head.index()];
                let fwd = m.transform_dir(Vec3::Z);
                let up = m.transform_dir(Vec3::Y);
                quat_from_frame(fwd, up)
            };
            basis.bumps(&params.expression, head, head_rot)
        } else {
            Vec::new()
        };
        project_bumps_to_surface(&union, &mut bumps);

        let cloth = detail.cloth.then_some((detail.cloth_amplitude, detail.cloth_frequency));
        let cloth_top = posed.position(Joint::Neck).y;
        let mut bounds = union.bounds();
        if detail.cloth {
            bounds = bounds.expanded(detail.cloth_amplitude);
        }
        Self { union, bumps, cloth, cloth_top, bounds }
    }

    /// Number of primitive parts in the blend (a proxy for evaluation
    /// cost, used by the GPU workload model).
    pub fn part_count(&self) -> usize {
        self.union.len()
    }

    /// World-space centers of the active expression bumps (projected onto
    /// the surface), in the order of the non-zero expression components.
    pub fn bump_centers(&self) -> Vec<Vec3> {
        self.bumps.iter().map(|&(c, _, _)| c).collect()
    }
}

/// Build a rotation quaternion from a forward/up frame (columns).
fn quat_from_frame(fwd: Vec3, up: Vec3) -> holo_math::Quat {
    // Gram-Schmidt, then matrix-to-quaternion via the largest diagonal.
    let f = fwd.normalized();
    let u = (up - f * up.dot(f)).normalized();
    let r = u.cross(f).normalized(); // right = up x forward (left-handed fix below)
    // Rows of the rotation matrix mapping local (X=right', Y=up, Z=fwd).
    let m = [
        Vec3::new(r.x, u.x, f.x),
        Vec3::new(r.y, u.y, f.y),
        Vec3::new(r.z, u.z, f.z),
    ];
    let trace = m[0].x + m[1].y + m[2].z;
    if trace > 0.0 {
        let s = (trace + 1.0).sqrt() * 2.0;
        holo_math::Quat::new(
            (m[2].y - m[1].z) / s,
            (m[0].z - m[2].x) / s,
            (m[1].x - m[0].y) / s,
            0.25 * s,
        )
        .normalized()
    } else {
        // Fall back to axis-angle via the dominant axis; adequate for the
        // head poses motion synthesis produces.
        let axis = Vec3::new(m[2].y - m[1].z, m[0].z - m[2].x, m[1].x - m[0].y);
        if axis.length() < 1e-6 {
            holo_math::Quat::IDENTITY
        } else {
            holo_math::Quat::from_axis_angle(axis, std::f32::consts::PI)
        }
    }
}

impl Sdf for BodySdf {
    fn distance(&self, p: Vec3) -> f32 {
        let mut d = self.union.distance(p);
        // Expression bumps: local outward displacement.
        for &(center, radius, disp) in &self.bumps {
            let r = (p - center).length();
            if r < radius {
                let w = holo_math::smoothstep(radius, 0.0, r);
                d -= disp * w;
            }
        }
        // Cloth folds: band-limited displacement below the neck.
        if let Some((amp, freq)) = self.cloth {
            if p.y < self.cloth_top && d.abs() < amp * 4.0 {
                let w = freq * std::f32::consts::TAU;
                let fold = (p.x * w).sin() * (p.y * w * 0.83).sin() * (p.z * w * 1.19).sin();
                // Fade the displacement in near the neck line.
                let fade = holo_math::smoothstep(self.cloth_top, self.cloth_top - 0.1, p.y);
                d += fold * amp * fade;
            }
        }
        d
    }

    fn bounds(&self) -> Aabb {
        self.bounds
    }
}

/// Distance from a point to the nearest bone segment surface; used for
/// skinning weights. Returns `(best_driver_joint, distance)`.
pub fn nearest_bone(bones: &[Bone], p: Vec3) -> (Joint, f32) {
    let mut best = (Joint::Pelvis, f32::INFINITY);
    for bone in bones {
        let cone = SdfRoundCone { a: bone.a, b: bone.b, ra: bone.ra, rb: bone.rb };
        let d = cone.distance(p);
        if d < best.1 {
            best = (bone.driver, d);
        }
    }
    best
}

/// Smooth-union of an explicit distance value into an accumulator —
/// re-exported convenience for tests.
pub fn blend(a: f32, b: f32, k: f32) -> f32 {
    smooth_min(a, b, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Pcg32;

    fn neutral_sdf(detail: SurfaceDetail) -> BodySdf {
        let sk = Skeleton::neutral();
        BodySdf::from_pose(&sk, &SmplxParams::default(), detail)
    }

    #[test]
    fn torso_inside_feet_ground_outside() {
        let body = neutral_sdf(SurfaceDetail::bare());
        // Chest center is inside.
        assert!(body.distance(Vec3::new(0.0, 1.25, 0.0)) < 0.0);
        // Head center is inside.
        assert!(body.distance(Vec3::new(0.0, 1.62, 0.0)) < 0.0);
        // A point 1 m in front of the chest is outside.
        assert!(body.distance(Vec3::new(0.0, 1.25, 1.0)) > 0.5);
        // Between the legs is outside.
        assert!(body.distance(Vec3::new(0.0, 0.4, 0.0)) > 0.0);
    }

    #[test]
    fn bounds_contain_surface() {
        let body = neutral_sdf(SurfaceDetail::full());
        let b = body.bounds();
        assert!(b.contains(Vec3::new(0.0, 1.6, 0.0)));
        assert!(b.contains(Vec3::new(0.6, 1.4, 0.0)), "T-pose arms inside bounds");
        assert!(b.min.y < 0.2, "feet near the ground");
    }

    #[test]
    fn bone_list_covers_both_sides() {
        let sk = Skeleton::neutral();
        let posed = sk.forward_kinematics(&SmplxParams::default());
        let bones = body_bones(&posed, 1.0);
        assert!(bones.len() > 50, "bone count {}", bones.len());
        let left = bones.iter().filter(|b| b.a.x > 0.01 || b.b.x > 0.01).count();
        let right = bones.iter().filter(|b| b.a.x < -0.01 || b.b.x < -0.01).count();
        assert!(left > 10 && right > 10);
    }

    #[test]
    fn cloth_changes_surface_slightly() {
        let bare = neutral_sdf(SurfaceDetail::bare());
        let full = neutral_sdf(SurfaceDetail::full());
        let mut rng = Pcg32::new(1);
        let mut diffs = 0;
        for _ in 0..2000 {
            let p = Vec3::new(rng.range_f32(-0.3, 0.3), rng.range_f32(0.3, 1.3), rng.range_f32(-0.3, 0.3));
            let db = bare.distance(p);
            if db.abs() < 0.02 {
                let df = full.distance(p);
                assert!((db - df).abs() <= 0.009, "cloth displacement too large: {}", (db - df).abs());
                if (db - df).abs() > 1e-4 {
                    diffs += 1;
                }
            }
        }
        assert!(diffs > 0, "cloth must actually displace the near-surface field");
    }

    #[test]
    fn expression_bump_moves_face_only() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.expression[0] = 1.0; // jaw_open
        let with_expr = BodySdf::from_pose(&sk, &params, SurfaceDetail::bare());
        let neutral = neutral_sdf(SurfaceDetail::bare());
        // Point near the mouth: displaced outward (smaller distance).
        let head = sk.rest_positions()[Joint::Head.index()];
        let mouth = head + Vec3::new(0.0, -0.045, 0.075);
        assert!(with_expr.distance(mouth) < neutral.distance(mouth));
        // Point at the knee: unchanged.
        let knee = sk.rest_positions()[Joint::LeftKnee.index()];
        let probe = knee + Vec3::new(0.1, 0.0, 0.0);
        assert!((with_expr.distance(probe) - neutral.distance(probe)).abs() < 1e-6);
    }

    #[test]
    fn posed_arm_moves_surface() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        // Rotate the left shoulder to drop the arm to the side.
        params.joint_rotations[Joint::LeftShoulder.index()] =
            holo_math::Quat::from_axis_angle(Vec3::Z, -std::f32::consts::FRAC_PI_2);
        let posed_sdf = BodySdf::from_pose(&sk, &params, SurfaceDetail::bare());
        let tpose_sdf = neutral_sdf(SurfaceDetail::bare());
        // Where the T-pose forearm was, the posed body is now absent.
        let old_wrist = sk.rest_positions()[Joint::LeftWrist.index()];
        assert!(tpose_sdf.distance(old_wrist) < 0.0);
        assert!(posed_sdf.distance(old_wrist) > 0.05);
    }

    #[test]
    fn nearest_bone_picks_the_right_limb() {
        let sk = Skeleton::neutral();
        let posed = sk.forward_kinematics(&SmplxParams::default());
        let bones = body_bones(&posed, 1.0);
        let near_left_knee = posed.position(Joint::LeftKnee) + Vec3::new(0.05, 0.1, 0.0);
        let (driver, d) = nearest_bone(&bones, near_left_knee);
        assert!(matches!(driver, Joint::LeftHip | Joint::LeftKnee), "got {driver:?}");
        assert!(d < 0.2);
    }

    #[test]
    fn girth_beta_fattens_body() {
        let sk = Skeleton::neutral();
        let mut fat = SmplxParams::default();
        fat.betas[4] = 2.0;
        let fat_sdf = BodySdf::from_pose(&sk, &fat, SurfaceDetail::bare());
        let normal_sdf = neutral_sdf(SurfaceDetail::bare());
        let probe = Vec3::new(0.11, 1.25, 0.0); // just outside normal torso
        assert!(fat_sdf.distance(probe) < normal_sdf.distance(probe));
    }
}
