//! Keypoint / landmark sets.
//!
//! §3.1 notes that "a modest number of keypoints (e.g., ~100) can
//! represent the human model" and that extracting more keypoints trades
//! computation for quality (ablation D). A [`LandmarkSet`] maps a posed
//! skeleton to a list of 3D landmark positions at a chosen density:
//! joints only, joints plus mid-bone points, or additionally dense face
//! and hand rings.

use crate::skeleton::{Joint, PosedSkeleton, JOINT_COUNT, PARENTS};
use holo_math::Vec3;

/// Preset landmark densities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandardLandmarks {
    /// 25 body joints only (no fingers) — the cheapest detector output.
    Sparse25,
    /// All 55 skeleton joints.
    Joints55,
    /// 55 joints + 25 mid-bone points + 20 face-ring points = 100, the
    /// payload density the paper's 1.91 KB frame assumes.
    Standard100,
    /// Standard100 + 19 extra face + 25 hand-surface points = 144.
    Dense144,
    /// Dense144 + another 100 interpolated body-surface points = 244.
    Dense244,
}

impl StandardLandmarks {
    /// Number of landmarks this preset emits.
    pub fn count(self) -> usize {
        match self {
            StandardLandmarks::Sparse25 => 25,
            StandardLandmarks::Joints55 => 55,
            StandardLandmarks::Standard100 => 100,
            StandardLandmarks::Dense144 => 144,
            StandardLandmarks::Dense244 => 244,
        }
    }

    /// Payload size in bytes for this density (3 x f32 per landmark).
    pub fn payload_bytes(self) -> usize {
        self.count() * 12
    }
}

/// A concrete landmark extractor.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkSet {
    /// The preset density.
    pub preset: StandardLandmarks,
}

impl LandmarkSet {
    /// Create an extractor for a preset.
    pub fn new(preset: StandardLandmarks) -> Self {
        Self { preset }
    }

    /// Landmark positions for a posed skeleton, in a fixed deterministic
    /// order (so sender and receiver agree on indexing).
    pub fn positions(&self, posed: &PosedSkeleton) -> Vec<Vec3> {
        let joints = posed.positions();
        let mut out = Vec::with_capacity(self.preset.count());
        match self.preset {
            StandardLandmarks::Sparse25 => {
                out.extend_from_slice(&joints[..25]);
            }
            StandardLandmarks::Joints55 => {
                out.extend_from_slice(&joints);
            }
            StandardLandmarks::Standard100 => {
                out.extend_from_slice(&joints);
                out.extend(mid_bone_points(&joints, 25));
                out.extend(face_ring(posed, 20));
            }
            StandardLandmarks::Dense144 => {
                out.extend_from_slice(&joints);
                out.extend(mid_bone_points(&joints, 25));
                out.extend(face_ring(posed, 39));
                out.extend(hand_surface_points(posed, 25));
            }
            StandardLandmarks::Dense244 => {
                out.extend_from_slice(&joints);
                out.extend(mid_bone_points(&joints, 25));
                out.extend(face_ring(posed, 39));
                out.extend(hand_surface_points(posed, 25));
                out.extend(body_surface_points(&joints, 100));
            }
        }
        debug_assert_eq!(out.len(), self.preset.count());
        out
    }
}

/// Midpoints of the first `n` parent-child bone segments (body bones
/// first, so low counts cover the torso and limbs).
fn mid_bone_points(joints: &[Vec3; JOINT_COUNT], n: usize) -> Vec<Vec3> {
    let mut out = Vec::with_capacity(n);
    for i in 1..JOINT_COUNT {
        if out.len() >= n {
            break;
        }
        let p = PARENTS[i] as usize;
        out.push((joints[i] + joints[p]) * 0.5);
    }
    // Pad with quarter points if the tree ran out (n > 54 never happens
    // with current presets).
    while out.len() < n {
        out.push(joints[0]);
    }
    out
}

/// `n` points on an ellipse around the face (landmarks a face detector
/// would output: jawline, brows, lips).
fn face_ring(posed: &PosedSkeleton, n: usize) -> Vec<Vec3> {
    let head = posed.position(Joint::Head);
    let m = &posed.world[Joint::Head.index()];
    let right = m.transform_dir(Vec3::X);
    let up = m.transform_dir(Vec3::Y);
    let fwd = m.transform_dir(Vec3::Z);
    (0..n)
        .map(|i| {
            let theta = std::f32::consts::TAU * i as f32 / n as f32;
            head + fwd * 0.09 + right * (0.055 * theta.cos()) + up * (0.07 * theta.sin())
        })
        .collect()
}

/// `n` points across the palms and backs of both hands.
fn hand_surface_points(posed: &PosedSkeleton, n: usize) -> Vec<Vec3> {
    let lw = posed.position(Joint::LeftWrist);
    let lm = posed.position(Joint::LeftMiddle1);
    let rw = posed.position(Joint::RightWrist);
    let rm = posed.position(Joint::RightMiddle1);
    (0..n)
        .map(|i| {
            let t = (i % 5) as f32 / 5.0;
            let spread = ((i / 5) as f32 - 2.0) * 0.012;
            if i % 2 == 0 {
                lw.lerp(lm, t) + Vec3::new(0.0, spread, 0.0)
            } else {
                rw.lerp(rm, t) + Vec3::new(0.0, spread, 0.0)
            }
        })
        .collect()
}

/// `n` interpolated points along all bones (denser body coverage).
fn body_surface_points(joints: &[Vec3; JOINT_COUNT], n: usize) -> Vec<Vec3> {
    let mut out = Vec::with_capacity(n);
    let mut i = 1usize;
    let fractions = [0.25, 0.75];
    let mut fi = 0usize;
    while out.len() < n {
        let p = PARENTS[i] as usize;
        out.push(joints[p].lerp(joints[i], fractions[fi]));
        i += 1;
        if i >= JOINT_COUNT {
            i = 1;
            fi = (fi + 1) % fractions.len();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmplxParams;
    use crate::skeleton::Skeleton;

    fn posed() -> PosedSkeleton {
        Skeleton::neutral().forward_kinematics(&SmplxParams::default())
    }

    #[test]
    fn all_presets_emit_exact_counts() {
        let posed = posed();
        for preset in [
            StandardLandmarks::Sparse25,
            StandardLandmarks::Joints55,
            StandardLandmarks::Standard100,
            StandardLandmarks::Dense144,
            StandardLandmarks::Dense244,
        ] {
            let pts = LandmarkSet::new(preset).positions(&posed);
            assert_eq!(pts.len(), preset.count(), "{preset:?}");
            for p in &pts {
                assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn standard100_payload_is_1200_bytes() {
        assert_eq!(StandardLandmarks::Standard100.payload_bytes(), 1200);
    }

    #[test]
    fn landmarks_near_the_body() {
        let posed = posed();
        let pts = LandmarkSet::new(StandardLandmarks::Dense244).positions(&posed);
        let bounds = holo_math::Aabb::from_points(&posed.positions()).expanded(0.15);
        for p in pts {
            assert!(bounds.contains(p), "landmark {p:?} far from body");
        }
    }

    #[test]
    fn face_ring_sits_in_front_of_head() {
        let posed = posed();
        let pts = LandmarkSet::new(StandardLandmarks::Standard100).positions(&posed);
        let head = posed.position(Joint::Head);
        // Last 20 are the face ring.
        for p in &pts[80..] {
            assert!(p.z > head.z, "face point {p:?} behind head");
            assert!(p.distance(head) < 0.2);
        }
    }

    #[test]
    fn landmarks_track_pose() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.translation = Vec3::new(0.5, 0.0, 0.0);
        let moved = sk.forward_kinematics(&params);
        let rest = sk.forward_kinematics(&SmplxParams::default());
        let set = LandmarkSet::new(StandardLandmarks::Standard100);
        let a = set.positions(&rest);
        let b = set.positions(&moved);
        for (pa, pb) in a.iter().zip(&b) {
            assert!(((*pb - *pa) - Vec3::new(0.5, 0.0, 0.0)).length() < 1e-4);
        }
    }
}
