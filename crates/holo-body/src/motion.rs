//! Deterministic synthetic motion clips.
//!
//! Every experiment needs a capture workload: a participant talking,
//! gesturing, or walking in front of the RGB-D rig. These synthesizers
//! generate plausible, smooth, seed-deterministic [`SmplxParams`]
//! sequences with the statistical properties that matter downstream:
//! continuous joint trajectories (inter-frame deltas are small — the
//! property §3.3's temporal coding exploits), mostly-idle fingers (what
//! makes the pose stream compressible in Table 2), and talking-driven
//! expression activity (the Fig. 3 workload).

use crate::params::{SmplxParams, EXPRESSION_DIM};
use crate::skeleton::Joint;
use holo_math::{Pcg32, Quat, Vec3};

/// The kind of activity to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotionKind {
    /// Standing still with subtle sway and breathing.
    Idle,
    /// Seated/standing conversation: gestures, head motion, jaw and
    /// expression activity. The paper's telepresence-meeting workload.
    Talking,
    /// Right-arm wave with wrist oscillation.
    Waving,
    /// Walking in place (gait cycle, arm counterswing).
    Walking,
}

/// A fixed-rate sequence of poses.
#[derive(Debug, Clone)]
pub struct MotionClip {
    /// Per-frame parameters.
    pub frames: Vec<SmplxParams>,
    /// Frame rate, frames per second.
    pub fps: f32,
    /// The kind that generated this clip.
    pub kind: MotionKind,
}

impl MotionClip {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Clip duration in seconds.
    pub fn duration(&self) -> f32 {
        self.frames.len() as f32 / self.fps
    }

    /// Frame accessor.
    pub fn frame(&self, i: usize) -> &SmplxParams {
        &self.frames[i]
    }
}

/// Generates motion clips deterministically from a seed.
#[derive(Debug, Clone)]
pub struct MotionSynthesizer {
    rng: Pcg32,
}

impl MotionSynthesizer {
    /// Create a synthesizer with a seed; identical seeds give identical
    /// clips.
    pub fn new(seed: u64) -> Self {
        Self { rng: Pcg32::new(seed) }
    }

    /// Synthesize a clip of `duration_s` seconds at `fps`.
    pub fn clip(&mut self, kind: MotionKind, duration_s: f32, fps: f32) -> MotionClip {
        let n = (duration_s * fps).round().max(1.0) as usize;
        // Per-clip random phases/amplitudes so different seeds differ.
        let phase: Vec<f32> = (0..16).map(|_| self.rng.range_f32(0.0, std::f32::consts::TAU)).collect();
        let amp: Vec<f32> = (0..16).map(|_| self.rng.range_f32(0.7, 1.3)).collect();
        // Occasional discrete gesture events for Talking.
        let mut gesture_until = 0.0f32;
        let mut gesture_arm_left = false;
        let mut frames = Vec::with_capacity(n);
        let mut event_rng = self.rng.fork(99);
        for i in 0..n {
            let t = i as f32 / fps;
            if matches!(kind, MotionKind::Talking) && t >= gesture_until && event_rng.chance(0.01) {
                gesture_until = t + event_rng.range_f32(0.8, 2.0);
                gesture_arm_left = event_rng.chance(0.5);
            }
            frames.push(self.frame_at(kind, t, &phase, &amp, t < gesture_until, gesture_arm_left));
        }
        MotionClip { frames, fps, kind }
    }

    #[allow(clippy::too_many_arguments)]
    fn frame_at(
        &mut self,
        kind: MotionKind,
        t: f32,
        phase: &[f32],
        amp: &[f32],
        gesturing: bool,
        gesture_left: bool,
    ) -> SmplxParams {
        let mut p = SmplxParams::default();
        let s = |freq: f32, k: usize| (t * freq * std::f32::consts::TAU + phase[k]).sin() * amp[k];
        let rot = |i: &mut SmplxParams, j: Joint, axis: Vec3, angle: f32| {
            i.joint_rotations[j.index()] = Quat::from_axis_angle(axis, angle);
        };
        // Breathing sway common to all kinds.
        rot(&mut p, Joint::Spine2, Vec3::X, 0.015 * s(0.25, 0));
        match kind {
            MotionKind::Idle => {
                rot(&mut p, Joint::Head, Vec3::Y, 0.05 * s(0.11, 1));
                p.translation = Vec3::new(0.004 * s(0.2, 2), 0.0, 0.004 * s(0.17, 3));
            }
            MotionKind::Talking => {
                // Head nods and turns.
                rot(&mut p, Joint::Head, Vec3::X, 0.08 * s(0.4, 1));
                rot(&mut p, Joint::Neck, Vec3::Y, 0.10 * s(0.23, 2));
                // Jaw articulation at syllable rate (~4 Hz).
                let jaw = (0.5 + 0.5 * s(3.9, 3)).max(0.0) * 0.12;
                rot(&mut p, Joint::Jaw, Vec3::X, jaw);
                // Arms rest slightly bent; one arm gestures when active.
                rot(&mut p, Joint::LeftShoulder, Vec3::Z, -1.15);
                rot(&mut p, Joint::RightShoulder, Vec3::Z, 1.15);
                rot(&mut p, Joint::LeftElbow, Vec3::Y, -0.35);
                rot(&mut p, Joint::RightElbow, Vec3::Y, 0.35);
                if gesturing {
                    let (sh, el, sign) = if gesture_left {
                        (Joint::LeftShoulder, Joint::LeftElbow, 1.0)
                    } else {
                        (Joint::RightShoulder, Joint::RightElbow, -1.0)
                    };
                    rot(&mut p, sh, Vec3::Z, sign * -0.5 + 0.2 * s(1.1, 4));
                    rot(&mut p, el, Vec3::Y, sign * -(0.8 + 0.3 * s(1.7, 5)));
                    // Finger articulation during gestures only.
                    let curl = 0.25 + 0.2 * s(1.3, 6);
                    let fingers: &[Joint] = if gesture_left {
                        &[Joint::LeftIndex1, Joint::LeftMiddle1, Joint::LeftRing1, Joint::LeftPinky1]
                    } else {
                        &[Joint::RightIndex1, Joint::RightMiddle1, Joint::RightRing1, Joint::RightPinky1]
                    };
                    for &f in fingers {
                        rot(&mut p, f, Vec3::Z, curl);
                    }
                }
                // Expression: coarse components at speech rate, fine
                // components as occasional accents.
                p.expression[0] = (0.4 + 0.4 * s(3.9, 3)).clamp(0.0, 1.0); // jaw/mouth open
                p.expression[1] = (0.3 + 0.3 * s(0.7, 7)).clamp(0.0, 1.0); // mouth wide
                p.expression[2] = (0.2 + 0.3 * s(0.31, 8)).clamp(0.0, 1.0); // brows
                // Fine detail: a pout/smirk that comes and goes.
                for k in 3..EXPRESSION_DIM {
                    let v = s(0.5 + 0.13 * k as f32, (k + 4) % 16) - 0.55;
                    p.expression[k] = v.max(0.0).min(1.0);
                }
            }
            MotionKind::Waving => {
                rot(&mut p, Joint::LeftShoulder, Vec3::Z, -1.15);
                rot(&mut p, Joint::LeftElbow, Vec3::Y, -0.3);
                // Right arm raised, forearm oscillating.
                rot(&mut p, Joint::RightShoulder, Vec3::Z, -0.5);
                rot(&mut p, Joint::RightElbow, Vec3::Z, 0.9 + 0.35 * s(2.0, 4));
                rot(&mut p, Joint::RightWrist, Vec3::Z, 0.3 * s(2.0, 5));
                p.expression[1] = 0.6; // smile-ish
            }
            MotionKind::Walking => {
                let gait = 0.9; // Hz
                let swing = s(gait, 4);
                let counter = (t * gait * std::f32::consts::TAU + phase[4] + std::f32::consts::PI).sin() * amp[4];
                rot(&mut p, Joint::LeftHip, Vec3::X, 0.45 * swing);
                rot(&mut p, Joint::RightHip, Vec3::X, 0.45 * counter);
                rot(&mut p, Joint::LeftKnee, Vec3::X, (0.7 * counter).max(0.0));
                rot(&mut p, Joint::RightKnee, Vec3::X, (0.7 * swing).max(0.0));
                // Arms counterswing, slightly bent.
                rot(&mut p, Joint::LeftShoulder, Vec3::Z, -1.2);
                rot(&mut p, Joint::RightShoulder, Vec3::Z, 1.2);
                rot(&mut p, Joint::LeftElbow, Vec3::X, 0.3 * counter);
                rot(&mut p, Joint::RightElbow, Vec3::X, 0.3 * swing);
                // Bob and sway.
                p.translation = Vec3::new(0.01 * s(2.0 * gait, 6), 0.02 * s(2.0 * gait, 7).abs(), 0.0);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clip(kind: MotionKind, seed: u64) -> MotionClip {
        MotionSynthesizer::new(seed).clip(kind, 2.0, 30.0)
    }

    #[test]
    fn clip_length_and_duration() {
        let c = clip(MotionKind::Talking, 1);
        assert_eq!(c.len(), 60);
        assert!((c.duration() - 2.0).abs() < 1e-5);
        assert!(!c.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = clip(MotionKind::Talking, 7);
        let b = clip(MotionKind::Talking, 7);
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.to_floats(), fb.to_floats());
        }
        let c = clip(MotionKind::Talking, 8);
        let same = a
            .frames
            .iter()
            .zip(&c.frames)
            .filter(|(x, y)| x.to_floats() == y.to_floats())
            .count();
        assert!(same < a.len() / 2, "different seeds too similar");
    }

    #[test]
    fn motion_is_temporally_smooth() {
        for kind in [MotionKind::Idle, MotionKind::Talking, MotionKind::Waving, MotionKind::Walking] {
            let c = clip(kind, 3);
            for w in c.frames.windows(2) {
                let err = w[0].rotation_error(&w[1]);
                assert!(err < 0.12, "{kind:?} inter-frame rotation jump {err}");
            }
        }
    }

    #[test]
    fn talking_moves_jaw_and_expression() {
        let c = clip(MotionKind::Talking, 5);
        let jaw_active = c
            .frames
            .iter()
            .filter(|f| f.joint_rotations[Joint::Jaw.index()].angle_to(Quat::IDENTITY) > 0.02)
            .count();
        assert!(jaw_active > c.len() / 4, "jaw active in only {jaw_active} frames");
        let expr_active = c.frames.iter().filter(|f| f.expression[0] > 0.3).count();
        assert!(expr_active > c.len() / 4);
    }

    #[test]
    fn fingers_mostly_idle() {
        let c = clip(MotionKind::Talking, 9);
        let mut idle = 0usize;
        let mut total = 0usize;
        for f in &c.frames {
            for j in Joint::all().filter(|j| j.is_finger()) {
                total += 1;
                if f.joint_rotations[j.index()].angle_to(Quat::IDENTITY) < 1e-3 {
                    idle += 1;
                }
            }
        }
        assert!(idle as f32 / total as f32 > 0.5, "fingers idle {idle}/{total}");
    }

    #[test]
    fn walking_alternates_legs() {
        let c = MotionSynthesizer::new(2).clip(MotionKind::Walking, 4.0, 30.0);
        // Hip angles should be anti-correlated.
        let l: Vec<f32> = c.frames.iter().map(|f| f.joint_rotations[Joint::LeftHip.index()].to_axis_angle().x).collect();
        let r: Vec<f32> = c.frames.iter().map(|f| f.joint_rotations[Joint::RightHip.index()].to_axis_angle().x).collect();
        let corr: f32 = l.iter().zip(&r).map(|(a, b)| a * b).sum::<f32>();
        assert!(corr < 0.0, "hip correlation {corr} should be negative");
    }
}
