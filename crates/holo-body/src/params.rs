//! Per-frame pose parameters and the keypoint-semantics wire payload.
//!
//! The paper transmits "the 3D pose aligned with SMPL-X", measured at
//! **1.91 KB per frame** before compression (Table 2, §3.1). We reproduce
//! that payload exactly as [`PosePayload`]: a fitted SMPL-X parameter
//! block (55 joint rotations as axis-angle, global translation, 10 shape
//! betas, 10 expression coefficients = 188 floats) plus the 100 raw
//! detected 3D keypoints the fit was estimated from (300 floats), with a
//! 4-byte header — 1956 bytes ≈ 1.91 KB.

use crate::skeleton::JOINT_COUNT;
use holo_math::{Pcg32, Quat, Vec3};
use holo_runtime::ser::{ByteReader, DecodeError};

/// Number of shape coefficients (SMPL-X uses 10 by default).
pub const SHAPE_DIM: usize = 10;
/// Number of expression coefficients (SMPL-X uses 10 by default).
pub const EXPRESSION_DIM: usize = 10;
/// Number of raw 3D keypoints carried alongside the fitted parameters.
pub const PAYLOAD_KEYPOINTS: usize = 100;
/// Wire format magic/version word.
const PAYLOAD_MAGIC: u32 = 0x534D_5831; // "SMX1"

/// Complete per-frame avatar state: pose, shape, and expression.
#[derive(Debug, Clone)]
pub struct SmplxParams {
    /// Global root translation, meters.
    pub translation: Vec3,
    /// Per-joint rotations; index 0 is the global orientation.
    pub joint_rotations: [Quat; JOINT_COUNT],
    /// Shape (identity) coefficients.
    pub betas: [f32; SHAPE_DIM],
    /// Facial expression coefficients.
    pub expression: [f32; EXPRESSION_DIM],
}

impl Default for SmplxParams {
    fn default() -> Self {
        Self {
            translation: Vec3::ZERO,
            joint_rotations: [Quat::IDENTITY; JOINT_COUNT],
            betas: [0.0; SHAPE_DIM],
            expression: [0.0; EXPRESSION_DIM],
        }
    }
}

impl SmplxParams {
    /// Number of floats in the parameter block.
    pub const FLOAT_COUNT: usize = 3 + JOINT_COUNT * 3 + SHAPE_DIM + EXPRESSION_DIM;

    /// Serialize the parameter block to floats: translation, 55 axis-angle
    /// rotations, betas, expression — the SMPL-X packing convention.
    pub fn to_floats(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(Self::FLOAT_COUNT);
        out.extend_from_slice(&[self.translation.x, self.translation.y, self.translation.z]);
        for q in &self.joint_rotations {
            let aa = q.to_axis_angle();
            out.extend_from_slice(&[aa.x, aa.y, aa.z]);
        }
        out.extend_from_slice(&self.betas);
        out.extend_from_slice(&self.expression);
        out
    }

    /// Inverse of [`SmplxParams::to_floats`].
    pub fn from_floats(data: &[f32]) -> Result<Self, DecodeError> {
        if data.len() != Self::FLOAT_COUNT {
            return Err(DecodeError::corrupt(
                "smplx params",
                format!("expected {} floats, got {}", Self::FLOAT_COUNT, data.len()),
            ));
        }
        let mut p = SmplxParams {
            translation: Vec3::new(data[0], data[1], data[2]),
            ..Default::default()
        };
        for j in 0..JOINT_COUNT {
            let o = 3 + j * 3;
            p.joint_rotations[j] = Quat::from_axis_angle_vec(Vec3::new(data[o], data[o + 1], data[o + 2]));
        }
        let o = 3 + JOINT_COUNT * 3;
        p.betas.copy_from_slice(&data[o..o + SHAPE_DIM]);
        p.expression.copy_from_slice(&data[o + SHAPE_DIM..o + SHAPE_DIM + EXPRESSION_DIM]);
        Ok(p)
    }

    /// Interpolate toward `other` (slerp on rotations, lerp elsewhere).
    pub fn lerp(&self, other: &Self, t: f32) -> Self {
        let mut out = SmplxParams {
            translation: self.translation.lerp(other.translation, t),
            ..Default::default()
        };
        for j in 0..JOINT_COUNT {
            out.joint_rotations[j] = self.joint_rotations[j].slerp(other.joint_rotations[j], t);
        }
        for i in 0..SHAPE_DIM {
            out.betas[i] = holo_math::lerp(self.betas[i], other.betas[i], t);
        }
        for i in 0..EXPRESSION_DIM {
            out.expression[i] = holo_math::lerp(self.expression[i], other.expression[i], t);
        }
        out
    }

    /// Mean per-joint rotation error (radians) against another pose —
    /// the pose-accuracy metric for the keypoint fitting pipeline.
    pub fn rotation_error(&self, other: &Self) -> f32 {
        let sum: f32 = self
            .joint_rotations
            .iter()
            .zip(&other.joint_rotations)
            .map(|(a, b)| a.angle_to(*b))
            .sum();
        sum / JOINT_COUNT as f32
    }

    /// A random plausible pose (small joint angles, fingers mostly at
    /// rest), for tests and property checks.
    pub fn random_plausible(rng: &mut Pcg32) -> Self {
        let mut p = SmplxParams {
            translation: Vec3::new(rng.range_f32(-0.5, 0.5), 0.0, rng.range_f32(-0.5, 0.5)),
            ..Default::default()
        };
        for j in 0..JOINT_COUNT {
            // Fingers stay at rest 70% of the time, like real capture data
            // (this is also what makes the pose stream compressible).
            if j >= 25 && rng.chance(0.7) {
                continue;
            }
            let scale = if j >= 25 { 0.3 } else { 0.5 };
            let axis = Vec3::new(rng.normal(), rng.normal(), rng.normal());
            if axis.length() < 1e-6 {
                continue;
            }
            p.joint_rotations[j] = Quat::from_axis_angle(axis, rng.range_f32(-scale, scale));
        }
        for b in &mut p.betas {
            *b = rng.normal() * 0.5;
        }
        for (i, e) in p.expression.iter_mut().enumerate() {
            *e = if i < 3 { rng.range_f32(0.0, 1.0) } else { 0.0 };
        }
        p
    }
}

/// The exact keypoint-semantics wire payload of Table 2: fitted SMPL-X
/// parameters plus the raw detected 3D keypoints.
#[derive(Debug, Clone)]
pub struct PosePayload {
    /// Fitted parametric pose.
    pub params: SmplxParams,
    /// Raw detected 3D keypoints (exactly [`PAYLOAD_KEYPOINTS`] entries).
    pub keypoints: Vec<Vec3>,
}

impl PosePayload {
    /// Size in bytes of the serialized payload: 4-byte header + 188
    /// parameter floats + 300 keypoint floats = 1956 B ≈ 1.91 KB.
    pub const WIRE_SIZE: usize = 4 + (SmplxParams::FLOAT_COUNT + PAYLOAD_KEYPOINTS * 3) * 4;

    /// Build a payload; pads or truncates `keypoints` to the fixed count.
    pub fn new(params: SmplxParams, mut keypoints: Vec<Vec3>) -> Self {
        keypoints.resize(PAYLOAD_KEYPOINTS, Vec3::ZERO);
        Self { params, keypoints }
    }

    /// Serialize to the little-endian wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        out.extend_from_slice(&PAYLOAD_MAGIC.to_le_bytes());
        for f in self.params.to_floats() {
            out.extend_from_slice(&f.to_le_bytes());
        }
        for kp in &self.keypoints {
            out.extend_from_slice(&kp.x.to_le_bytes());
            out.extend_from_slice(&kp.y.to_le_bytes());
            out.extend_from_slice(&kp.z.to_le_bytes());
        }
        debug_assert_eq!(out.len(), Self::WIRE_SIZE);
        out
    }

    /// Parse the wire format.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        if data.len() != Self::WIRE_SIZE {
            return Err(if data.len() < Self::WIRE_SIZE {
                DecodeError::Truncated { needed: Self::WIRE_SIZE, available: data.len() }
            } else {
                DecodeError::corrupt(
                    "pose payload",
                    format!("payload size {} != {}", data.len(), Self::WIRE_SIZE),
                )
            });
        }
        let mut r = ByteReader::new(data);
        r.expect_magic(PAYLOAD_MAGIC)?;
        let mut floats = Vec::with_capacity(SmplxParams::FLOAT_COUNT + PAYLOAD_KEYPOINTS * 3);
        while !r.is_empty() {
            floats.push(r.f32_le()?);
        }
        let params = SmplxParams::from_floats(&floats[..SmplxParams::FLOAT_COUNT])?;
        let keypoints = Vec3::unflatten(&floats[SmplxParams::FLOAT_COUNT..]);
        Ok(Self { params, keypoints })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_is_1_91_kb() {
        // 4 + (188 + 300) * 4 = 1956 bytes = 1.9102 KB.
        assert_eq!(PosePayload::WIRE_SIZE, 1956);
        let kb = PosePayload::WIRE_SIZE as f64 / 1024.0;
        assert!((kb - 1.91).abs() < 0.01, "payload {kb:.3} KB");
    }

    #[test]
    fn float_roundtrip() {
        let mut rng = Pcg32::new(1);
        for _ in 0..20 {
            let p = SmplxParams::random_plausible(&mut rng);
            let back = SmplxParams::from_floats(&p.to_floats()).unwrap();
            assert!((p.translation - back.translation).length() < 1e-5);
            for j in 0..JOINT_COUNT {
                let err = p.joint_rotations[j].angle_to(back.joint_rotations[j]);
                assert!(err < 1e-3, "joint {j} error {err}");
            }
            assert_eq!(p.betas, back.betas);
            assert_eq!(p.expression, back.expression);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = Pcg32::new(2);
        let p = SmplxParams::random_plausible(&mut rng);
        let kps: Vec<Vec3> = (0..PAYLOAD_KEYPOINTS)
            .map(|_| Vec3::new(rng.normal(), rng.normal(), rng.normal()))
            .collect();
        let payload = PosePayload::new(p, kps.clone());
        let bytes = payload.to_bytes();
        assert_eq!(bytes.len(), PosePayload::WIRE_SIZE);
        let back = PosePayload::from_bytes(&bytes).unwrap();
        assert_eq!(back.keypoints.len(), PAYLOAD_KEYPOINTS);
        for (a, b) in kps.iter().zip(&back.keypoints) {
            assert!((*a - *b).length() < 1e-6);
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(PosePayload::from_bytes(&[0u8; 10]).is_err());
        let mut bytes = PosePayload::new(SmplxParams::default(), vec![]).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(PosePayload::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_floats_rejects_wrong_length() {
        assert!(SmplxParams::from_floats(&[0.0; 10]).is_err());
    }

    #[test]
    fn lerp_midpoint_rotation() {
        let a = SmplxParams::default();
        let mut b = SmplxParams::default();
        b.joint_rotations[5] = Quat::from_axis_angle(Vec3::X, 1.0);
        b.translation = Vec3::new(2.0, 0.0, 0.0);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.translation.x - 1.0).abs() < 1e-6);
        assert!((mid.joint_rotations[5].angle_to(Quat::IDENTITY) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn rotation_error_zero_for_self() {
        let mut rng = Pcg32::new(3);
        let p = SmplxParams::random_plausible(&mut rng);
        // acos near 1 is ill-conditioned; ~3e-4 per joint is float noise.
        assert!(p.rotation_error(&p) < 5e-3);
        let q = SmplxParams::default();
        assert!(p.rotation_error(&q) > 0.0);
    }

    #[test]
    fn payload_pads_keypoints() {
        let payload = PosePayload::new(SmplxParams::default(), vec![Vec3::ONE; 5]);
        assert_eq!(payload.keypoints.len(), PAYLOAD_KEYPOINTS);
    }
}
