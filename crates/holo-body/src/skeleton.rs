//! The 55-joint kinematic tree.
//!
//! SMPL-X drives its body mesh from 55 joints: 25 body joints (pelvis,
//! spine, neck, head, jaw, eyes, collars, arms, legs) plus 15 finger
//! joints per hand. We reproduce the same tree with hand-authored rest
//! offsets for an average-height adult in T-pose (y-up, meters, pelvis
//! root). Shape betas deform the rest offsets (height, limb length, torso
//! length, shoulder width), mirroring SMPL-X's shape space at the level of
//! detail the experiments need.

use crate::params::{SmplxParams, SHAPE_DIM};
use holo_math::{Mat4, Vec3};

/// Number of joints in the kinematic tree (SMPL-X layout).
pub const JOINT_COUNT: usize = 55;

/// Joint identifiers, matching the SMPL-X ordering convention: body first,
/// then left-hand fingers, then right-hand fingers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Joint {
    Pelvis = 0,
    Spine1,
    Spine2,
    Spine3,
    Neck,
    Head,
    Jaw,
    LeftEye,
    RightEye,
    LeftCollar,
    RightCollar,
    LeftShoulder,
    RightShoulder,
    LeftElbow,
    RightElbow,
    LeftWrist,
    RightWrist,
    LeftHip,
    RightHip,
    LeftKnee,
    RightKnee,
    LeftAnkle,
    RightAnkle,
    LeftFoot,
    RightFoot,
    LeftThumb1,
    LeftThumb2,
    LeftThumb3,
    LeftIndex1,
    LeftIndex2,
    LeftIndex3,
    LeftMiddle1,
    LeftMiddle2,
    LeftMiddle3,
    LeftRing1,
    LeftRing2,
    LeftRing3,
    LeftPinky1,
    LeftPinky2,
    LeftPinky3,
    RightThumb1,
    RightThumb2,
    RightThumb3,
    RightIndex1,
    RightIndex2,
    RightIndex3,
    RightMiddle1,
    RightMiddle2,
    RightMiddle3,
    RightRing1,
    RightRing2,
    RightRing3,
    RightPinky1,
    RightPinky2,
    RightPinky3,
}

impl Joint {
    /// All joints in index order.
    pub fn all() -> impl Iterator<Item = Joint> {
        (0..JOINT_COUNT as u8).map(|i| unsafe { std::mem::transmute::<u8, Joint>(i) })
    }

    /// Numeric index of this joint.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Joint from a numeric index; `None` when out of range.
    pub fn from_index(i: usize) -> Option<Joint> {
        (i < JOINT_COUNT).then(|| unsafe { std::mem::transmute::<u8, Joint>(i as u8) })
    }

    /// True for the 30 finger joints.
    pub fn is_finger(self) -> bool {
        self.index() >= Joint::LeftThumb1.index()
    }

    /// True for face-area joints (head, jaw, eyes).
    pub fn is_face(self) -> bool {
        matches!(self, Joint::Head | Joint::Jaw | Joint::LeftEye | Joint::RightEye)
    }
}

/// Parent of each joint (`u8::MAX` marks the root).
const NO_PARENT: u8 = u8::MAX;
#[rustfmt::skip]
pub const PARENTS: [u8; JOINT_COUNT] = [
    NO_PARENT, // Pelvis
    0,   // Spine1
    1,   // Spine2
    2,   // Spine3
    3,   // Neck
    4,   // Head
    5,   // Jaw
    5,   // LeftEye
    5,   // RightEye
    3,   // LeftCollar
    3,   // RightCollar
    9,   // LeftShoulder
    10,  // RightShoulder
    11,  // LeftElbow
    12,  // RightElbow
    13,  // LeftWrist
    14,  // RightWrist
    0,   // LeftHip
    0,   // RightHip
    17,  // LeftKnee
    18,  // RightKnee
    19,  // LeftAnkle
    20,  // RightAnkle
    21,  // LeftFoot
    22,  // RightFoot
    15, 25, 26,  // LeftThumb1..3
    15, 28, 29,  // LeftIndex1..3
    15, 31, 32,  // LeftMiddle1..3
    15, 34, 35,  // LeftRing1..3
    15, 37, 38,  // LeftPinky1..3
    16, 40, 41,  // RightThumb1..3
    16, 43, 44,  // RightIndex1..3
    16, 46, 47,  // RightMiddle1..3
    16, 49, 50,  // RightRing1..3
    16, 52, 53,  // RightPinky1..3
];

/// T-pose rest offsets relative to the parent joint, meters, y-up. The
/// root offset places the pelvis of a ~1.7 m adult.
#[rustfmt::skip]
fn base_offsets() -> [Vec3; JOINT_COUNT] {
    let v = Vec3::new;
    [
        v(0.0, 0.95, 0.0),        // Pelvis (from world origin)
        v(0.0, 0.10, 0.0),        // Spine1
        v(0.0, 0.12, 0.0),        // Spine2
        v(0.0, 0.13, 0.0),        // Spine3
        v(0.0, 0.13, 0.0),        // Neck
        v(0.0, 0.10, 0.0),        // Head
        v(0.0, -0.03, 0.06),      // Jaw
        v(0.032, 0.035, 0.08),    // LeftEye
        v(-0.032, 0.035, 0.08),   // RightEye
        v(0.055, 0.09, 0.0),      // LeftCollar
        v(-0.055, 0.09, 0.0),     // RightCollar
        v(0.115, 0.02, 0.0),      // LeftShoulder
        v(-0.115, 0.02, 0.0),     // RightShoulder
        v(0.26, 0.0, 0.0),        // LeftElbow
        v(-0.26, 0.0, 0.0),       // RightElbow
        v(0.25, 0.0, 0.0),        // LeftWrist
        v(-0.25, 0.0, 0.0),       // RightWrist
        v(0.088, -0.06, 0.0),     // LeftHip
        v(-0.088, -0.06, 0.0),    // RightHip
        v(0.0, -0.40, 0.0),       // LeftKnee
        v(0.0, -0.40, 0.0),       // RightKnee
        v(0.0, -0.41, 0.0),       // LeftAnkle
        v(0.0, -0.41, 0.0),       // RightAnkle
        v(0.0, -0.05, 0.12),      // LeftFoot
        v(0.0, -0.05, 0.12),      // RightFoot
        // Left hand (fingers extend +x in T-pose).
        v(0.030, -0.010, 0.030), v(0.032, 0.0, 0.012), v(0.028, 0.0, 0.008), // thumb
        v(0.090, 0.0, 0.028),    v(0.032, 0.0, 0.0),   v(0.025, 0.0, 0.0),   // index
        v(0.094, 0.0, 0.008),    v(0.034, 0.0, 0.0),   v(0.027, 0.0, 0.0),   // middle
        v(0.090, 0.0, -0.012),   v(0.031, 0.0, 0.0),   v(0.024, 0.0, 0.0),   // ring
        v(0.082, 0.0, -0.030),   v(0.026, 0.0, 0.0),   v(0.020, 0.0, 0.0),   // pinky
        // Right hand (mirrored across x).
        v(-0.030, -0.010, 0.030), v(-0.032, 0.0, 0.012), v(-0.028, 0.0, 0.008),
        v(-0.090, 0.0, 0.028),    v(-0.032, 0.0, 0.0),   v(-0.025, 0.0, 0.0),
        v(-0.094, 0.0, 0.008),    v(-0.034, 0.0, 0.0),   v(-0.027, 0.0, 0.0),
        v(-0.090, 0.0, -0.012),   v(-0.031, 0.0, 0.0),   v(-0.024, 0.0, 0.0),
        v(-0.082, 0.0, -0.030),   v(-0.026, 0.0, 0.0),   v(-0.020, 0.0, 0.0),
    ]
}

/// A shaped (but unposed) skeleton: rest offsets after applying betas.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// Rest offset of each joint relative to its parent.
    pub rest_offsets: [Vec3; JOINT_COUNT],
}

impl Skeleton {
    /// Skeleton with all betas zero.
    pub fn neutral() -> Self {
        Self::from_betas(&[0.0; SHAPE_DIM])
    }

    /// Apply the shape space: each beta deforms a family of offsets.
    ///
    /// - `beta[0]`: overall height scale (+-5% per unit)
    /// - `beta[1]`: limb (arm + leg) length (+-4% per unit)
    /// - `beta[2]`: torso length (+-4% per unit)
    /// - `beta[3]`: shoulder width (+-5% per unit)
    /// - `beta[4..]`: reserved for girth/detail (consumed by the surface
    ///   model, not the tree)
    pub fn from_betas(betas: &[f32; SHAPE_DIM]) -> Self {
        let mut offsets = base_offsets();
        let overall = 1.0 + 0.05 * betas[0].clamp(-3.0, 3.0);
        let limb = 1.0 + 0.04 * betas[1].clamp(-3.0, 3.0);
        let torso = 1.0 + 0.04 * betas[2].clamp(-3.0, 3.0);
        let shoulders = 1.0 + 0.05 * betas[3].clamp(-3.0, 3.0);
        for j in Joint::all() {
            let i = j.index();
            offsets[i] *= overall;
            match j {
                Joint::Spine1 | Joint::Spine2 | Joint::Spine3 | Joint::Neck => offsets[i] *= torso,
                Joint::LeftCollar | Joint::RightCollar | Joint::LeftShoulder | Joint::RightShoulder => {
                    offsets[i].x *= shoulders;
                }
                Joint::LeftElbow | Joint::RightElbow | Joint::LeftWrist | Joint::RightWrist
                | Joint::LeftKnee | Joint::RightKnee | Joint::LeftAnkle | Joint::RightAnkle => {
                    offsets[i] *= limb;
                }
                _ => {}
            }
        }
        Self { rest_offsets: offsets }
    }

    /// World-space joint positions in the rest (T-)pose.
    pub fn rest_positions(&self) -> [Vec3; JOINT_COUNT] {
        let mut pos = [Vec3::ZERO; JOINT_COUNT];
        for i in 0..JOINT_COUNT {
            let p = PARENTS[i];
            pos[i] = if p == NO_PARENT { self.rest_offsets[i] } else { pos[p as usize] + self.rest_offsets[i] };
        }
        pos
    }

    /// Rest-pose world transform of each joint (pure translations).
    pub fn rest_transforms(&self) -> [Mat4; JOINT_COUNT] {
        let pos = self.rest_positions();
        std::array::from_fn(|i| Mat4::translation(pos[i]))
    }

    /// Forward kinematics: world transform of every joint under `params`.
    ///
    /// Each joint's local transform is `T(rest_offset) * R(rotation)`;
    /// the root additionally applies the global translation.
    pub fn forward_kinematics(&self, params: &SmplxParams) -> PosedSkeleton {
        let mut world = [Mat4::IDENTITY; JOINT_COUNT];
        for i in 0..JOINT_COUNT {
            let rot = params.joint_rotations[i];
            let local = Mat4::from_rotation_translation(rot, self.rest_offsets[i]);
            let p = PARENTS[i];
            world[i] = if p == NO_PARENT {
                Mat4::translation(params.translation) * local
            } else {
                world[p as usize] * local
            };
        }
        PosedSkeleton { world }
    }
}

/// The result of forward kinematics: world transforms per joint.
#[derive(Debug, Clone)]
pub struct PosedSkeleton {
    /// World transform of each joint.
    pub world: [Mat4; JOINT_COUNT],
}

impl PosedSkeleton {
    /// World position of a joint.
    #[inline]
    pub fn position(&self, j: Joint) -> Vec3 {
        self.world[j.index()].translation_part()
    }

    /// World positions of all joints in index order.
    pub fn positions(&self) -> [Vec3; JOINT_COUNT] {
        std::array::from_fn(|i| self.world[i].translation_part())
    }

    /// Skinning matrices: `world[i] * rest[i]^-1` for each joint, mapping
    /// rest-pose surface points into the posed frame.
    pub fn skinning_matrices(&self, skeleton: &Skeleton) -> [Mat4; JOINT_COUNT] {
        let rest = skeleton.rest_transforms();
        std::array::from_fn(|i| self.world[i] * rest[i].rigid_inverse())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmplxParams;
    use holo_math::Quat;

    #[test]
    fn tree_is_well_formed() {
        // Every non-root parent index precedes the child (topological order)
        for (i, &p) in PARENTS.iter().enumerate() {
            if i == 0 {
                assert_eq!(p, NO_PARENT);
            } else {
                assert!((p as usize) < i, "joint {i} has parent {p} not before it");
            }
        }
        assert_eq!(PARENTS.len(), JOINT_COUNT);
    }

    #[test]
    fn joint_roundtrip_and_count() {
        assert_eq!(Joint::all().count(), JOINT_COUNT);
        for j in Joint::all() {
            assert_eq!(Joint::from_index(j.index()), Some(j));
        }
        assert!(Joint::from_index(JOINT_COUNT).is_none());
        assert_eq!(Joint::RightPinky3.index(), 54);
    }

    #[test]
    fn neutral_rest_height_plausible() {
        let sk = Skeleton::neutral();
        let pos = sk.rest_positions();
        let head = pos[Joint::Head.index()];
        let foot = pos[Joint::LeftFoot.index()];
        let height = head.y - foot.y + 0.15; // head joint is not the crown
        assert!((1.4..2.1).contains(&height), "height {height}");
        // Left/right symmetry.
        assert!((pos[Joint::LeftWrist.index()].x + pos[Joint::RightWrist.index()].x).abs() < 1e-5);
    }

    #[test]
    fn identity_pose_matches_rest() {
        let sk = Skeleton::neutral();
        let posed = sk.forward_kinematics(&SmplxParams::default());
        let rest = sk.rest_positions();
        for (a, b) in posed.positions().iter().zip(rest.iter()) {
            assert!((*a - *b).length() < 1e-5);
        }
    }

    #[test]
    fn elbow_rotation_moves_wrist_only() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.joint_rotations[Joint::LeftElbow.index()] =
            Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
        let posed = sk.forward_kinematics(&params);
        let rest = sk.rest_positions();
        // Shoulder unmoved.
        assert!((posed.position(Joint::LeftShoulder) - rest[Joint::LeftShoulder.index()]).length() < 1e-5);
        // Wrist displaced by roughly the forearm length.
        let moved = (posed.position(Joint::LeftWrist) - rest[Joint::LeftWrist.index()]).length();
        assert!(moved > 0.2, "wrist moved only {moved}");
        // Bone lengths preserved.
        let forearm = posed.position(Joint::LeftWrist).distance(posed.position(Joint::LeftElbow));
        let rest_forearm = rest[Joint::LeftWrist.index()].distance(rest[Joint::LeftElbow.index()]);
        assert!((forearm - rest_forearm).abs() < 1e-5);
    }

    #[test]
    fn global_rotation_spins_everything() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.joint_rotations[0] = Quat::from_axis_angle(Vec3::Y, std::f32::consts::PI);
        let posed = sk.forward_kinematics(&params);
        // The left wrist should now be on the -x side.
        assert!(posed.position(Joint::LeftWrist).x < -0.3);
    }

    #[test]
    fn betas_change_height() {
        let tall = Skeleton::from_betas(&{
            let mut b = [0.0; SHAPE_DIM];
            b[0] = 2.0;
            b
        });
        let short = Skeleton::from_betas(&{
            let mut b = [0.0; SHAPE_DIM];
            b[0] = -2.0;
            b
        });
        let h = |sk: &Skeleton| sk.rest_positions()[Joint::Head.index()].y;
        assert!(h(&tall) > h(&short) + 0.1);
    }

    #[test]
    fn translation_shifts_root() {
        let sk = Skeleton::neutral();
        let mut params = SmplxParams::default();
        params.translation = Vec3::new(1.0, 0.0, -2.0);
        let posed = sk.forward_kinematics(&params);
        let rest = sk.rest_positions();
        let delta = posed.position(Joint::Head) - rest[Joint::Head.index()];
        assert!((delta - Vec3::new(1.0, 0.0, -2.0)).length() < 1e-5);
    }

    #[test]
    fn skinning_matrices_identity_at_rest() {
        let sk = Skeleton::neutral();
        let posed = sk.forward_kinematics(&SmplxParams::default());
        let mats = posed.skinning_matrices(&sk);
        let p = Vec3::new(0.1, 1.2, 0.05);
        for m in &mats {
            assert!((m.transform_point(p) - p).length() < 1e-4);
        }
    }
}
