//! SMPL-X-like parametric human avatar.
//!
//! The paper's proof-of-concept transmits "3D pose aligned with SMPL-X" —
//! 1.91 KB per frame — and reconstructs meshes from it with X-Avatar. This
//! crate is the SMPL-X substitute: a from-scratch parametric body with the
//! same parameter layout (55-joint skeleton, 10 shape betas, 10 expression
//! coefficients), so the data-size arithmetic of Table 2 reproduces
//! faithfully, plus the machinery around it:
//!
//! - [`skeleton`] — the 55-joint kinematic tree with forward kinematics
//!   and shape-dependent bone lengths.
//! - [`params`] — [`SmplxParams`], the per-frame pose/shape/expression
//!   parameter block, and [`PosePayload`], the exact wire payload the
//!   keypoint pipeline transmits (1956 bytes ≈ 1.91 KB).
//! - [`surface`] — the posed body as an analytic SDF (capsule/rounded-cone
//!   limbs, ellipsoid head and torso) with optional cloth-detail
//!   displacement and expression bumps, standing in for X-Avatar's
//!   implicit geometry network.
//! - [`model`] — [`BodyModel`]: a fixed-topology template mesh (SMPL-X
//!   scale: ~10k vertices / ~21k faces) skinned with linear blend
//!   skinning, the "traditional communication" baseline of Table 2.
//! - [`motion`] — deterministic synthetic motion clips (talking, waving,
//!   walking) providing the capture workload for every experiment.
//! - [`landmarks`] — keypoint/landmark sets at several densities (25–244
//!   points), the semantic payload of §3.1 and ablation D.
//! - [`expression`] — a facial expression basis split into coarse and fine
//!   components, reproducing Fig. 3's observation that a learned model
//!   recovers the open mouth but misses the pout.

pub mod expression;
pub mod landmarks;
pub mod model;
pub mod motion;
pub mod params;
pub mod skeleton;
pub mod surface;

pub use expression::{ExpressionBasis, ExpressionComponent};
pub use landmarks::{LandmarkSet, StandardLandmarks};
pub use model::BodyModel;
pub use motion::{MotionClip, MotionKind, MotionSynthesizer};
pub use params::{PosePayload, SmplxParams, EXPRESSION_DIM, SHAPE_DIM};
pub use skeleton::{Joint, Skeleton, JOINT_COUNT};
pub use surface::{BodySdf, SurfaceDetail};
