//! Quality of experience: one number out of latency, delivery, quality,
//! and frame rate.
//!
//! The paper frames the goal as "the optimal balance of minimizing
//! bandwidth consumption and end-to-end latency while preserving a
//! satisfactory level of visual quality". This module condenses a
//! [`SessionReport`](crate::session::SessionReport) into a [0, 1] score
//! so ablations (foveal radius, keypoint count, ladder choice) can be
//! compared on one axis.

use crate::session::SessionReport;

/// Component weights (sum need not be 1; the score normalizes).
#[derive(Debug, Clone, Copy)]
pub struct QoeWeights {
    /// Weight of visual quality.
    pub quality: f64,
    /// Weight of latency compliance.
    pub latency: f64,
    /// Weight of frame delivery ratio.
    pub delivery: f64,
    /// Weight of sustainable frame rate.
    pub framerate: f64,
    /// Latency budget, ms (paper: 100 ms).
    pub latency_budget_ms: f64,
    /// Target frame rate (paper: 30 FPS).
    pub target_fps: f64,
    /// Chamfer distance considered "unusable", meters.
    pub chamfer_floor: f64,
}

impl Default for QoeWeights {
    fn default() -> Self {
        Self {
            quality: 1.0,
            latency: 1.0,
            delivery: 0.5,
            framerate: 1.0,
            latency_budget_ms: 100.0,
            target_fps: 30.0,
            chamfer_floor: 0.05,
        }
    }
}

/// Score a session in [0, 1].
pub fn qoe_score(report: &SessionReport, w: &QoeWeights) -> f64 {
    let total_frames = report.frames.len().max(1);
    let delivery = report.delivered as f64 / total_frames as f64;
    let latency = report.within_100ms_with_budget(w.latency_budget_ms);
    let quality = match (report.mean_chamfer, report.mean_psnr) {
        (Some(c), _) => (1.0 - c / w.chamfer_floor).clamp(0.0, 1.0),
        (None, Some(p)) => ((p - 10.0) / 25.0).clamp(0.0, 1.0),
        (None, None) => 0.5, // unmeasured: neutral
    };
    let framerate = (report.sustainable_fps / w.target_fps).clamp(0.0, 1.0);
    let total_w = w.quality + w.latency + w.delivery + w.framerate;
    (w.quality * quality + w.latency * latency + w.delivery * delivery + w.framerate * framerate)
        / total_w.max(1e-9)
}

impl SessionReport {
    /// Fraction of delivered frames under an arbitrary latency budget.
    pub fn within_100ms_with_budget(&self, budget_ms: f64) -> f64 {
        let delivered: Vec<_> = self.frames.iter().filter(|f| f.delivered).collect();
        if delivered.is_empty() {
            return 0.0;
        }
        delivered.iter().filter(|f| f.e2e_ms <= budget_ms).count() as f64 / delivered.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FrameReport;
    use holo_math::Summary;

    fn report(e2e_ms: f64, chamfer: Option<f64>, fps: f64, delivered: usize, total: usize) -> SessionReport {
        let mut frames = Vec::new();
        for i in 0..total {
            frames.push(FrameReport {
                index: i,
                payload_bytes: 1000,
                delivered: i < delivered,
                recovered: false,
                corrupt_dropped: false,
                extract_ms: 1.0,
                encode_ms: 0.1,
                network_ms: 1.0,
                reconstruct_ms: 1.0,
                render_ms: 1.0,
                e2e_ms,
                quality: None,
            });
        }
        SessionReport {
            frames,
            delivered,
            recovered: 0,
            corrupt_detected: 0,
            payload: Summary::new(),
            e2e_ms: Summary::new(),
            required_bps: 0.0,
            sustainable_fps: fps,
            mean_chamfer: chamfer,
            mean_psnr: None,
        }
    }

    #[test]
    fn perfect_session_scores_high() {
        let r = report(30.0, Some(0.002), 60.0, 10, 10);
        let s = qoe_score(&r, &QoeWeights::default());
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn slow_reconstruction_tanks_score() {
        let good = report(30.0, Some(0.005), 60.0, 10, 10);
        let slow = report(900.0, Some(0.005), 0.5, 10, 10);
        let w = QoeWeights::default();
        assert!(qoe_score(&slow, &w) < qoe_score(&good, &w) - 0.3);
    }

    #[test]
    fn bad_quality_hurts() {
        let sharp = report(30.0, Some(0.002), 60.0, 10, 10);
        let blurry = report(30.0, Some(0.08), 60.0, 10, 10);
        let w = QoeWeights::default();
        assert!(qoe_score(&blurry, &w) < qoe_score(&sharp, &w));
    }

    #[test]
    fn dropped_frames_hurt() {
        let all = report(30.0, Some(0.005), 60.0, 10, 10);
        let half = report(30.0, Some(0.005), 60.0, 5, 10);
        let w = QoeWeights::default();
        assert!(qoe_score(&half, &w) < qoe_score(&all, &w));
    }

    #[test]
    fn score_bounded() {
        for r in [
            report(1e6, Some(10.0), 0.0, 0, 10),
            report(0.0, Some(0.0), 1e6, 10, 10),
        ] {
            let s = qoe_score(&r, &QoeWeights::default());
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }
}
