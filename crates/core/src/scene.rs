//! Scene sources: the ground-truth world every pipeline observes.
//!
//! A [`SceneSource`] owns the synthesized participant (motion clip +
//! skeleton + body model + capture rig) and hands out per-frame
//! [`SceneFrame`]s. Ground-truth products (full-detail mesh, fused point
//! cloud, RGB-D captures) are computed on demand so cheap pipelines don't
//! pay for expensive captures they never use.

use crate::config::SemHoloConfig;
use holo_body::model::BodyModel;
use holo_body::motion::{MotionClip, MotionSynthesizer};
use holo_body::params::SmplxParams;
use holo_body::skeleton::Skeleton;
use holo_body::surface::{BodySdf, SurfaceDetail};
use holo_capture::rig::CaptureRig;
use holo_capture::render::RgbdFrame;
use holo_math::Pcg32;
use holo_mesh::pointcloud::PointCloud;
use holo_mesh::sparse::sparse_extract;
use holo_mesh::trimesh::TriMesh;
use std::sync::Arc;

/// Immutable per-session context shared by all frames.
pub struct SceneContext {
    /// Session configuration.
    pub config: SemHoloConfig,
    /// The (neutral-shape) skeleton.
    pub skeleton: Skeleton,
    /// The skinned parametric mesh model (SMPL-X substitute).
    pub body_model: Arc<BodyModel>,
    /// The capture rig.
    pub rig: CaptureRig,
}

/// One ground-truth frame.
pub struct SceneFrame {
    /// Frame index.
    pub index: usize,
    /// Capture timestamp, seconds.
    pub time: f64,
    /// True avatar state.
    pub params: SmplxParams,
    /// Shared context.
    pub context: Arc<SceneContext>,
}

impl SceneFrame {
    /// The ground-truth body SDF with full surface detail (cloth folds,
    /// expression bumps) — what the physical person "is".
    pub fn ground_truth_sdf(&self) -> BodySdf {
        BodySdf::from_pose(&self.context.skeleton, &self.params, SurfaceDetail::full())
    }

    /// Ground-truth mesh at a reference resolution (for quality metrics).
    pub fn ground_truth_mesh(&self, resolution: u32) -> TriMesh {
        sparse_extract(&self.ground_truth_sdf(), resolution, 0.03)
    }

    /// RGB-D captures from every rig camera (deterministic per frame).
    pub fn capture(&self) -> Vec<RgbdFrame> {
        let sdf = self.ground_truth_sdf();
        let mut rng = Pcg32::with_stream(self.context.config.seed, 0x1000 + self.index as u64);
        self.context.rig.capture(&sdf, &mut rng)
    }

    /// Fused colored point cloud from the captures.
    pub fn captured_cloud(&self) -> PointCloud {
        self.context.rig.fuse(&self.capture())
    }

    /// The posed parametric mesh (what the traditional pipeline ships).
    pub fn posed_mesh(&self) -> TriMesh {
        self.context.body_model.pose_mesh(&self.params)
    }
}

/// A deterministic stream of scene frames.
pub struct SceneSource {
    context: Arc<SceneContext>,
    clip: MotionClip,
}

impl SceneSource {
    /// Build a scene from a config: synthesizes the motion clip and the
    /// rig. `duration_s` bounds the clip length.
    pub fn new(config: &SemHoloConfig, duration_s: f32) -> Self {
        let mut synth = MotionSynthesizer::new(config.seed);
        let clip = synth.clip(config.motion, duration_s, config.fps);
        let mut rig_rng = Pcg32::with_stream(config.seed, 0xCA);
        let rig = CaptureRig::new(&config.rig_config(), &mut rig_rng);
        let context = Arc::new(SceneContext {
            config: config.clone(),
            skeleton: Skeleton::neutral(),
            body_model: BodyModel::standard(),
            rig,
        });
        Self { context, clip }
    }

    /// Number of frames available.
    pub fn len(&self) -> usize {
        self.clip.len()
    }

    /// True when the clip is empty.
    pub fn is_empty(&self) -> bool {
        self.clip.is_empty()
    }

    /// Shared context handle.
    pub fn context(&self) -> Arc<SceneContext> {
        self.context.clone()
    }

    /// Frame accessor (panics when out of range).
    pub fn frame(&self, index: usize) -> SceneFrame {
        SceneFrame {
            index,
            time: index as f64 / self.context.config.fps as f64,
            params: self.clip.frame(index).clone(),
            context: self.context.clone(),
        }
    }

    /// Iterate over the first `n` frames.
    pub fn frames(&self, n: usize) -> impl Iterator<Item = SceneFrame> + '_ {
        (0..n.min(self.len())).map(move |i| self.frame(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    #[test]
    fn scene_produces_frames() {
        let scene = small_scene();
        assert_eq!(scene.len(), 15);
        let f = scene.frame(3);
        assert_eq!(f.index, 3);
        assert!((f.time - 0.1).abs() < 1e-6);
    }

    #[test]
    fn ground_truth_mesh_plausible() {
        let scene = small_scene();
        let mesh = scene.frame(0).ground_truth_mesh(48);
        assert!(mesh.face_count() > 1000);
        assert!(mesh.validate().is_ok());
        let b = mesh.bounds();
        assert!(b.size().y > 1.2, "body height {:?}", b.size());
    }

    #[test]
    fn capture_is_deterministic_per_frame() {
        let scene = small_scene();
        let a = scene.frame(2).captured_cloud();
        let b = scene.frame(2).captured_cloud();
        assert_eq!(a.points, b.points);
        // Different frames differ.
        let c = scene.frame(10).captured_cloud();
        assert_ne!(a.points.len(), 0);
        assert!(a.points != c.points);
    }

    #[test]
    fn posed_mesh_constant_topology() {
        let scene = small_scene();
        let a = scene.frame(0).posed_mesh();
        let b = scene.frame(10).posed_mesh();
        assert_eq!(a.face_count(), b.face_count());
        assert_eq!(a.raw_size_bytes(), b.raw_size_bytes());
    }
}
