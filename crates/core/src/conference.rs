//! Multi-party telepresence: how many participants fit on a link?
//!
//! The paper's telepresence vision is not point-to-point: meetings have
//! N participants, each receiving everyone else's hologram. Without
//! multicast, a participant's access link carries one upload and N-1
//! downloads, so per-stream bandwidth multiplies into the capacity
//! question that makes or breaks the meeting: **how many people can join
//! before the link saturates?** Semantic streams (sub-Mbps) admit rooms
//! two orders of magnitude larger than mesh streams — the quantified
//! version of the paper's motivation.

use crate::error::Result;
use crate::scene::SceneSource;
use crate::semantics::SemanticPipeline;

/// Result of a conference capacity analysis.
#[derive(Debug, Clone)]
pub struct ConferenceReport {
    /// Participants simulated.
    pub participants: usize,
    /// Mean per-stream bandwidth, bps.
    pub stream_bps: f64,
    /// Per-participant download requirement (N-1 streams), bps.
    pub download_bps: f64,
    /// Whether the given access capacity fits upload + download.
    pub fits: bool,
    /// Largest participant count whose traffic fits the access capacity.
    pub max_participants: usize,
}

/// Measure a pipeline's mean stream bandwidth over `frames` frames of a
/// scene and derive conference capacity on an access link of
/// `access_bps` (SFU model: one upload, N-1 downloads per participant).
pub fn conference_capacity(
    pipeline: &mut dyn SemanticPipeline,
    scene: &SceneSource,
    frames: usize,
    participants: usize,
    access_bps: f64,
) -> Result<ConferenceReport> {
    let fps = scene.context().config.fps as f64;
    let mut total_bytes = 0usize;
    let mut n = 0usize;
    for frame in scene.frames(frames) {
        let enc = pipeline.encode(&frame)?;
        total_bytes += enc.payload.len();
        n += 1;
    }
    let mean_bytes = total_bytes as f64 / n.max(1) as f64;
    let stream_bps = mean_bytes * 8.0 * fps;
    let download_bps = stream_bps * participants.saturating_sub(1) as f64;
    let fits = stream_bps + download_bps <= access_bps;
    // Capacity: upload + (N-1) downloads <= access.
    let max_participants = if stream_bps <= 0.0 {
        usize::MAX
    } else {
        ((access_bps - stream_bps) / stream_bps).floor().max(0.0) as usize + 1
    };
    Ok(ConferenceReport {
        participants,
        stream_bps,
        download_bps,
        fits,
        max_participants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::keypoint::{KeypointConfig, KeypointPipeline};
    use crate::scene::SceneSource;
    use crate::traditional::{MeshWire, TraditionalPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.3)
    }

    #[test]
    fn semantic_rooms_are_much_larger() {
        let scene = scene();
        let broadband = 25e6;
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 1);
        let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let kp_cap = conference_capacity(&mut kp, &scene, 5, 4, broadband).unwrap();
        let trad_cap = conference_capacity(&mut trad, &scene, 5, 4, broadband).unwrap();
        assert!(
            kp_cap.max_participants > trad_cap.max_participants * 10,
            "semantic {} vs traditional {} participants",
            kp_cap.max_participants,
            trad_cap.max_participants
        );
        // The paper's broadband regime: compressed mesh fits only a
        // handful of peers.
        assert!(trad_cap.max_participants < 6, "mesh room {}", trad_cap.max_participants);
        assert!(kp_cap.max_participants > 30, "semantic room {}", kp_cap.max_participants);
    }

    #[test]
    fn download_scales_with_room_size() {
        let scene = scene();
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 2);
        let small = conference_capacity(&mut kp, &scene, 3, 2, 25e6).unwrap();
        let mut kp2 = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 2);
        let large = conference_capacity(&mut kp2, &scene, 3, 10, 25e6).unwrap();
        assert!(large.download_bps > small.download_bps * 4.0);
        assert!(small.fits);
    }

    #[test]
    fn raw_mesh_conference_does_not_fit_broadband() {
        let scene = scene();
        let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
        let cap = conference_capacity(&mut raw, &scene, 2, 3, 25e6).unwrap();
        assert!(!cap.fits, "raw mesh 3-way call cannot fit 25 Mbps");
        assert_eq!(cap.max_participants, 1, "raw mesh fits nobody else");
    }
}
