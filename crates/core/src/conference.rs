//! Multi-party telepresence: how many participants fit on a link?
//!
//! The paper's telepresence vision is not point-to-point: meetings have
//! N participants, each receiving everyone else's hologram. Without
//! multicast, a participant's access link carries one upload and N-1
//! downloads, so per-stream bandwidth multiplies into the capacity
//! question that makes or breaks the meeting: **how many people can join
//! before the link saturates?** Semantic streams (sub-Mbps) admit rooms
//! two orders of magnitude larger than mesh streams — the quantified
//! version of the paper's motivation.

use crate::error::Result;
use crate::scene::SceneSource;
use crate::semantics::SemanticPipeline;

/// Result of a conference capacity analysis.
#[derive(Debug, Clone)]
pub struct ConferenceReport {
    /// Participants simulated.
    pub participants: usize,
    /// Mean per-stream bandwidth, bps.
    pub stream_bps: f64,
    /// Per-participant download requirement (N-1 streams), bps.
    pub download_bps: f64,
    /// Whether the given access capacity fits upload + download.
    pub fits: bool,
    /// Largest participant count whose traffic fits the access capacity.
    /// Follows the 0-participant convention of
    /// [`closed_form_max_participants`]: 0 when even the lone upload
    /// saturates the link (the room holds nobody, not one person).
    pub max_participants: usize,
}

/// Closed-form room capacity: the largest N such that one upload plus
/// N-1 downloads of `stream_bps` fit on `access_bps` (SFU topology).
///
/// **The 0-participant convention:** when the single upload alone
/// exceeds the access link the room holds *nobody* — the function
/// returns 0, never 1. (The pre-PR-2 `.max(0) + 1` formula could not
/// express an empty room and misreported saturating streams as a
/// room of one.) A free stream (`stream_bps <= 0`) has unbounded
/// capacity: `usize::MAX`.
pub fn closed_form_max_participants(stream_bps: f64, access_bps: f64) -> usize {
    if stream_bps <= 0.0 {
        return usize::MAX;
    }
    if stream_bps > access_bps {
        // The upload alone does not fit: the room holds nobody.
        return 0;
    }
    ((access_bps - stream_bps) / stream_bps).floor().max(0.0) as usize + 1
}

/// Closed-form capacity of one room *spanning a fleet* of `nodes`
/// cascaded SFUs with participants spread evenly across them. The
/// cascade invariant makes the arithmetic: each publisher's stream
/// crosses each directed inter-SFU link **once** (one copy per remote
/// SFU, not per remote subscriber), so a directed cascade link out of
/// a node carries exactly that node's publishers. The bound is the
/// largest N such that
///
/// 1. every participant's access link carries one upload plus N-1
///    downloads of `stream_bps` (the
///    [`closed_form_max_participants`] bound), and
/// 2. every directed cascade link carries its source node's
///    `ceil(N / nodes)` publisher streams within `cascade_bps`.
///
/// Conventions mirror [`closed_form_max_participants`]: the result is
/// **0** (an empty fleet, never a room of one) when `nodes == 0`,
/// when a single stream saturates the access link, or when — with
/// more than one node — a single stream saturates a cascade link (a
/// spanning room cannot exist). A free stream is unbounded:
/// `usize::MAX`. With `nodes == 1` there is no cascade and the bound
/// reduces exactly to the single-SFU closed form.
pub fn closed_form_fleet_capacity(
    nodes: usize,
    cascade_bps: f64,
    access_bps: f64,
    stream_bps: f64,
) -> usize {
    if nodes == 0 {
        return 0;
    }
    if stream_bps <= 0.0 {
        return usize::MAX;
    }
    let access_bound = closed_form_max_participants(stream_bps, access_bps);
    if access_bound == 0 || nodes == 1 {
        return access_bound;
    }
    // Per-node publisher budget on each directed cascade link.
    let per_node = (cascade_bps / stream_bps).floor().max(0.0) as usize;
    if per_node == 0 {
        // The cascade cannot carry even one stream: no spanning room.
        return 0;
    }
    access_bound.min(per_node.saturating_mul(nodes))
}

/// Simulation-backed room capacity: the largest N in `[2, cap]` for
/// which the caller's oracle reports that an N-person room still meets
/// its quality bar. The oracle runs a real (virtual-time) room
/// simulation — `holo-conf` provides one — so the answer reflects
/// queueing, loss coupling, and per-subscriber adaptation that the
/// closed-form mean-bandwidth bound cannot see. Assumes `fits` is
/// monotone in N (a bigger room never fits when a smaller one failed);
/// probes by doubling, then bisects. Returns 1 when even a 2-person
/// room fails (you can always sit alone), and `cap` when every probed
/// size fits.
pub fn simulated_max_participants(cap: usize, mut fits: impl FnMut(usize) -> bool) -> usize {
    let cap = cap.max(2);
    if !fits(2) {
        return 1;
    }
    // Doubling phase: find the first failing size.
    let mut lo = 2usize; // largest known-fitting size
    let mut hi = None; // smallest known-failing size
    let mut probe = 4usize;
    while probe < cap {
        if fits(probe) {
            lo = probe;
            probe *= 2;
        } else {
            hi = Some(probe);
            break;
        }
    }
    let mut hi = match hi {
        Some(h) => h,
        None => {
            if fits(cap) {
                return cap;
            }
            cap
        }
    };
    // Bisection on [lo, hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The closed-form bound next to the simulated measurement, with the
/// gap the mean-bandwidth arithmetic leaves on the table.
#[derive(Debug, Clone, Copy)]
pub struct CapacityComparison {
    /// The closed-form bound from mean stream bandwidth.
    pub closed_form: usize,
    /// The empirically measured max room size.
    pub simulated: usize,
    /// `simulated as f64 / closed_form as f64` (1.0 when both are 0).
    pub ratio: f64,
}

/// Compare the closed-form bound against a simulated measurement.
pub fn compare_capacity(closed_form: usize, simulated: usize) -> CapacityComparison {
    let ratio = if closed_form == 0 {
        if simulated == 0 { 1.0 } else { f64::INFINITY }
    } else {
        simulated as f64 / closed_form as f64
    };
    CapacityComparison { closed_form, simulated, ratio }
}

/// Measure a pipeline's mean stream bandwidth over `frames` frames of a
/// scene and derive conference capacity on an access link of
/// `access_bps` (SFU model: one upload, N-1 downloads per participant).
pub fn conference_capacity(
    pipeline: &mut dyn SemanticPipeline,
    scene: &SceneSource,
    frames: usize,
    participants: usize,
    access_bps: f64,
) -> Result<ConferenceReport> {
    let fps = scene.context().config.fps as f64;
    let mut total_bytes = 0usize;
    let mut n = 0usize;
    for frame in scene.frames(frames) {
        let enc = pipeline.encode(&frame)?;
        total_bytes += enc.payload.len();
        n += 1;
    }
    let mean_bytes = total_bytes as f64 / n.max(1) as f64;
    let stream_bps = mean_bytes * 8.0 * fps;
    let download_bps = stream_bps * participants.saturating_sub(1) as f64;
    let fits = stream_bps + download_bps <= access_bps;
    // Capacity: upload + (N-1) downloads <= access.
    let max_participants = closed_form_max_participants(stream_bps, access_bps);
    Ok(ConferenceReport {
        participants,
        stream_bps,
        download_bps,
        fits,
        max_participants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::keypoint::{KeypointConfig, KeypointPipeline};
    use crate::scene::SceneSource;
    use crate::traditional::{MeshWire, TraditionalPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.3)
    }

    #[test]
    fn semantic_rooms_are_much_larger() {
        let scene = scene();
        let broadband = 25e6;
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 1);
        let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let kp_cap = conference_capacity(&mut kp, &scene, 5, 4, broadband).unwrap();
        let trad_cap = conference_capacity(&mut trad, &scene, 5, 4, broadband).unwrap();
        assert!(
            kp_cap.max_participants > trad_cap.max_participants * 10,
            "semantic {} vs traditional {} participants",
            kp_cap.max_participants,
            trad_cap.max_participants
        );
        // The paper's broadband regime: compressed mesh fits only a
        // handful of peers.
        assert!(trad_cap.max_participants < 6, "mesh room {}", trad_cap.max_participants);
        assert!(kp_cap.max_participants > 30, "semantic room {}", kp_cap.max_participants);
    }

    #[test]
    fn download_scales_with_room_size() {
        let scene = scene();
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 2);
        let small = conference_capacity(&mut kp, &scene, 3, 2, 25e6).unwrap();
        let mut kp2 = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 2);
        let large = conference_capacity(&mut kp2, &scene, 3, 10, 25e6).unwrap();
        assert!(large.download_bps > small.download_bps * 4.0);
        assert!(small.fits);
    }

    #[test]
    fn raw_mesh_conference_does_not_fit_broadband() {
        let scene = scene();
        let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
        let cap = conference_capacity(&mut raw, &scene, 2, 3, 25e6).unwrap();
        assert!(!cap.fits, "raw mesh 3-way call cannot fit 25 Mbps");
        // The raw mesh upload alone exceeds 25 Mbps: the room holds
        // nobody, not one person (regression for the old `.max(0)+1`
        // formula that could never report 0).
        assert!(cap.stream_bps > 25e6, "premise: raw mesh stream saturates the link");
        assert_eq!(cap.max_participants, 0, "saturating upload means capacity 0");
    }

    #[test]
    fn closed_form_edge_cases() {
        // Stream wider than the access link: 0, not 1.
        assert_eq!(closed_form_max_participants(30e6, 25e6), 0);
        // Exactly the access rate: the lone uploader fits.
        assert_eq!(closed_form_max_participants(25e6, 25e6), 1);
        // 1 upload + 4 downloads of 5 Mbps fill 25 Mbps.
        assert_eq!(closed_form_max_participants(5e6, 25e6), 5);
        // A free stream has unbounded capacity.
        assert_eq!(closed_form_max_participants(0.0, 25e6), usize::MAX);
    }

    #[test]
    fn fleet_closed_form_edge_cases() {
        // No nodes, no room.
        assert_eq!(closed_form_fleet_capacity(0, 1e9, 25e6, 5e6), 0);
        // Free streams are unbounded.
        assert_eq!(closed_form_fleet_capacity(4, 1e9, 25e6, 0.0), usize::MAX);
        // One node reduces to the single-SFU closed form.
        assert_eq!(
            closed_form_fleet_capacity(1, 1e9, 25e6, 5e6),
            closed_form_max_participants(5e6, 25e6)
        );
        // A stream wider than the access link holds nobody (the PR 2
        // convention), regardless of cascade headroom.
        assert_eq!(closed_form_fleet_capacity(4, 1e12, 25e6, 30e6), 0);
        // A stream wider than the cascade cannot span nodes at all.
        assert_eq!(closed_form_fleet_capacity(4, 1e6, 1e9, 5e6), 0);
    }

    #[test]
    fn fleet_closed_form_cascade_binds_before_access() {
        // 5 Mbps streams on 1 Gbps access: the access side would fit
        // 200 participants. But a 25 Mbps cascade carries only 5
        // publishers per node: 4 nodes cap the spanning room at 20.
        assert_eq!(closed_form_fleet_capacity(4, 25e6, 1e9, 5e6), 20);
        // Doubling the fleet doubles the cascade-bound capacity until
        // the access bound takes over.
        assert_eq!(closed_form_fleet_capacity(8, 25e6, 1e9, 5e6), 40);
        let access_bound = closed_form_max_participants(5e6, 1e9);
        assert_eq!(closed_form_fleet_capacity(64, 25e6, 1e9, 5e6), access_bound);
    }

    #[test]
    fn simulated_search_matches_oracle_threshold() {
        // An oracle with a crisp threshold: rooms of <= 23 fit.
        let mut probes = Vec::new();
        let max = simulated_max_participants(256, |n| {
            probes.push(n);
            n <= 23
        });
        assert_eq!(max, 23);
        // Logarithmic probe count, not a linear scan.
        assert!(probes.len() <= 16, "probes {probes:?}");

        assert_eq!(simulated_max_participants(256, |n| n <= 2), 2);
        assert_eq!(simulated_max_participants(256, |_| false), 1);
        assert_eq!(simulated_max_participants(64, |_| true), 64);
    }

    #[test]
    fn capacity_comparison_ratio() {
        let c = compare_capacity(200, 150);
        assert_eq!(c.closed_form, 200);
        assert_eq!(c.simulated, 150);
        assert!((c.ratio - 0.75).abs() < 1e-12);
        assert!(compare_capacity(0, 5).ratio.is_infinite());
        assert_eq!(compare_capacity(0, 0).ratio, 1.0);
    }
}
