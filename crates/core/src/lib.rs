//! **SemHolo** — semantic-driven holographic communication for immersive
//! telepresence.
//!
//! This crate is the primary contribution of the HotNets '23 paper
//! "Enriching Telepresence with Semantic-driven Holographic
//! Communication" (Cheng, Liu, Wu, Han), rebuilt as a working system on
//! the substrate crates of this workspace. Instead of shipping volumetric
//! content bit by bit, a SemHolo sender extracts *semantics* — keypoints,
//! 2D images, or text — and the receiver reconstructs the sender's
//! hologram from them.
//!
//! # Architecture (paper Fig. 1)
//!
//! ```text
//!  capture (RGB-D rig) ──► semantic extraction ──► compression ──►
//!    Internet (simulated link) ──► reconstruction (edge GPU model) ──► render
//! ```
//!
//! Four interchangeable pipelines implement [`SemanticPipeline`]:
//!
//! - [`traditional`] — the baseline: the full posed mesh, raw or
//!   Draco-style compressed (Table 2's "traditional communication").
//! - [`keypoint`] — the paper's proof-of-concept: detect 3D keypoints,
//!   fit SMPL-X parameters, ship 1.91 KB/frame, reconstruct the body as
//!   an implicit surface and re-mesh it at a chosen resolution (§3.1,
//!   §4).
//! - [`image`] — NeRF-based image semantics with pre-train + per-frame
//!   fine-tuning and bandwidth-adaptive resolution (§3.2).
//! - [`text`] — VQ-token "text" semantics with temporal deltas and
//!   global+local channels (§3.3).
//!
//! Plus the research-agenda hybrid:
//!
//! - [`foveated`] — gaze-contingent hybrid: full mesh for the foveal
//!   region, keypoints for the periphery (§3.1).
//!
//! [`session`] wires any pipeline to the simulated network and the GPU
//! cost model and produces per-frame latency/bandwidth/quality reports;
//! [`qoe`] condenses them into a quality-of-experience score;
//! [`conference`] answers the multi-party capacity question (how many
//! participants fit on a broadband link per semantics type).

pub mod conference;
pub mod config;
pub mod error;
pub mod foveated;
pub mod image;
pub mod keypoint;
pub mod qoe;
pub mod scene;
pub mod semantics;
pub mod session;
pub mod text;
pub mod traditional;

pub use conference::{
    closed_form_max_participants, compare_capacity, conference_capacity,
    simulated_max_participants, CapacityComparison, ConferenceReport,
};
pub use config::SemHoloConfig;
pub use error::SemHoloError;
pub use foveated::FoveatedPipeline;
pub use image::ImagePipeline;
pub use keypoint::KeypointPipeline;
pub use qoe::{qoe_score, QoeWeights};
pub use scene::{SceneContext, SceneFrame, SceneSource};
pub use semantics::{Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
pub use session::{FrameReport, Session, SessionReport};
pub use text::TextPipeline;
pub use traditional::TraditionalPipeline;
