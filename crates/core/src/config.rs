//! Configuration.

use holo_body::motion::MotionKind;
use holo_capture::camera::CameraIntrinsics;
use holo_capture::rig::RigConfig;

/// Top-level configuration shared by pipelines and sessions.
#[derive(Debug, Clone)]
pub struct SemHoloConfig {
    /// Capture/display frame rate.
    pub fps: f32,
    /// Marching-cubes resolution for keypoint reconstruction (the paper
    /// sweeps 128, 256, 512, 1024).
    pub reconstruction_resolution: u32,
    /// Mesh codec quantization bits (Draco-style, default 14).
    pub mesh_quantization_bits: u32,
    /// Motion the captured participant performs.
    pub motion: MotionKind,
    /// Master seed; every stochastic component forks from it.
    pub seed: u64,
    /// Cameras in the capture ring.
    pub camera_count: usize,
    /// Per-camera capture resolution (width, height).
    pub capture_resolution: (u32, u32),
}

impl Default for SemHoloConfig {
    fn default() -> Self {
        Self {
            fps: 30.0,
            reconstruction_resolution: 128,
            mesh_quantization_bits: 14,
            motion: MotionKind::Talking,
            seed: 42,
            camera_count: 4,
            capture_resolution: (96, 72),
        }
    }
}

impl SemHoloConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(1.0..=240.0).contains(&self.fps) {
            return Err(format!("fps {} out of range", self.fps));
        }
        if !(8..=2048).contains(&self.reconstruction_resolution) {
            return Err(format!("resolution {} out of range", self.reconstruction_resolution));
        }
        if !(4..=20).contains(&self.mesh_quantization_bits) {
            return Err(format!("quantization bits {} out of range", self.mesh_quantization_bits));
        }
        if self.camera_count == 0 {
            return Err("need at least one camera".into());
        }
        Ok(())
    }

    /// Rig configuration derived from this config.
    pub fn rig_config(&self) -> RigConfig {
        RigConfig {
            camera_count: self.camera_count,
            intrinsics: CameraIntrinsics::from_fov(
                self.capture_resolution.0,
                self.capture_resolution.1,
                1.1,
            ),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SemHoloConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let mut c = SemHoloConfig::default();
        c.fps = 0.0;
        assert!(c.validate().is_err());
        let mut c = SemHoloConfig::default();
        c.reconstruction_resolution = 4;
        assert!(c.validate().is_err());
        let mut c = SemHoloConfig::default();
        c.camera_count = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rig_config_reflects_settings() {
        let mut c = SemHoloConfig::default();
        c.camera_count = 6;
        c.capture_resolution = (128, 96);
        let rig = c.rig_config();
        assert_eq!(rig.camera_count, 6);
        assert_eq!(rig.intrinsics.width, 128);
    }
}
