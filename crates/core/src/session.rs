//! End-to-end sessions: pipeline x network x edge devices.
//!
//! A [`Session`] runs a semantic pipeline over a scene, shipping every
//! frame through the simulated bottleneck link and charging extraction
//! and reconstruction to the configured edge devices via the GPU cost
//! model. The per-frame output is exactly what the paper's evaluation
//! needs: payload size (bandwidth), end-to-end latency against the
//! 100 ms interactivity budget, sustained FPS capability, and visual
//! quality.

use crate::error::{reject_decode, Result, SemHoloError};
use crate::semantics::{QualityReport, SemanticKind, SemanticPipeline};
use crate::scene::SceneSource;
use holo_gpu::Device;
use holo_math::Summary;
use holo_net::fault::FaultClock;
use holo_net::link::{Link, LinkConfig};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy, MTU_PAYLOAD};
use holo_net::wire::{PayloadKind, WireFrame};
use holo_runtime::bytes::Bytes;
use holo_trace::TraceReport;
use std::path::Path;
use std::time::Duration;

/// Which wire payload tag a semantic pipeline's frames travel under.
pub fn payload_kind_for(kind: SemanticKind) -> PayloadKind {
    match kind {
        SemanticKind::Keypoint => PayloadKind::Keypoints,
        SemanticKind::Image => PayloadKind::Image,
        SemanticKind::Text => PayloadKind::Text,
        SemanticKind::Traditional | SemanticKind::FoveatedHybrid => PayloadKind::Mesh,
        SemanticKind::Gaussian => PayloadKind::GaussianUpdate,
    }
}

/// Session parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The network between the two sites.
    pub link: LinkConfig,
    /// Bandwidth trace of the bottleneck.
    pub trace: BandwidthTrace,
    /// Device running sender-side extraction.
    pub sender_device: Device,
    /// Device running receiver-side reconstruction.
    pub receiver_device: Device,
    /// Fixed render/display overhead added to every frame.
    pub render_overhead: Duration,
    /// Evaluate quality every N frames. Quality evaluation is by far
    /// the most expensive per-frame step (it samples and compares whole
    /// surfaces), so it is opt-in: the conventional value `0` means
    /// **disabled** — no frame is ever sampled and the report's quality
    /// fields stay `None`. Any N > 0 samples frames whose index is a
    /// multiple of N (frame 0 included).
    pub quality_every: usize,
    /// Network seed.
    pub seed: u64,
    /// Loss-recovery policy on the transport.
    pub loss_policy: LossPolicy,
    /// Optional fault schedule installed on the link (see
    /// `holo_net::fault`): burst loss, bandwidth collapses, flaps,
    /// delay spikes — all replayed deterministically from the seed.
    pub fault: Option<FaultClock>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            link: LinkConfig::default(),
            trace: BandwidthTrace::Constant { bps: 100e6 },
            sender_device: Device::a100(),
            receiver_device: Device::a100(),
            render_overhead: Duration::from_millis(11),
            quality_every: 0,
            seed: 1,
            loss_policy: LossPolicy::RetransmitOnce,
            fault: None,
        }
    }
}

/// Per-frame outcome, with the full five-stage breakdown the paper's
/// evaluation is built around (extract / encode / transmit / decode /
/// render — Figs. 2–4 are all about where these milliseconds go).
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Frame index.
    pub index: usize,
    /// Payload bytes on the wire.
    pub payload_bytes: usize,
    /// Whether the frame arrived complete.
    pub delivered: bool,
    /// Whether delivery needed loss recovery (at least one fragment was
    /// retransmitted).
    pub recovered: bool,
    /// Whether the frame arrived but its envelope checksum exposed
    /// payload corruption, so it was dropped before decode (counts as
    /// not delivered).
    pub corrupt_dropped: bool,
    /// Total sender-side time (modeled extraction, including the
    /// payload-serialization tail reported in `encode_ms`).
    pub extract_ms: f64,
    /// Payload serialization/compression slice of `extract_ms`
    /// (modeled at 1 GB/s over the payload bytes, clamped to the
    /// extraction time).
    pub encode_ms: f64,
    /// Network time (send start to last fragment).
    pub network_ms: f64,
    /// Reconstruction time (modeled).
    pub reconstruct_ms: f64,
    /// Render/display overhead (NaN when the frame never arrived).
    pub render_ms: f64,
    /// Total end-to-end latency including render overhead.
    pub e2e_ms: f64,
    /// Quality, when sampled this frame.
    pub quality: Option<QualityReport>,
}

impl FrameReport {
    /// The five pipeline stages as disjoint `(name, ms)` slices that
    /// sum to `e2e_ms` for delivered frames (`extract` here excludes
    /// the `encode` tail; the stored `extract_ms` includes it).
    pub fn stages(&self) -> [(&'static str, f64); 5] {
        [
            ("extract", self.extract_ms - self.encode_ms),
            ("encode", self.encode_ms),
            ("transmit", self.network_ms),
            ("decode", self.reconstruct_ms),
            ("render", self.render_ms),
        ]
    }
}

/// Aggregated session outcome.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Per-frame reports.
    pub frames: Vec<FrameReport>,
    /// Delivered frame count.
    pub delivered: usize,
    /// Frames that arrived complete only thanks to retransmission.
    pub recovered: usize,
    /// Frames whose envelope CRC detected payload corruption (dropped
    /// before decode rather than rendered from garbage bytes).
    pub corrupt_detected: usize,
    /// Payload size summary (bytes).
    pub payload: Summary,
    /// End-to-end latency summary (ms) over delivered frames.
    pub e2e_ms: Summary,
    /// Mean required bandwidth at the session frame rate, bps.
    pub required_bps: f64,
    /// FPS the pipeline can sustain (bounded by the slower of extract
    /// and reconstruct, assuming stage pipelining).
    pub sustainable_fps: f64,
    /// Mean quality over sampled frames.
    pub mean_chamfer: Option<f64>,
    /// Mean PSNR over sampled frames (image pipeline).
    pub mean_psnr: Option<f64>,
}

impl SessionReport {
    /// Fraction of delivered frames meeting the paper's 100 ms budget.
    pub fn within_100ms(&self) -> f64 {
        let delivered: Vec<&FrameReport> = self.frames.iter().filter(|f| f.delivered).collect();
        if delivered.is_empty() {
            return 0.0;
        }
        delivered.iter().filter(|f| f.e2e_ms <= 100.0).count() as f64 / delivered.len() as f64
    }

    /// Per-frame SLO observations at the given capture rate: capture
    /// instant in virtual µs plus the integer-µs end-to-end latency for
    /// delivered frames (`None` for lost or corrupt-dropped frames).
    pub fn slo_obs(&self, fps: f64) -> Vec<holo_obs::FrameObs> {
        self.frames
            .iter()
            .map(|f| holo_obs::FrameObs {
                at_us: SimTime::from_secs_f64(f.index as f64 / fps).0,
                e2e_us: f
                    .delivered
                    .then(|| (f.e2e_ms * 1_000.0).round() as u64),
                tier: "",
            })
            .collect()
    }

    /// Evaluate a declarative SLO over this run in virtual time.
    pub fn slo(&self, spec: &holo_obs::SloSpec, fps: f64) -> holo_obs::SloVerdict {
        spec.evaluate_frames(&self.slo_obs(fps))
    }
}

/// A running session.
pub struct Session {
    /// Configuration.
    pub config: SessionConfig,
    transport: FrameTransport,
}

impl Session {
    /// Create a session over the configured link.
    pub fn new(config: SessionConfig) -> Self {
        let mut link = Link::new(config.link.clone(), config.trace.clone(), config.seed);
        if let Some(f) = &config.fault {
            link.set_fault(f.clone());
        }
        let transport = FrameTransport::new(link, config.loss_policy);
        Self { config, transport }
    }

    /// Run `frames` frames of `scene` through `pipeline`.
    pub fn run(
        &mut self,
        pipeline: &mut dyn SemanticPipeline,
        scene: &SceneSource,
        frames: usize,
    ) -> Result<SessionReport> {
        let fps = scene.context().config.fps as f64;
        let mut report = SessionReport {
            payload: Summary::new(),
            e2e_ms: Summary::with_samples(),
            ..Default::default()
        };
        let mut extract_s = Summary::new();
        let mut recon_s = Summary::new();
        let mut chamfer = Summary::new();
        let mut psnr = Summary::new();
        let tracing = holo_trace::enabled();
        let wire_kind = payload_kind_for(pipeline.kind());
        for frame in scene.frames(frames) {
            let capture_t = frame.time;
            let encoded = pipeline.encode(&frame)?;
            let extract = encoded.extract.time_on(&self.config.sender_device)?;
            extract_s.record(extract.as_secs_f64());
            let send_at = SimTime::from_secs_f64(capture_t + extract.as_secs_f64());
            // Every frame crosses the link inside the versioned,
            // checksummed envelope; receivers validate before decode.
            let envelope =
                WireFrame::new(wire_kind, frame.index as u64, encoded.payload.clone()).encode();
            let wire_len = envelope.len();
            let tx = self.transport.send_frame(Bytes::from(envelope.clone()), send_at);
            // Virtual stage boundaries in microseconds. The encode slice
            // is the payload-serialization tail of extraction, modeled
            // at 1 GB/s (1 byte/ns) and clamped into the extract window.
            let capture_us = SimTime::from_secs_f64(capture_t).0;
            let send_us = send_at.0;
            let encode_us = (wire_len as u64 / 1000).min(send_us - capture_us);
            if tracing {
                holo_trace::span_enter_frame("frame", capture_us, frame.index as u64);
                holo_trace::span_enter("extract", capture_us);
                holo_trace::span_exit(send_us - encode_us);
                holo_trace::span_enter("encode", send_us - encode_us);
                holo_trace::span_exit(send_us);
                holo_trace::span_enter("transmit", send_us);
                holo_trace::span_exit(tx.completed_at.map_or(send_us, |t| t.0));
                holo_trace::counter("session.frames", 1);
                holo_trace::histogram("session.payload_bytes", wire_len as f64);
            }
            // A clean delivery sends exactly one fragment per MTU
            // chunk; anything beyond that was a retransmission.
            let clean_packets = wire_len.div_ceil(MTU_PAYLOAD).max(1) as u32;
            let recovered = tx.complete && tx.packets_sent > clean_packets;
            // A delivered frame may still carry corrupted bytes; the
            // fault clock decides, and the flipped bit position is
            // drawn deterministically from its per-event seed.
            let corrupted_bytes = if tx.complete {
                self.transport
                    .link
                    .corrupt_roll(tx.completed_at.expect("complete implies arrival"))
                    .map(|event_seed| {
                        let mut bytes = envelope.clone();
                        let bit = (event_seed % (bytes.len() as u64 * 8)) as usize;
                        bytes[bit / 8] ^= 1 << (bit % 8);
                        bytes
                    })
            } else {
                None
            };
            let corrupt_dropped = match &corrupted_bytes {
                Some(bytes) => WireFrame::decode(bytes).is_err(),
                None => false,
            };
            let mut fr = FrameReport {
                index: frame.index,
                payload_bytes: wire_len,
                delivered: tx.complete && !corrupt_dropped,
                recovered,
                corrupt_dropped,
                extract_ms: extract.as_secs_f64() * 1000.0,
                encode_ms: encode_us as f64 / 1000.0,
                network_ms: tx.latency.map_or(f64::NAN, |l| l.as_secs_f64() * 1000.0),
                reconstruct_ms: f64::NAN,
                render_ms: f64::NAN,
                e2e_ms: f64::NAN,
                quality: None,
            };
            report.payload.record(wire_len as f64);
            if corrupt_dropped {
                report.corrupt_detected += 1;
                if tracing {
                    holo_trace::span_exit(tx.completed_at.expect("complete implies arrival").0);
                    holo_trace::counter("session.frames_corrupt_detected", 1);
                }
                report.frames.push(fr);
                continue;
            }
            if tx.complete {
                let received = WireFrame::decode(&envelope).map_err(reject_decode)?;
                if received.kind != wire_kind {
                    return Err(SemHoloError::Codec(format!(
                        "wire kind {} does not match pipeline {}",
                        received.kind.name(),
                        wire_kind.name()
                    )));
                }
                let reconstructed = pipeline.decode(&received.payload)?;
                let recon = reconstructed.recon.time_on(&self.config.receiver_device)?;
                recon_s.record(recon.as_secs_f64());
                fr.reconstruct_ms = recon.as_secs_f64() * 1000.0;
                fr.render_ms = self.config.render_overhead.as_secs_f64() * 1000.0;
                fr.e2e_ms = fr.extract_ms + fr.network_ms + fr.reconstruct_ms + fr.render_ms;
                report.e2e_ms.record(fr.e2e_ms);
                report.delivered += 1;
                if recovered {
                    report.recovered += 1;
                    if tracing {
                        holo_trace::counter("session.frames_recovered", 1);
                    }
                }
                if tracing {
                    let arrival_us = tx.completed_at.expect("complete implies arrival").0;
                    let recon_end = arrival_us + recon.as_micros() as u64;
                    let render_end = recon_end + self.config.render_overhead.as_micros() as u64;
                    holo_trace::span_enter("decode", arrival_us);
                    holo_trace::span_exit(recon_end);
                    holo_trace::span_enter("render", recon_end);
                    holo_trace::span_exit(render_end);
                    holo_trace::span_exit(render_end); // "frame"
                    holo_trace::counter("session.frames_delivered", 1);
                    holo_trace::histogram("session.e2e_ms", fr.e2e_ms);
                }
                if self.config.quality_every > 0 && frame.index % self.config.quality_every == 0 {
                    let q = pipeline.quality(&frame, &reconstructed.content);
                    if let Some(c) = q.chamfer {
                        chamfer.record(c as f64);
                    }
                    if let Some(p) = q.psnr_db {
                        if p.is_finite() {
                            psnr.record(p);
                        }
                    }
                    fr.quality = Some(q);
                }
            } else if tracing {
                holo_trace::span_exit(send_us); // "frame" (never arrived)
                holo_trace::counter("session.frames_dropped", 1);
            }
            report.frames.push(fr);
        }
        report.required_bps = report.payload.mean() * 8.0 * fps;
        let stage = extract_s.mean().max(recon_s.mean());
        report.sustainable_fps = if stage > 0.0 { 1.0 / stage } else { f64::INFINITY };
        report.mean_chamfer = (chamfer.count() > 0).then(|| chamfer.mean());
        report.mean_psnr = (psnr.count() > 0).then(|| psnr.mean());
        Ok(report)
    }

    /// Run with tracing force-enabled and export the evidence: writes a
    /// `chrome://tracing`-compatible trace-event JSON to `trace_path`
    /// (stamped in virtual `SimTime`, so the bytes are identical for
    /// identical seeds) and returns the per-stage [`TraceReport`]
    /// alongside the usual [`SessionReport`]. The recorder is reset at
    /// entry and the previous enable state is restored at exit.
    pub fn run_traced(
        &mut self,
        pipeline: &mut dyn SemanticPipeline,
        scene: &SceneSource,
        frames: usize,
        trace_path: &Path,
    ) -> Result<(SessionReport, TraceReport)> {
        let was_enabled = holo_trace::enabled();
        holo_trace::enable();
        holo_trace::reset();
        let outcome = self.run(pipeline, scene, frames);
        let trace_report = holo_trace::trace_report();
        let chrome = holo_trace::chrome_trace();
        if !was_enabled {
            holo_trace::disable();
        }
        let report = outcome?;
        std::fs::write(trace_path, chrome.as_bytes()).map_err(|e| {
            SemHoloError::Config(format!("cannot write trace {}: {e}", trace_path.display()))
        })?;
        Ok((report, trace_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::keypoint::{KeypointConfig, KeypointPipeline};
    use crate::scene::SceneSource;
    use crate::traditional::{MeshWire, TraditionalPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn broadband_session() -> Session {
        Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 25e6 },
            quality_every: 0,
            ..Default::default()
        })
    }

    #[test]
    fn keypoint_session_under_bandwidth_budget() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 10).unwrap();
        assert_eq!(report.frames.len(), 10);
        assert!(report.delivered >= 9);
        // Pose payloads: well under 1 Mbps at 30 FPS.
        assert!(report.required_bps < 1e6, "keypoint bw {}", report.required_bps);
    }

    #[test]
    fn traditional_raw_needs_far_more_bandwidth() {
        let scene = scene();
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
        let mut trad = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut s1 = broadband_session();
        let mut s2 = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 1e9 },
            ..Default::default()
        });
        let kp_report = s1.run(&mut kp, &scene, 5).unwrap();
        let trad_report = s2.run(&mut trad, &scene, 5).unwrap();
        let factor = trad_report.required_bps / kp_report.required_bps;
        assert!(factor > 50.0, "traditional/keypoint bandwidth factor {factor:.0}");
    }

    #[test]
    fn keypoint_reconstruction_breaks_latency_budget() {
        // The paper's core negative result: even on an A100 the keypoint
        // reconstruction is nowhere near 30 FPS.
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 128, ..Default::default() }, 5);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 3).unwrap();
        assert!(report.sustainable_fps < 5.0, "fps {}", report.sustainable_fps);
        assert!(report.within_100ms() < 0.5, "latency budget unexpectedly met");
    }

    #[test]
    fn traditional_on_fat_link_has_low_network_latency() {
        // Traditional's problem is bandwidth, not per-frame network
        // latency once the link is fat enough. (End-to-end time includes
        // our real codec wall-clock, which varies with build profile, so
        // the assertion targets the network component.)
        let scene = scene();
        let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let mut session = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 200e6 },
            ..Default::default()
        });
        let report = session.run(&mut trad, &scene, 5).unwrap();
        assert_eq!(report.delivered, 5);
        for f in &report.frames {
            assert!(f.network_ms < 50.0, "network {} ms", f.network_ms);
        }
    }

    #[test]
    fn stage_breakdown_tiles_e2e() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 4).unwrap();
        for f in report.frames.iter().filter(|f| f.delivered) {
            let sum: f64 = f.stages().iter().map(|(_, ms)| ms).sum();
            assert!((sum - f.e2e_ms).abs() < 1e-6, "stages {sum} vs e2e {}", f.e2e_ms);
            assert!(f.encode_ms <= f.extract_ms);
            assert!(f.render_ms > 0.0);
        }
    }

    #[test]
    fn traced_run_covers_all_stages_and_reproduces() {
        let scene = scene();
        let dir = std::env::temp_dir();
        let run = |path: &std::path::Path| {
            let mut pipeline =
                KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
            let mut session = broadband_session();
            session.run_traced(&mut pipeline, &scene, 5, path).unwrap()
        };
        let p1 = dir.join("semholo_session_trace_a.json");
        let p2 = dir.join("semholo_session_trace_b.json");
        let (report, stages) = run(&p1);
        let (_, _) = run(&p2);
        assert_eq!(report.frames.len(), 5);
        for stage in ["frame", "extract", "encode", "transmit", "decode", "render"] {
            let s = stages.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
            assert_eq!(s.count as usize, 5, "stage {stage} must cover every frame");
        }
        let a = std::fs::read_to_string(&p1).unwrap();
        let b = std::fs::read_to_string(&p2).unwrap();
        assert_eq!(a, b, "same seed must produce byte-identical traces");
        let doc = holo_runtime::ser::parse(&a).expect("chrome trace parses");
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() >= 30);
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn untraced_run_records_no_spans() {
        // `run` (not `run_traced`) with the global flag off must leave
        // the thread recorder untouched.
        let scene = scene();
        holo_trace::reset();
        if !holo_trace::enabled() {
            let mut pipeline =
                KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
            let mut session = broadband_session();
            session.run(&mut pipeline, &scene, 2).unwrap();
            holo_trace::with_recorder(|r| assert!(r.spans.is_empty()));
        }
    }

    #[test]
    fn session_config_is_debug_and_clone() {
        let cfg = SessionConfig::default();
        let copy = cfg.clone();
        let text = format!("{copy:?}");
        assert!(text.contains("render_overhead"), "{text}");
        assert_eq!(copy.quality_every, cfg.quality_every);
    }

    #[test]
    fn lossy_session_counts_recovered_frames() {
        use holo_net::fault::LossModel;
        let scene = scene();
        // A bursty link with retransmission: some frames must be
        // recovered (delivered despite fragment loss), and recovered
        // implies delivered.
        let mut trad = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut session = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 1e9 },
            fault: Some(FaultClock::new(Some(LossModel::burst5()), Vec::new(), 11)),
            loss_policy: LossPolicy::RetransmitOnce,
            ..Default::default()
        });
        let report = session.run(&mut trad, &scene, 6).unwrap();
        assert!(report.recovered > 0, "burst loss on multi-fragment frames must trigger recovery");
        assert!(report.recovered <= report.delivered);
        let per_frame = report.frames.iter().filter(|f| f.recovered).count();
        assert_eq!(per_frame, report.recovered);
        for f in &report.frames {
            assert!(!f.recovered || f.delivered, "recovered implies delivered");
        }

        // The same seed without a fault clock never reports recovery on
        // a clean link.
        let mut clean = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 1e9 },
            ..Default::default()
        });
        let clean_report = clean.run(&mut trad, &scene, 6).unwrap();
        assert_eq!(clean_report.recovered, 0);
    }

    #[test]
    fn drop_frame_policy_is_configurable() {
        use holo_net::fault::LossModel;
        let scene = scene();
        let mut trad = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut session = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 1e9 },
            fault: Some(FaultClock::new(Some(LossModel::burst5()), Vec::new(), 11)),
            loss_policy: LossPolicy::DropFrame,
            ..Default::default()
        });
        let report = session.run(&mut trad, &scene, 6).unwrap();
        // Without retransmission nothing can be "recovered".
        assert_eq!(report.recovered, 0);
        assert!(report.delivered < 6, "burst loss must cost frames under DropFrame");
    }

    #[test]
    fn slo_verdict_reflects_delivery() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 10).unwrap();
        let obs = report.slo_obs(30.0);
        assert_eq!(obs.len(), 10);
        assert_eq!(
            obs.iter().filter(|o| o.e2e_us.is_some()).count(),
            report.delivered
        );
        // A spec with no latency ceiling passes on delivery rate alone;
        // an impossible latency ceiling must fail.
        let lax = holo_obs::SloSpec {
            max_p99_e2e_ms: None,
            max_stall_ms: None,
            max_window_burn: None,
            min_usable_rate: Some(0.8),
            ..holo_obs::SloSpec::named("lax")
        };
        assert!(report.slo(&lax, 30.0).pass());
        let strict = holo_obs::SloSpec {
            max_p99_e2e_ms: Some(0.001),
            ..holo_obs::SloSpec::named("strict")
        };
        assert!(!report.slo(&strict, 30.0).pass());
        // Verdicts are pure functions of the report: byte-identical.
        assert_eq!(
            report.slo(&lax, 30.0).to_json().render(),
            report.slo(&lax, 30.0).to_json().render()
        );
    }

    #[test]
    fn quality_sampling_works() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 7);
        let mut session = Session::new(SessionConfig {
            quality_every: 2,
            ..SessionConfig::default()
        });
        let report = session.run(&mut pipeline, &scene, 4).unwrap();
        assert!(report.mean_chamfer.is_some());
        let sampled = report.frames.iter().filter(|f| f.quality.is_some()).count();
        assert_eq!(sampled, 2);
    }
}
