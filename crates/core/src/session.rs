//! End-to-end sessions: pipeline x network x edge devices.
//!
//! A [`Session`] runs a semantic pipeline over a scene, shipping every
//! frame through the simulated bottleneck link and charging extraction
//! and reconstruction to the configured edge devices via the GPU cost
//! model. The per-frame output is exactly what the paper's evaluation
//! needs: payload size (bandwidth), end-to-end latency against the
//! 100 ms interactivity budget, sustained FPS capability, and visual
//! quality.

use crate::error::Result;
use crate::semantics::{QualityReport, SemanticPipeline};
use crate::scene::SceneSource;
use holo_gpu::Device;
use holo_math::Summary;
use holo_net::link::{Link, LinkConfig};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy};
use std::time::Duration;

/// Session parameters.
pub struct SessionConfig {
    /// The network between the two sites.
    pub link: LinkConfig,
    /// Bandwidth trace of the bottleneck.
    pub trace: BandwidthTrace,
    /// Device running sender-side extraction.
    pub sender_device: Device,
    /// Device running receiver-side reconstruction.
    pub receiver_device: Device,
    /// Fixed render/display overhead added to every frame.
    pub render_overhead: Duration,
    /// Evaluate quality every N frames (it is expensive); 0 disables.
    pub quality_every: usize,
    /// Network seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            link: LinkConfig::default(),
            trace: BandwidthTrace::Constant { bps: 100e6 },
            sender_device: Device::a100(),
            receiver_device: Device::a100(),
            render_overhead: Duration::from_millis(11),
            quality_every: 0,
            seed: 1,
        }
    }
}

/// Per-frame outcome.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Frame index.
    pub index: usize,
    /// Payload bytes on the wire.
    pub payload_bytes: usize,
    /// Whether the frame arrived complete.
    pub delivered: bool,
    /// Extraction time (modeled).
    pub extract_ms: f64,
    /// Network time (send start to last fragment).
    pub network_ms: f64,
    /// Reconstruction time (modeled).
    pub reconstruct_ms: f64,
    /// Total end-to-end latency including render overhead.
    pub e2e_ms: f64,
    /// Quality, when sampled this frame.
    pub quality: Option<QualityReport>,
}

/// Aggregated session outcome.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Per-frame reports.
    pub frames: Vec<FrameReport>,
    /// Delivered frame count.
    pub delivered: usize,
    /// Payload size summary (bytes).
    pub payload: Summary,
    /// End-to-end latency summary (ms) over delivered frames.
    pub e2e_ms: Summary,
    /// Mean required bandwidth at the session frame rate, bps.
    pub required_bps: f64,
    /// FPS the pipeline can sustain (bounded by the slower of extract
    /// and reconstruct, assuming stage pipelining).
    pub sustainable_fps: f64,
    /// Mean quality over sampled frames.
    pub mean_chamfer: Option<f64>,
    /// Mean PSNR over sampled frames (image pipeline).
    pub mean_psnr: Option<f64>,
}

impl SessionReport {
    /// Fraction of delivered frames meeting the paper's 100 ms budget.
    pub fn within_100ms(&self) -> f64 {
        let delivered: Vec<&FrameReport> = self.frames.iter().filter(|f| f.delivered).collect();
        if delivered.is_empty() {
            return 0.0;
        }
        delivered.iter().filter(|f| f.e2e_ms <= 100.0).count() as f64 / delivered.len() as f64
    }
}

/// A running session.
pub struct Session {
    /// Configuration.
    pub config: SessionConfig,
    transport: FrameTransport,
}

impl Session {
    /// Create a session over the configured link.
    pub fn new(config: SessionConfig) -> Self {
        let link = Link::new(config.link.clone(), config.trace.clone(), config.seed);
        let transport = FrameTransport::new(link, LossPolicy::RetransmitOnce);
        Self { config, transport }
    }

    /// Run `frames` frames of `scene` through `pipeline`.
    pub fn run(
        &mut self,
        pipeline: &mut dyn SemanticPipeline,
        scene: &SceneSource,
        frames: usize,
    ) -> Result<SessionReport> {
        let fps = scene.context().config.fps as f64;
        let mut report = SessionReport {
            payload: Summary::new(),
            e2e_ms: Summary::with_samples(),
            ..Default::default()
        };
        let mut extract_s = Summary::new();
        let mut recon_s = Summary::new();
        let mut chamfer = Summary::new();
        let mut psnr = Summary::new();
        for frame in scene.frames(frames) {
            let capture_t = frame.time;
            let encoded = pipeline.encode(&frame)?;
            let extract = encoded.extract.time_on(&self.config.sender_device)?;
            extract_s.record(extract.as_secs_f64());
            let send_at = SimTime::from_secs_f64(capture_t + extract.as_secs_f64());
            let tx = self.transport.send_frame(encoded.payload.clone(), send_at);
            let mut fr = FrameReport {
                index: frame.index,
                payload_bytes: encoded.payload.len(),
                delivered: tx.complete,
                extract_ms: extract.as_secs_f64() * 1000.0,
                network_ms: tx.latency.map_or(f64::NAN, |l| l.as_secs_f64() * 1000.0),
                reconstruct_ms: f64::NAN,
                e2e_ms: f64::NAN,
                quality: None,
            };
            report.payload.record(encoded.payload.len() as f64);
            if tx.complete {
                let reconstructed = pipeline.decode(&encoded.payload)?;
                let recon = reconstructed.recon.time_on(&self.config.receiver_device)?;
                recon_s.record(recon.as_secs_f64());
                fr.reconstruct_ms = recon.as_secs_f64() * 1000.0;
                fr.e2e_ms = fr.extract_ms
                    + fr.network_ms
                    + fr.reconstruct_ms
                    + self.config.render_overhead.as_secs_f64() * 1000.0;
                report.e2e_ms.record(fr.e2e_ms);
                report.delivered += 1;
                if self.config.quality_every > 0 && frame.index % self.config.quality_every == 0 {
                    let q = pipeline.quality(&frame, &reconstructed.content);
                    if let Some(c) = q.chamfer {
                        chamfer.record(c as f64);
                    }
                    if let Some(p) = q.psnr_db {
                        if p.is_finite() {
                            psnr.record(p);
                        }
                    }
                    fr.quality = Some(q);
                }
            }
            report.frames.push(fr);
        }
        report.required_bps = report.payload.mean() * 8.0 * fps;
        let stage = extract_s.mean().max(recon_s.mean());
        report.sustainable_fps = if stage > 0.0 { 1.0 / stage } else { f64::INFINITY };
        report.mean_chamfer = (chamfer.count() > 0).then(|| chamfer.mean());
        report.mean_psnr = (psnr.count() > 0).then(|| psnr.mean());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::keypoint::{KeypointConfig, KeypointPipeline};
    use crate::scene::SceneSource;
    use crate::traditional::{MeshWire, TraditionalPipeline};

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn broadband_session() -> Session {
        Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 25e6 },
            quality_every: 0,
            ..Default::default()
        })
    }

    #[test]
    fn keypoint_session_under_bandwidth_budget() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 3);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 10).unwrap();
        assert_eq!(report.frames.len(), 10);
        assert!(report.delivered >= 9);
        // Pose payloads: well under 1 Mbps at 30 FPS.
        assert!(report.required_bps < 1e6, "keypoint bw {}", report.required_bps);
    }

    #[test]
    fn traditional_raw_needs_far_more_bandwidth() {
        let scene = scene();
        let mut kp = KeypointPipeline::new(KeypointConfig { resolution: 32, ..Default::default() }, 3);
        let mut trad = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut s1 = broadband_session();
        let mut s2 = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 1e9 },
            ..Default::default()
        });
        let kp_report = s1.run(&mut kp, &scene, 5).unwrap();
        let trad_report = s2.run(&mut trad, &scene, 5).unwrap();
        let factor = trad_report.required_bps / kp_report.required_bps;
        assert!(factor > 50.0, "traditional/keypoint bandwidth factor {factor:.0}");
    }

    #[test]
    fn keypoint_reconstruction_breaks_latency_budget() {
        // The paper's core negative result: even on an A100 the keypoint
        // reconstruction is nowhere near 30 FPS.
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 128, ..Default::default() }, 5);
        let mut session = broadband_session();
        let report = session.run(&mut pipeline, &scene, 3).unwrap();
        assert!(report.sustainable_fps < 5.0, "fps {}", report.sustainable_fps);
        assert!(report.within_100ms() < 0.5, "latency budget unexpectedly met");
    }

    #[test]
    fn traditional_on_fat_link_has_low_network_latency() {
        // Traditional's problem is bandwidth, not per-frame network
        // latency once the link is fat enough. (End-to-end time includes
        // our real codec wall-clock, which varies with build profile, so
        // the assertion targets the network component.)
        let scene = scene();
        let mut trad = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let mut session = Session::new(SessionConfig {
            trace: BandwidthTrace::Constant { bps: 200e6 },
            ..Default::default()
        });
        let report = session.run(&mut trad, &scene, 5).unwrap();
        assert_eq!(report.delivered, 5);
        for f in &report.frames {
            assert!(f.network_ms < 50.0, "network {} ms", f.network_ms);
        }
    }

    #[test]
    fn quality_sampling_works() {
        let scene = scene();
        let mut pipeline =
            KeypointPipeline::new(KeypointConfig { resolution: 48, ..Default::default() }, 7);
        let mut session = Session::new(SessionConfig {
            quality_every: 2,
            ..SessionConfig::default()
        });
        let report = session.run(&mut pipeline, &scene, 4).unwrap();
        assert!(report.mean_chamfer.is_some());
        let sampled = report.frames.iter().filter(|f| f.quality.is_some()).count();
        assert_eq!(sampled, 2);
    }
}
