//! Traditional bit-by-bit mesh delivery — Table 2's baseline.
//!
//! The sender poses the SMPL-X-class template mesh and ships it whole,
//! either raw (397.7 KB-class frames) or through the Draco-style codec
//! (42 KB-class). The receiver decodes and renders; no semantic
//! reconstruction is involved, which is exactly why the bandwidth is two
//! orders of magnitude higher.

use crate::error::{reject_decode, Result};
use crate::scene::SceneFrame;
use crate::semantics::{mesh_quality, Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
use holo_runtime::bytes::Bytes;
use holo_compress::meshcodec::{decode_mesh, encode_mesh, MeshCodecConfig};
use std::time::Instant;

/// Whether to compress the mesh on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshWire {
    /// Raw binary mesh (Table 2 "w/o compression").
    Raw,
    /// Draco-style codec (Table 2 "w/ compression").
    Compressed,
}

/// The traditional pipeline.
pub struct TraditionalPipeline {
    /// Wire mode.
    pub wire: MeshWire,
    /// Codec config for the compressed mode.
    pub codec: MeshCodecConfig,
    /// Quality reference resolution.
    pub quality_reference_resolution: u32,
}

impl TraditionalPipeline {
    /// Build with the given wire mode.
    pub fn new(wire: MeshWire, quantization_bits: u32) -> Self {
        Self {
            wire,
            codec: MeshCodecConfig { position_bits: quantization_bits },
            quality_reference_resolution: 96,
        }
    }
}

/// Serialize a mesh to the raw wire format ([`holo_mesh::TriMesh`]'s
/// `raw_size_bytes` layout): magic, counts, vertices, faces.
pub fn mesh_to_raw_bytes(mesh: &holo_mesh::TriMesh) -> Vec<u8> {
    let mut out = Vec::with_capacity(mesh.raw_size_bytes());
    out.extend_from_slice(&0x4D45_5348u32.to_le_bytes()); // "MESH"
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&(mesh.vertex_count() as u32).to_le_bytes());
    out.extend_from_slice(&(mesh.face_count() as u32).to_le_bytes());
    for v in &mesh.vertices {
        out.extend_from_slice(&v.x.to_le_bytes());
        out.extend_from_slice(&v.y.to_le_bytes());
        out.extend_from_slice(&v.z.to_le_bytes());
    }
    for f in &mesh.faces {
        for &i in f {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    out
}

/// Parse [`mesh_to_raw_bytes`] output.
///
/// Hostile-input contract: the declared vertex/face counts are checked
/// against the exact stream length *before* any allocation, so a forged
/// 16-byte header can't drive gigabyte-scale `Vec` growth.
pub fn mesh_from_raw_bytes(
    data: &[u8],
) -> std::result::Result<holo_mesh::TriMesh, holo_runtime::ser::DecodeError> {
    use holo_runtime::ser::{ByteReader, DecodeError};
    let mut r = ByteReader::new(data);
    r.expect_magic(0x4D45_5348)?;
    let _flags = r.u32_le()?;
    let nv = r.u32_le()? as usize;
    let nf = r.u32_le()? as usize;
    let expected = 16usize
        .saturating_add(nv.saturating_mul(12))
        .saturating_add(nf.saturating_mul(12));
    if data.len() != expected {
        return Err(if data.len() < expected {
            DecodeError::Truncated { needed: expected, available: data.len() }
        } else {
            DecodeError::corrupt(
                "raw mesh",
                format!("raw mesh size {} != {expected}", data.len()),
            )
        });
    }
    let mut mesh = holo_mesh::TriMesh::new();
    for _ in 0..nv {
        mesh.vertices.push(holo_math::Vec3::new(r.f32_le()?, r.f32_le()?, r.f32_le()?));
    }
    for _ in 0..nf {
        mesh.faces.push([r.u32_le()?, r.u32_le()?, r.u32_le()?]);
    }
    mesh.validate().map_err(|m| DecodeError::corrupt("raw mesh", m))?;
    Ok(mesh)
}

impl SemanticPipeline for TraditionalPipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::Traditional
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        let mesh = frame.posed_mesh();
        let bytes = match self.wire {
            MeshWire::Raw => mesh_to_raw_bytes(&mesh),
            MeshWire::Compressed => encode_mesh(&mesh, &self.codec),
        };
        Ok(EncodedFrame {
            payload: Bytes::from(bytes),
            extract: StageCost { cpu_wall: t0.elapsed(), gpu: None },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        let mesh = match self.wire {
            MeshWire::Raw => mesh_from_raw_bytes(payload).map_err(reject_decode)?,
            MeshWire::Compressed => decode_mesh(payload).map_err(reject_decode)?,
        };
        Ok(Reconstructed {
            content: Content::Mesh(mesh),
            recon: StageCost { cpu_wall: t0.elapsed(), gpu: None },
        })
    }

    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        let Content::Mesh(mesh) = content else {
            return QualityReport::default();
        };
        let gt = frame.ground_truth_mesh(self.quality_reference_resolution);
        mesh_quality(&gt, mesh, frame.context.config.seed ^ frame.index as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.3)
    }

    #[test]
    fn raw_wire_size_in_table2_class() {
        let scene = scene();
        let mut p = TraditionalPipeline::new(MeshWire::Raw, 14);
        let enc = p.encode(&scene.frame(0)).unwrap();
        // The paper reports 397.7 KB for the SMPL-X mesh; our template is
        // the same size class (hundreds of KB).
        let kb = enc.payload.len() as f64 / 1024.0;
        assert!((100.0..2000.0).contains(&kb), "raw mesh {kb:.1} KB");
    }

    #[test]
    fn compression_shrinks_by_draco_class_factor() {
        let scene = scene();
        let frame = scene.frame(0);
        let mut raw = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut comp = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let raw_len = raw.encode(&frame).unwrap().payload.len();
        let comp_len = comp.encode(&frame).unwrap().payload.len();
        let ratio = raw_len as f64 / comp_len as f64;
        assert!(ratio > 4.0, "mesh compression ratio {ratio:.1}");
    }

    #[test]
    fn raw_roundtrip_exact() {
        let scene = scene();
        let frame = scene.frame(1);
        let mut p = TraditionalPipeline::new(MeshWire::Raw, 14);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(mesh) = &rec.content else { panic!() };
        let original = frame.posed_mesh();
        assert_eq!(mesh.vertex_count(), original.vertex_count());
        assert_eq!(mesh.faces, original.faces);
    }

    #[test]
    fn compressed_roundtrip_close() {
        let scene = scene();
        let frame = scene.frame(2);
        let mut p = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(mesh) = &rec.content else { panic!() };
        assert_eq!(mesh.face_count(), frame.posed_mesh().face_count());
    }

    #[test]
    fn traditional_quality_beats_keypoints() {
        // The whole point of the taxonomy: traditional = high quality,
        // high bandwidth.
        let scene = scene();
        let frame = scene.frame(0);
        let mut p = TraditionalPipeline::new(MeshWire::Compressed, 14);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let q = p.quality(&frame, &rec.content);
        assert!(q.chamfer.unwrap() < 0.04, "traditional chamfer {}", q.chamfer.unwrap());
    }

    #[test]
    fn raw_parser_rejects_corruption() {
        assert!(mesh_from_raw_bytes(&[0u8; 8]).is_err());
        let scene = scene();
        let mut p = TraditionalPipeline::new(MeshWire::Raw, 14);
        let mut bytes = p.encode(&scene.frame(0)).unwrap().payload.to_vec();
        bytes.truncate(bytes.len() - 7);
        assert!(mesh_from_raw_bytes(&bytes).is_err());
    }
}
