//! The foveated hybrid pipeline (§3.1's research agenda).
//!
//! "Directly transmit the compressed 3D mesh for the foveal region to
//! maintain high visual quality while delivering keypoints for only
//! peripheral regions." The sender tracks the viewer's gaze (delayed by
//! one RTT over the feedback channel), optionally runs saccade landing
//! prediction to aim ahead of the eye, cuts the posed mesh to the
//! predicted foveal cone, Draco-compresses that patch, and appends the
//! keypoint pose payload for the rest of the body. The receiver rebuilds
//! the periphery from keypoints at low resolution and stitches in the
//! received foveal patch.
//!
//! Ablation A sweeps the foveal radius: a larger fovea costs bandwidth
//! but reduces receiver reconstruction work and raises quality near the
//! gaze point.

use crate::error::{reject_decode, Result, SemHoloError};
use crate::scene::SceneFrame;
use crate::semantics::{Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
use holo_runtime::bytes::Bytes;
use holo_body::params::PosePayload;
use holo_body::skeleton::Skeleton;
use holo_body::surface::{BodySdf, SurfaceDetail};
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_compress::meshcodec::{decode_mesh, encode_mesh, MeshCodecConfig};
use holo_compress::primitives::{read_varint, write_varint};
use holo_gaze::classify::{GazeClass, IvtClassifier};
use holo_gaze::foveation::FoveationMap;
use holo_gaze::landing::SaccadePredictor;
use holo_gaze::trace::{GazeSample, GazeSynthesizer, GazeTraceConfig};
use holo_gpu::workloads::reconstruction_workload;
use holo_keypoints::fit::fit_params;
use holo_math::{Pcg32, Vec2, Vec3};
use holo_mesh::sparse::sparse_extract;
use holo_mesh::trimesh::TriMesh;
use std::time::Instant;

/// Foveated pipeline configuration.
#[derive(Debug, Clone)]
pub struct FoveatedConfig {
    /// Foveal radius, degrees.
    pub foveal_radius_deg: f32,
    /// Peripheral reconstruction resolution (low; the fovea carries the
    /// true mesh).
    pub peripheral_resolution: u32,
    /// Gaze feedback delay (one network RTT), seconds.
    pub gaze_delay_s: f32,
    /// Use saccade landing prediction to aim the fovea ahead of the eye.
    pub predict_saccades: bool,
    /// Mesh codec bits for the foveal patch.
    pub quantization_bits: u32,
}

impl Default for FoveatedConfig {
    fn default() -> Self {
        Self {
            foveal_radius_deg: 12.0,
            peripheral_resolution: 48,
            gaze_delay_s: 0.04,
            predict_saccades: true,
            quantization_bits: 14,
        }
    }
}

/// Viewer geometry shared by sender and receiver.
fn viewer_map(gaze: Vec2, radius: f32) -> FoveationMap {
    FoveationMap::new(Vec3::new(0.0, 1.5, 2.5), Vec3::new(0.0, -0.15, -1.0), gaze, radius)
}

/// The foveated hybrid pipeline.
pub struct FoveatedPipeline {
    /// Configuration.
    pub config: FoveatedConfig,
    skeleton: Skeleton,
    gaze_samples: Vec<GazeSample>,
    classifier: IvtClassifier,
    predictor: SaccadePredictor,
    rng: Pcg32,
    /// Gaze the last frame was encoded for (receiver-side stitch uses it).
    last_encode_gaze: Vec2,
    /// Per-frame byte split: (foveal mesh bytes, keypoint bytes).
    pub last_split: (usize, usize),
}

impl FoveatedPipeline {
    /// Build with a synthesized viewer gaze trace covering `duration_s`.
    pub fn new(config: FoveatedConfig, duration_s: f32, seed: u64) -> Self {
        let mut synth = GazeSynthesizer::new(GazeTraceConfig::default(), seed ^ 0xEE);
        let gaze_samples = synth.generate(duration_s.max(1.0) + 2.0);
        Self {
            config,
            skeleton: Skeleton::neutral(),
            gaze_samples,
            classifier: IvtClassifier::default(),
            predictor: SaccadePredictor::new(),
            rng: Pcg32::with_stream(seed, 0xF0),
            last_encode_gaze: Vec2::ZERO,
            last_split: (0, 0),
        }
    }

    /// True gaze at time `t` (what the eye actually looks at).
    pub fn true_gaze_at(&self, t: f32) -> Vec2 {
        let rate = 120.0;
        let idx = ((t * rate) as usize).min(self.gaze_samples.len().saturating_sub(1));
        self.gaze_samples[idx].pos
    }

    /// The gaze the *sender* believes in at time `t`: the sample one
    /// feedback delay old, optionally corrected by saccade landing
    /// prediction.
    pub fn predicted_gaze_at(&mut self, t: f32) -> Vec2 {
        let delayed_t = (t - self.config.gaze_delay_s).max(0.0);
        let rate = 120.0;
        let idx = ((delayed_t * rate) as usize).min(self.gaze_samples.len().saturating_sub(1));
        if !self.config.predict_saccades {
            return self.gaze_samples[idx].pos;
        }
        // Classify a window long enough to contain the whole saccade; if
        // the newest available sample is in flight, anchor the ballistic
        // predictor at the *onset* (the fixation-to-saccade transition)
        // and predict the landing point.
        let lo = idx.saturating_sub(30);
        let window = &self.gaze_samples[lo..=idx];
        let classes = self.classifier.classify(window);
        if classes.last() == Some(&GazeClass::Saccade) {
            // Walk back over the contiguous in-flight tail to the onset.
            let mut onset = classes.len() - 1;
            while onset > 0 && classes[onset - 1] == GazeClass::Saccade {
                onset -= 1;
            }
            // Engage only early in flight: once most of the saccade has
            // been observed, the (stale) measured position is already
            // near the landing point and beats any model-based estimate.
            let tail = classes.len() - onset;
            if tail <= 4 {
                self.predictor.reset();
                let mut best = None;
                for s in &window[onset..] {
                    if let Some(p) = self.predictor.observe(s) {
                        best = Some(p);
                    }
                }
                if let Some(p) = best {
                    return p;
                }
            }
        }
        self.predictor.reset();
        self.gaze_samples[idx].pos
    }

    /// Cut the faces of `mesh` whose centroid falls inside the foveal
    /// cone into a compact submesh.
    fn foveal_submesh(mesh: &TriMesh, map: &FoveationMap) -> TriMesh {
        let mut out = TriMesh::new();
        let mut remap = vec![u32::MAX; mesh.vertex_count()];
        for f in &mesh.faces {
            let centroid = (mesh.vertices[f[0] as usize]
                + mesh.vertices[f[1] as usize]
                + mesh.vertices[f[2] as usize])
                / 3.0;
            if !map.is_foveal(centroid) {
                continue;
            }
            let mut nf = [0u32; 3];
            for (k, &vi) in f.iter().enumerate() {
                if remap[vi as usize] == u32::MAX {
                    remap[vi as usize] = out.vertices.len() as u32;
                    out.vertices.push(mesh.vertices[vi as usize]);
                }
                nf[k] = remap[vi as usize];
            }
            out.faces.push(nf);
        }
        out
    }

    /// Remove foveal faces from a mesh (receiver-side: the peripheral
    /// reconstruction must not z-fight with the received patch).
    fn without_foveal(mesh: &TriMesh, map: &FoveationMap) -> TriMesh {
        let mut out = TriMesh::new();
        let mut remap = vec![u32::MAX; mesh.vertex_count()];
        for f in &mesh.faces {
            let centroid = (mesh.vertices[f[0] as usize]
                + mesh.vertices[f[1] as usize]
                + mesh.vertices[f[2] as usize])
                / 3.0;
            if map.is_foveal(centroid) {
                continue;
            }
            let mut nf = [0u32; 3];
            for (k, &vi) in f.iter().enumerate() {
                if remap[vi as usize] == u32::MAX {
                    remap[vi as usize] = out.vertices.len() as u32;
                    out.vertices.push(mesh.vertices[vi as usize]);
                }
                nf[k] = remap[vi as usize];
            }
            out.faces.push(nf);
        }
        out
    }
}

impl SemanticPipeline for FoveatedPipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::FoveatedHybrid
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        let gaze = self.predicted_gaze_at(frame.time as f32);
        self.last_encode_gaze = gaze;
        let map = viewer_map(gaze, self.config.foveal_radius_deg);
        // Foveal patch: cut from the posed mesh, Draco-compress.
        let mesh = frame.posed_mesh();
        let patch = Self::foveal_submesh(&mesh, &map);
        let patch_bytes = encode_mesh(&patch, &MeshCodecConfig { position_bits: self.config.quantization_bits });
        // Peripheral keypoints: the full pose payload (receiver needs the
        // whole skeleton anyway).
        let posed = self.skeleton.forward_kinematics(&frame.params);
        let landmarks = posed.positions().to_vec();
        let noisy: Vec<Vec3> = landmarks
            .iter()
            .map(|&p| p + Vec3::new(self.rng.normal(), self.rng.normal(), self.rng.normal()) * 0.008)
            .collect();
        let mut fitted = fit_params(&noisy, &self.skeleton).map_err(SemHoloError::Extraction)?;
        fitted.betas = frame.params.betas;
        fitted.expression = frame.params.expression;
        let pose_bytes = lzma_compress(&PosePayload::new(fitted, noisy).to_bytes());
        self.last_split = (patch_bytes.len(), pose_bytes.len());

        let mut payload = Vec::new();
        // Gaze the patch was cut for (receiver must cut the same hole).
        payload.extend_from_slice(&gaze.x.to_le_bytes());
        payload.extend_from_slice(&gaze.y.to_le_bytes());
        write_varint(&mut payload, patch_bytes.len() as u32);
        payload.extend_from_slice(&patch_bytes);
        payload.extend_from_slice(&pose_bytes);
        Ok(EncodedFrame {
            payload: Bytes::from(payload),
            extract: StageCost { cpu_wall: t0.elapsed(), gpu: None },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        if payload.len() < 9 {
            return Err(SemHoloError::Codec("foveated payload too short".into()));
        }
        let gaze = Vec2::new(
            f32::from_le_bytes(payload[0..4].try_into().unwrap()),
            f32::from_le_bytes(payload[4..8].try_into().unwrap()),
        );
        let mut pos = 8;
        let (patch_len, used) =
            read_varint(&payload[pos..]).ok_or_else(|| SemHoloError::Codec("no patch len".into()))?;
        pos += used;
        let end = pos + patch_len as usize;
        if end > payload.len() {
            return Err(SemHoloError::Codec("truncated foveal patch".into()));
        }
        let patch = decode_mesh(&payload[pos..end]).map_err(reject_decode)?;
        let raw = lzma_decompress(&payload[end..]).map_err(reject_decode)?;
        let pose = PosePayload::from_bytes(&raw).map_err(reject_decode)?;
        // Peripheral reconstruction at low resolution.
        let sdf = BodySdf::from_pose(&self.skeleton, &pose.params, SurfaceDetail::bare());
        let periphery_full = sparse_extract(&sdf, self.config.peripheral_resolution, 0.03);
        let map = viewer_map(gaze, self.config.foveal_radius_deg);
        let mut stitched = Self::without_foveal(&periphery_full, &map);
        stitched.append(&patch);
        stitched.compute_normals();
        let workload = reconstruction_workload(self.config.peripheral_resolution, None).workload;
        Ok(Reconstructed {
            content: Content::Mesh(stitched),
            recon: StageCost { cpu_wall: t0.elapsed(), gpu: Some(workload) },
        })
    }

    /// Quality is measured where it matters: around the *true* gaze point
    /// at render time, inside a *fixed* 5-degree evaluation cone (so the
    /// metric is comparable across foveal-radius configurations) — a
    /// missed saccade prediction shows up as degraded foveal quality.
    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        const EVAL_CONE_DEG: f32 = 5.0;
        let Content::Mesh(mesh) = content else {
            return QualityReport::default();
        };
        let true_gaze = self.true_gaze_at(frame.time as f32);
        let map = viewer_map(true_gaze, EVAL_CONE_DEG);
        let gt = frame.ground_truth_mesh(96);
        let mut rng = Pcg32::new(frame.context.config.seed ^ frame.index as u64);
        let (gt_pts, _) = gt.sample_surface(4000, &mut rng);
        let (re_pts, _) = mesh.sample_surface(4000, &mut rng);
        let gt_fov: Vec<Vec3> = gt_pts.iter().copied().filter(|&p| map.is_foveal(p)).collect();
        let re_fov: Vec<Vec3> = re_pts.iter().copied().filter(|&p| map.is_foveal(p)).collect();
        let chamfer_fov = holo_mesh::metrics::chamfer_distance(&gt_fov, &re_fov);
        let f = holo_mesh::metrics::f_score(&gt_fov, &re_fov, 0.01);
        QualityReport {
            chamfer: Some(chamfer_fov),
            f_score: Some(f),
            normal_consistency: None,
            psnr_db: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn pipeline(radius: f32) -> FoveatedPipeline {
        FoveatedPipeline::new(
            FoveatedConfig {
                foveal_radius_deg: radius,
                peripheral_resolution: 40,
                ..Default::default()
            },
            1.0,
            11,
        )
    }

    #[test]
    fn roundtrip_stitches_mesh() {
        let scene = scene();
        let mut p = pipeline(12.0);
        let frame = scene.frame(0);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(mesh) = &rec.content else { panic!() };
        assert!(mesh.face_count() > 1000);
        assert!(mesh.validate().is_ok());
        let (fov_bytes, pose_bytes) = p.last_split;
        assert!(fov_bytes > 0, "foveal patch empty");
        assert!(pose_bytes > 500);
    }

    #[test]
    fn bigger_fovea_costs_more_bandwidth() {
        let scene = scene();
        let frame = scene.frame(0);
        let mut small = pipeline(5.0);
        let mut large = pipeline(25.0);
        let b_small = small.encode(&frame).unwrap().payload.len();
        let b_large = large.encode(&frame).unwrap().payload.len();
        assert!(b_large > b_small, "bandwidth: small {b_small} large {b_large}");
    }

    #[test]
    fn hybrid_payload_far_below_full_mesh() {
        let scene = scene();
        let frame = scene.frame(0);
        let mut p = pipeline(12.0);
        let hybrid = p.encode(&frame).unwrap().payload.len();
        let full_raw = frame.posed_mesh().raw_size_bytes();
        assert!(hybrid * 5 < full_raw, "hybrid {hybrid} vs full raw {full_raw}");
    }

    #[test]
    fn foveal_quality_decent() {
        let scene = scene();
        let mut p = pipeline(15.0);
        let frame = scene.frame(0);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let q = p.quality(&frame, &rec.content);
        // Foveal region carries the true mesh; chamfer there should be
        // in the compressed-mesh class, not the low-res-periphery class.
        assert!(q.chamfer.unwrap() < 0.08, "foveal chamfer {}", q.chamfer.unwrap());
    }

    #[test]
    fn submesh_partition_covers_everything() {
        let scene = scene();
        let frame = scene.frame(0);
        let mesh = frame.posed_mesh();
        let map = viewer_map(Vec2::ZERO, 15.0);
        let fov = FoveatedPipeline::foveal_submesh(&mesh, &map);
        let per = FoveatedPipeline::without_foveal(&mesh, &map);
        assert_eq!(fov.face_count() + per.face_count(), mesh.face_count());
        assert!(fov.face_count() > 0, "some faces must be foveal");
        assert!(per.face_count() > 0, "some faces must be peripheral");
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut p = pipeline(10.0);
        assert!(p.decode(&[1, 2, 3]).is_err());
    }
}
