//! The semantic-pipeline abstraction and the taxonomy types of Table 1.

use crate::error::Result;
use crate::scene::SceneFrame;
use holo_runtime::bytes::Bytes;
use holo_compress::texture::Texture;
use holo_gpu::Workload;
use holo_mesh::metrics::compare_meshes;
use holo_mesh::pointcloud::PointCloud;
use holo_mesh::trimesh::TriMesh;
use std::time::Duration;

/// The paper's taxonomy (Table 1) plus the traditional baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticKind {
    /// Keypoint-based semantics (§3.1): ~1.91 KB/frame.
    Keypoint,
    /// Image-based semantics via NeRF (§3.2).
    Image,
    /// Text-based semantics via discrete tokens (§3.3).
    Text,
    /// Traditional bit-by-bit mesh delivery (baseline).
    Traditional,
    /// Foveated hybrid: mesh fovea + keypoint periphery (§3.1 agenda).
    FoveatedHybrid,
    /// Amortized gaussian-avatar tier: one-time prebuilt splat avatar +
    /// tiny per-frame conditioning updates (research-agenda dimension).
    Gaussian,
}

impl SemanticKind {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            SemanticKind::Keypoint => "keypoint",
            SemanticKind::Image => "image",
            SemanticKind::Text => "text",
            SemanticKind::Traditional => "traditional",
            SemanticKind::FoveatedHybrid => "foveated-hybrid",
            SemanticKind::Gaussian => "gaussian",
        }
    }
}

/// CPU + modeled-GPU cost of a pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCost {
    /// Wall-clock time our implementation actually spent.
    pub cpu_wall: Duration,
    /// Modeled accelerator workload (None when the stage is trivially
    /// CPU-bound, like parsing a pose payload).
    pub gpu: Option<Workload>,
}

impl StageCost {
    /// Time this stage takes on a device: the modeled GPU time when a
    /// workload exists, otherwise the measured CPU time.
    pub fn time_on(&self, device: &holo_gpu::Device) -> Result<Duration> {
        match &self.gpu {
            Some(w) => Ok(device.exec_time(w)?),
            None => Ok(self.cpu_wall),
        }
    }
}

/// A frame after semantic extraction, ready for the network.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// Wire payload.
    pub payload: Bytes,
    /// Extraction cost.
    pub extract: StageCost,
}

/// Reconstructed content at the receiver.
pub enum Content {
    /// A triangle mesh.
    Mesh(TriMesh),
    /// A point cloud.
    Cloud(PointCloud),
    /// A rendered novel view (image pipeline).
    View(Texture),
}

impl Content {
    /// Output-format label (the Table 1 column).
    pub fn format_name(&self) -> &'static str {
        match self {
            Content::Mesh(_) => "mesh",
            Content::Cloud(_) => "point cloud",
            Content::View(_) => "image",
        }
    }
}

/// The receiver-side result.
pub struct Reconstructed {
    /// The content.
    pub content: Content,
    /// Reconstruction cost.
    pub recon: StageCost,
}

/// Visual-quality measurements against ground truth. Fields are `None`
/// when the metric does not apply to the pipeline's output format.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualityReport {
    /// Symmetric Chamfer distance vs ground-truth surface, meters.
    pub chamfer: Option<f32>,
    /// F-score at 1 cm.
    pub f_score: Option<f32>,
    /// Normal consistency in [0, 1].
    pub normal_consistency: Option<f32>,
    /// PSNR of a rendered novel view, dB (image pipeline).
    pub psnr_db: Option<f64>,
}

/// A semantic communication pipeline: sender-side extraction and
/// receiver-side reconstruction (paper Fig. 1).
pub trait SemanticPipeline {
    /// Which taxonomy entry this is.
    fn kind(&self) -> SemanticKind;

    /// Extract and serialize the semantics of one frame.
    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame>;

    /// Reconstruct content from a received payload.
    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed>;

    /// Measure reconstruction quality against the frame's ground truth.
    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport;
}

/// Shared geometric quality measurement: compare reconstructed geometry
/// against the ground-truth surface.
pub fn mesh_quality(gt: &TriMesh, mesh: &TriMesh, seed: u64) -> QualityReport {
    let q = compare_meshes(gt, mesh, 4000, 0.01, seed);
    QualityReport {
        chamfer: Some(q.chamfer),
        f_score: Some(q.f_score),
        normal_consistency: Some(q.normal_consistency),
        psnr_db: None,
    }
}

/// Cloud-vs-mesh quality: sample the ground-truth mesh and compare point
/// sets.
pub fn cloud_quality(gt: &TriMesh, cloud: &PointCloud, seed: u64) -> QualityReport {
    let mut rng = holo_math::Pcg32::new(seed);
    let (gt_pts, _) = gt.sample_surface(4000, &mut rng);
    let chamfer = holo_mesh::metrics::chamfer_distance(&gt_pts, &cloud.points);
    let f = holo_mesh::metrics::f_score(&gt_pts, &cloud.points, 0.02);
    QualityReport { chamfer: Some(chamfer), f_score: Some(f), normal_consistency: None, psnr_db: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_math::Vec3;

    #[test]
    fn kind_names() {
        assert_eq!(SemanticKind::Keypoint.name(), "keypoint");
        assert_eq!(SemanticKind::Traditional.name(), "traditional");
    }

    #[test]
    fn stage_cost_prefers_gpu_model() {
        let cost = StageCost {
            cpu_wall: Duration::from_millis(500),
            gpu: Some(Workload { flops: 1e9, bytes: 1e6, peak_memory: 1 << 20 }),
        };
        let t = cost.time_on(&holo_gpu::Device::a100()).unwrap();
        assert!(t < Duration::from_millis(10), "gpu-modeled time {t:?}");
        let cpu_only = StageCost { cpu_wall: Duration::from_millis(5), gpu: None };
        assert_eq!(cpu_only.time_on(&holo_gpu::Device::a100()).unwrap(), Duration::from_millis(5));
    }

    #[test]
    fn mesh_quality_of_identical_is_good() {
        // Body-scale surface area so the 1 cm F-score tolerance is
        // commensurate with the 4000-sample density.
        let m = TriMesh::uv_sphere(Vec3::ZERO, 0.3, 16, 24);
        let q = mesh_quality(&m, &m, 1);
        assert!(q.chamfer.unwrap() < 0.02);
        assert!(q.f_score.unwrap() > 0.3, "f-score {:?}", q.f_score);
    }

    #[test]
    fn cloud_quality_detects_offset() {
        let m = TriMesh::uv_sphere(Vec3::ZERO, 1.0, 16, 24);
        let mut rng = holo_math::Pcg32::new(2);
        let (pts, _) = m.sample_surface(2000, &mut rng);
        let close = cloud_quality(&m, &PointCloud::from_points(pts.clone()), 3);
        let shifted: Vec<Vec3> = pts.iter().map(|p| *p + Vec3::new(0.2, 0.0, 0.0)).collect();
        let far = cloud_quality(&m, &PointCloud::from_points(shifted), 3);
        assert!(far.chamfer.unwrap() > close.chamfer.unwrap() * 2.0);
    }

    #[test]
    fn content_format_names() {
        assert_eq!(Content::Mesh(TriMesh::new()).format_name(), "mesh");
        assert_eq!(Content::Cloud(PointCloud::new()).format_name(), "point cloud");
        assert_eq!(Content::View(Texture::new(2, 2)).format_name(), "image");
    }
}
