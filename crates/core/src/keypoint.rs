//! Keypoint-based semantics — the paper's proof-of-concept pipeline (§4).
//!
//! Sender: detect 3D keypoints on the captured participant (simulated
//! detectors with the error/compute profiles of §2.3), temporally filter
//! them, fit SMPL-X parameters by hierarchical rotation fitting, and ship
//! the 1.91 KB [`PosePayload`] LZMA-compressed. Receiver: rebuild the
//! body as a pose-conditioned implicit surface and extract a mesh at the
//! configured resolution (the X-Avatar substitute) — the reconstruction
//! whose cost Fig. 4 measures and whose quality Fig. 2 grades.

use crate::error::{reject_decode, Result, SemHoloError};
use crate::scene::SceneFrame;
use crate::semantics::{mesh_quality, Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
use holo_runtime::bytes::Bytes;
use holo_body::landmarks::{LandmarkSet, StandardLandmarks};
use holo_body::params::{PosePayload, SmplxParams, EXPRESSION_DIM, PAYLOAD_KEYPOINTS};
use holo_body::skeleton::{Skeleton, JOINT_COUNT};
use holo_body::surface::{BodySdf, SurfaceDetail};
use holo_compress::lzma::{lzma_compress, lzma_decompress};
use holo_gpu::workloads::{detector_workload, reconstruction_workload};
use holo_keypoints::detector::{DetectorKind, KeypointDetector};
use holo_keypoints::filter::OneEuroFilter;
use holo_keypoints::fit::fit_params;
use holo_math::{Pcg32, Vec3};
use holo_mesh::sparse::sparse_extract_with_stats;
use std::time::Instant;

/// How the receiver turns keypoints into geometry (ablation D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructionMode {
    /// Fit SMPL-X parameters first (the smooth, parameter-capped path the
    /// state of the art uses).
    Parametric,
    /// Hang the surface directly on the observed keypoints (model-free:
    /// exploits every keypoint but inherits their jitter).
    ModelFree,
}

/// Keypoint pipeline configuration.
#[derive(Debug, Clone)]
pub struct KeypointConfig {
    /// Marching-cubes resolution at the receiver (128-1024 in the paper).
    pub resolution: u32,
    /// Detector family.
    pub detector: DetectorKind,
    /// Landmark density.
    pub landmarks: StandardLandmarks,
    /// Apply One-Euro temporal filtering to detections.
    pub filter: bool,
    /// Receiver reconstruction mode.
    pub mode: ReconstructionMode,
    /// Temporal smoothing of fitted parameters in [0, 1): each frame's
    /// fit is slerped toward the previous one by this factor. This is
    /// the smoothing effect of encoding into a parametric model that the
    /// paper credits for "smooth streaming" (the model-free path has no
    /// such prior and inherits detector jitter).
    pub parameter_smoothing: f32,
}

impl Default for KeypointConfig {
    fn default() -> Self {
        Self {
            resolution: 128,
            detector: DetectorKind::RgbdDirect,
            landmarks: StandardLandmarks::Standard100,
            filter: true,
            mode: ReconstructionMode::Parametric,
            parameter_smoothing: 0.4,
        }
    }
}

/// The keypoint-semantics pipeline.
pub struct KeypointPipeline {
    /// Configuration.
    pub config: KeypointConfig,
    skeleton: Skeleton,
    detector: KeypointDetector,
    filters: Vec<OneEuroFilter>,
    prev_detection: Option<Vec<Vec3>>,
    prev_fit: Option<SmplxParams>,
    rng: Pcg32,
    frame_dt: f32,
    /// Ground-truth reference resolution for quality metrics.
    pub quality_reference_resolution: u32,
}

impl KeypointPipeline {
    /// Build the pipeline. The detector observes from the first rig
    /// camera's position.
    pub fn new(config: KeypointConfig, seed: u64) -> Self {
        let detector = KeypointDetector::new(config.detector, Vec3::new(0.0, 1.3, 2.0));
        let n = config.landmarks.count();
        Self {
            config,
            skeleton: Skeleton::neutral(),
            detector,
            filters: (0..n).map(|_| OneEuroFilter::new(1.5, 3.0)).collect(),
            prev_detection: None,
            prev_fit: None,
            rng: Pcg32::with_stream(seed, 0x4B50),
            frame_dt: 1.0 / 30.0,
            quality_reference_resolution: 96,
        }
    }

    /// The fitted parameters for a frame (exposed for tests/benches).
    pub fn fit_frame(&mut self, frame: &SceneFrame) -> Result<(SmplxParams, Vec<Vec3>)> {
        let posed = self.skeleton.forward_kinematics(&frame.params);
        let truth = LandmarkSet::new(self.config.landmarks).positions(&posed);
        let mut detected = self.detector.detect_with_hold(&truth, self.prev_detection.as_deref(), &mut self.rng);
        if self.config.filter {
            for (f, p) in self.filters.iter_mut().zip(detected.iter_mut()) {
                *p = f.filter(*p, self.frame_dt);
            }
        }
        self.prev_detection = Some(detected.clone());
        if detected.len() < 25 {
            return Err(SemHoloError::Extraction(format!(
                "only {} keypoints detected, need at least 25",
                detected.len()
            )));
        }
        let mut fitted = fit_params(&detected, &self.skeleton)
            .map_err(SemHoloError::Extraction)?;
        // Shape comes from the calibration phase; expression from the
        // face-tracker channel (small noise models tracker error).
        fitted.betas = frame.params.betas;
        for (e, t) in fitted.expression.iter_mut().zip(&frame.params.expression) {
            *e = (t + self.rng.normal() * 0.02).clamp(-1.0, 2.0);
        }
        // Parametric temporal prior: blend toward the previous fit.
        let s = self.config.parameter_smoothing.clamp(0.0, 0.95);
        if s > 0.0 {
            if let Some(prev) = &self.prev_fit {
                fitted = fitted.lerp(prev, s);
            }
        }
        self.prev_fit = Some(fitted.clone());
        Ok((fitted, detected))
    }
}

impl SemanticPipeline for KeypointPipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::Keypoint
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        self.frame_dt = 1.0 / frame.context.config.fps;
        let (fitted, detected) = self.fit_frame(frame)?;
        let mut keypoints = detected;
        keypoints.truncate(PAYLOAD_KEYPOINTS);
        let payload = PosePayload::new(fitted, keypoints);
        let compressed = lzma_compress(&payload.to_bytes());
        let gflops = self.config.detector.gflops_per_frame(self.config.landmarks.count());
        Ok(EncodedFrame {
            payload: Bytes::from(compressed),
            extract: StageCost { cpu_wall: t0.elapsed(), gpu: Some(detector_workload(gflops)) },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        let raw = lzma_decompress(payload).map_err(reject_decode)?;
        let pose = PosePayload::from_bytes(&raw).map_err(reject_decode)?;
        let sdf = match self.config.mode {
            ReconstructionMode::Parametric => {
                BodySdf::from_pose(&self.skeleton, &pose.params, SurfaceDetail::bare())
            }
            ReconstructionMode::ModelFree => {
                if pose.keypoints.len() < JOINT_COUNT {
                    return Err(SemHoloError::Reconstruction("too few keypoints for model-free".into()));
                }
                let mut positions = [Vec3::ZERO; JOINT_COUNT];
                positions.copy_from_slice(&pose.keypoints[..JOINT_COUNT]);
                let mut expr = [0.0f32; EXPRESSION_DIM];
                expr.copy_from_slice(&pose.params.expression);
                BodySdf::from_joint_positions(&positions, &expr, SurfaceDetail::bare())
            }
        };
        let (mesh, _stats) = sparse_extract_with_stats(&sdf, self.config.resolution, 0.03);
        // The modeled workload represents X-Avatar's implicit-network
        // queries at this resolution (calibration in holo-gpu).
        let workload = reconstruction_workload(self.config.resolution, None).workload;
        Ok(Reconstructed {
            content: Content::Mesh(mesh),
            recon: StageCost { cpu_wall: t0.elapsed(), gpu: Some(workload) },
        })
    }

    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        let Content::Mesh(mesh) = content else {
            return QualityReport::default();
        };
        let gt = frame.ground_truth_mesh(self.quality_reference_resolution);
        mesh_quality(&gt, mesh, frame.context.config.seed ^ frame.index as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.5)
    }

    fn pipeline(res: u32) -> KeypointPipeline {
        KeypointPipeline::new(KeypointConfig { resolution: res, ..Default::default() }, 7)
    }

    #[test]
    fn payload_is_compressed_pose_size() {
        let scene = scene();
        let mut p = pipeline(64);
        let enc = p.encode(&scene.frame(0)).unwrap();
        // Raw payload is 1956 B; LZMA must shrink it.
        assert!(enc.payload.len() < PosePayload::WIRE_SIZE, "compressed {} B", enc.payload.len());
        assert!(enc.payload.len() > 500, "implausibly small {} B", enc.payload.len());
    }

    #[test]
    fn roundtrip_produces_plausible_body_mesh() {
        let scene = scene();
        let mut p = pipeline(64);
        let enc = p.encode(&scene.frame(0)).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(mesh) = &rec.content else { panic!("expected mesh") };
        assert!(mesh.face_count() > 2000, "faces {}", mesh.face_count());
        assert!(mesh.validate().is_ok());
        let size = mesh.bounds().size();
        assert!(size.y > 1.2 && size.y < 2.2, "body height {size:?}");
    }

    #[test]
    fn quality_reasonable_and_resolution_helps() {
        let scene = scene();
        let frame = scene.frame(0);
        let mut lo = pipeline(32);
        let mut hi = pipeline(96);
        let enc = lo.encode(&frame).unwrap();
        let rec_lo = lo.decode(&enc.payload).unwrap();
        let enc2 = hi.encode(&frame).unwrap();
        let rec_hi = hi.decode(&enc2.payload).unwrap();
        let q_lo = lo.quality(&frame, &rec_lo.content);
        let q_hi = hi.quality(&frame, &rec_hi.content);
        let (c_lo, c_hi) = (q_lo.chamfer.unwrap(), q_hi.chamfer.unwrap());
        assert!(c_hi < c_lo, "chamfer should fall with resolution: {c_lo} -> {c_hi}");
        assert!(c_hi < 0.05, "keypoint reconstruction chamfer {c_hi}");
    }

    #[test]
    fn model_free_roundtrip() {
        let scene = scene();
        let mut p = KeypointPipeline::new(
            KeypointConfig { resolution: 48, mode: ReconstructionMode::ModelFree, ..Default::default() },
            9,
        );
        let enc = p.encode(&scene.frame(1)).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Mesh(mesh) = &rec.content else { panic!() };
        assert!(mesh.face_count() > 1000);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut p = pipeline(32);
        assert!(p.decode(&[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn recon_workload_present_and_huge() {
        let scene = scene();
        let mut p = pipeline(128);
        let enc = p.encode(&scene.frame(0)).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let w = rec.recon.gpu.expect("gpu workload");
        // X-Avatar-class reconstruction is petascale per second of video.
        assert!(w.flops > 1e12, "flops {}", w.flops);
    }
}
