//! Error type for the SemHolo pipelines.

use holo_runtime::ser::DecodeError;
use std::fmt;

/// Errors surfaced by SemHolo pipelines and sessions.
#[derive(Debug, Clone, PartialEq)]
pub enum SemHoloError {
    /// A wire payload failed to parse or decompress.
    Codec(String),
    /// A wire payload failed structural validation (typed taxonomy:
    /// truncation, bad magic, checksum mismatch, limit, corruption).
    Decode(DecodeError),
    /// Semantic extraction failed (e.g. too few keypoints).
    Extraction(String),
    /// Reconstruction failed (e.g. edge device out of memory).
    Reconstruction(String),
    /// Invalid configuration.
    Config(String),
}

impl fmt::Display for SemHoloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemHoloError::Codec(m) => write!(f, "codec error: {m}"),
            SemHoloError::Decode(e) => write!(f, "decode error: {e}"),
            SemHoloError::Extraction(m) => write!(f, "extraction error: {m}"),
            SemHoloError::Reconstruction(m) => write!(f, "reconstruction error: {m}"),
            SemHoloError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for SemHoloError {}

impl From<holo_gpu::ExecError> for SemHoloError {
    fn from(e: holo_gpu::ExecError) -> Self {
        SemHoloError::Reconstruction(e.to_string())
    }
}

impl From<DecodeError> for SemHoloError {
    fn from(e: DecodeError) -> Self {
        SemHoloError::Decode(e)
    }
}

/// Convert a typed decode failure into a pipeline error, bumping the
/// per-taxonomy rejection counter (`decode.reject.<kind>`) so hostile
/// or corrupted payloads show up in traces and the chaos matrix.
pub fn reject_decode(e: DecodeError) -> SemHoloError {
    if holo_trace::enabled() {
        holo_trace::counter(&format!("decode.reject.{}", e.kind()), 1);
    }
    SemHoloError::Decode(e)
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SemHoloError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SemHoloError::Codec("bad magic".into()).to_string().contains("bad magic"));
        assert!(SemHoloError::Extraction("x".into()).to_string().starts_with("extraction"));
    }

    #[test]
    fn from_gpu_error() {
        let e: SemHoloError =
            holo_gpu::ExecError::OutOfMemory { required: 1 << 31, available: 1 << 30 }.into();
        assert!(matches!(e, SemHoloError::Reconstruction(_)));
    }
}
