//! Image-based semantics (§3.2): NeRF over delivered 2D views.
//!
//! Sender: render the participant from the rig's viewpoints at a
//! bandwidth-adapted resolution, compress each view with the block
//! texture codec, and ship them. Receiver: keep a user-specific NeRF that
//! was pre-trained in a cold-start session and *fine-tune* it on each
//! frame's views (never retrain from scratch — the §3.2 proposal), then
//! render the viewer's novel viewpoint. Rate adaptation couples the view
//! resolution to a slimmable sub-network width (the §3.2 ladder).

use crate::error::{reject_decode, Result, SemHoloError};
use crate::scene::SceneFrame;
use crate::semantics::{Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
use holo_runtime::bytes::Bytes;
use holo_capture::camera::{Camera, CameraIntrinsics};
use holo_capture::noise::DepthNoiseModel;
use holo_capture::render::{render_rgbd, ShadingConfig};
use holo_compress::primitives::{read_varint, write_varint};
use holo_compress::texture::{Texture, TextureCodec};
use holo_gpu::Workload;
use holo_math::{Pcg32, Vec3};
use holo_neural::nerf::{NerfField, VolumeRenderer};
use holo_neural::train::{psnr, RayDataset, TrainConfig, Trainer};
use std::time::Instant;

/// Image pipeline configuration. Defaults are laptop-scale tiny; the
/// structure (not the pixel count) is what reproduces §3.2.
#[derive(Debug, Clone)]
pub struct ImageConfig {
    /// Resolution ladder (square view side lengths), ascending.
    pub ladder: Vec<(u32, usize)>,
    /// Number of sender views per frame.
    pub views: usize,
    /// Fine-tune steps per frame.
    pub finetune_steps: usize,
    /// Cold-start pre-training steps.
    pub pretrain_steps: usize,
    /// Volume samples per ray.
    pub ray_samples: usize,
}

impl Default for ImageConfig {
    fn default() -> Self {
        Self {
            // (resolution, slimmable width) rungs.
            ladder: vec![(12, 8), (16, 16), (24, 24)],
            views: 2,
            finetune_steps: 12,
            pretrain_steps: 250,
            ray_samples: 8,
        }
    }
}

/// The image-semantics pipeline.
pub struct ImagePipeline {
    /// Configuration.
    pub config: ImageConfig,
    field: NerfField,
    trainer: Trainer,
    train_cfg: TrainConfig,
    pretrained: bool,
    bandwidth_hint: f64,
    rung: usize,
    cam_rng: Pcg32,
    /// Cumulative field queries (drives the GPU model).
    pub total_queries: u64,
}

impl ImagePipeline {
    /// Build the pipeline.
    pub fn new(config: ImageConfig, seed: u64) -> Self {
        let mut rng = Pcg32::with_stream(seed, 0x4E46);
        let field = NerfField::new(4, 32, 3, &mut rng);
        let renderer = VolumeRenderer::new(config.ray_samples, Vec3::ZERO);
        let trainer = Trainer::new(renderer, seed ^ 0x11);
        let train_cfg = TrainConfig { steps: config.finetune_steps, batch: 24, lr: 2e-3, t_near: 0.8, t_far: 4.2 };
        Self {
            config,
            field,
            trainer,
            train_cfg,
            pretrained: false,
            bandwidth_hint: f64::INFINITY,
            rung: 0,
            cam_rng: Pcg32::with_stream(seed, 0x4E47),
            total_queries: 0,
        }
    }

    /// Feed the latest bandwidth prediction (bps); the next frame's
    /// resolution rung adapts to it.
    pub fn set_bandwidth_hint(&mut self, bps: f64) {
        self.bandwidth_hint = bps;
    }

    fn pick_rung(&mut self, fps: f64) -> usize {
        // Choose the highest rung whose compressed bitrate fits 80% of
        // the hint.
        let mut chosen = 0;
        for (i, &(res, _)) in self.config.ladder.iter().enumerate() {
            let bytes = TextureCodec::compressed_size(res, res) * self.config.views;
            let bps = bytes as f64 * 8.0 * fps;
            if bps <= self.bandwidth_hint * 0.8 {
                chosen = i;
            }
        }
        self.rung = chosen;
        chosen
    }

    /// Cameras used by the sender (ring positions; square images at the
    /// rung resolution). The receiver derives the same set from the
    /// header, so no camera data crosses the wire.
    fn view_cameras(&self, res: u32, n: usize) -> Vec<Camera> {
        (0..n)
            .map(|i| {
                let theta = std::f32::consts::TAU * i as f32 / n.max(1) as f32 + 0.35;
                let eye = Vec3::new(2.0 * theta.cos(), 1.3, 2.0 * theta.sin());
                Camera::look_at(CameraIntrinsics::from_fov(res, res, 0.9), eye, Vec3::new(0.0, 1.1, 0.0))
            })
            .collect()
    }

    /// The held-out novel viewpoint the receiver renders for the viewer.
    pub fn novel_camera(&self, res: u32) -> Camera {
        Camera::look_at(
            CameraIntrinsics::from_fov(res, res, 0.9),
            Vec3::new(1.4, 1.6, 1.4),
            Vec3::new(0.0, 1.1, 0.0),
        )
    }

    /// Render a ground-truth image from a camera (shared by sender
    /// encode and quality evaluation).
    fn gt_view(&mut self, frame: &SceneFrame, cam: &Camera) -> Texture {
        let sdf = frame.ground_truth_sdf();
        render_rgbd(&sdf, cam, &DepthNoiseModel::none(), &ShadingConfig::default(), &mut self.cam_rng).color
    }
}

impl SemanticPipeline for ImagePipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::Image
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        let fps = frame.context.config.fps as f64;
        let rung = self.pick_rung(fps);
        let (res, _) = self.config.ladder[rung];
        let cams = self.view_cameras(res, self.config.views);
        let mut payload = Vec::new();
        write_varint(&mut payload, rung as u32);
        write_varint(&mut payload, self.config.views as u32);
        for cam in &cams {
            let img = self.gt_view(frame, cam);
            let compressed = TextureCodec::compress(&img);
            write_varint(&mut payload, compressed.len() as u32);
            payload.extend_from_slice(&compressed);
        }
        Ok(EncodedFrame {
            payload: Bytes::from(payload),
            extract: StageCost { cpu_wall: t0.elapsed(), gpu: None },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        let (rung, mut pos) = read_varint(payload).ok_or_else(|| SemHoloError::Codec("no rung".into()))?;
        let rung = (rung as usize).min(self.config.ladder.len() - 1);
        let (nviews, used) =
            read_varint(&payload[pos..]).ok_or_else(|| SemHoloError::Codec("no view count".into()))?;
        pos += used;
        let (res, width) = self.config.ladder[rung];
        let cams = self.view_cameras(res, nviews as usize);
        let mut views = Vec::with_capacity(nviews as usize);
        for cam in cams {
            let (len, used) =
                read_varint(&payload[pos..]).ok_or_else(|| SemHoloError::Codec("no view len".into()))?;
            pos += used;
            let end = pos + len as usize;
            if end > payload.len() {
                return Err(SemHoloError::Codec("truncated view".into()));
            }
            let tex = TextureCodec::decompress(&payload[pos..end]).map_err(reject_decode)?;
            pos = end;
            views.push((cam, tex));
        }
        // Slimmable width follows the rung.
        self.field.set_active_width(width);
        let data = RayDataset::from_views(&views);
        let steps = if self.pretrained {
            self.config.finetune_steps
        } else {
            self.pretrained = true;
            self.config.pretrain_steps
        };
        let cfg = TrainConfig { steps, ..self.train_cfg };
        let stats = self.trainer.train(&mut self.field, &data, &cfg);
        self.total_queries += stats.field_queries;
        // Render the novel view for the local viewer.
        let novel = self.novel_camera(res);
        let view = self.trainer.render_image(&self.field, &novel, &cfg);
        // Model the *production-scale* cost of this stage: the same step
        // count, but with the batch size (4096 rays), samples per ray
        // (96), headset-resolution novel view (1024^2), and MLP size
        // (130 kFLOP/query, the X-Avatar-class network of holo-gpu's
        // calibration) a deployed system would use. Our tiny substitute
        // runs the same algorithm at a fraction of the arithmetic.
        const PROD_BATCH: f64 = 4096.0;
        const PROD_SAMPLES: f64 = 96.0;
        const PROD_VIEW: f64 = 1024.0 * 1024.0;
        const PROD_FLOPS_PER_QUERY: f64 = 130e3;
        let ft_queries = steps as f64 * PROD_BATCH * PROD_SAMPLES * 3.0; // fwd+bwd
        let render_queries = PROD_VIEW * PROD_SAMPLES;
        let flops = (ft_queries + render_queries) * PROD_FLOPS_PER_QUERY;
        let workload = Workload {
            flops,
            bytes: flops * 0.02,
            peak_memory: 6 * (1u64 << 30),
        };
        Ok(Reconstructed {
            content: Content::View(view),
            recon: StageCost { cpu_wall: t0.elapsed(), gpu: Some(workload) },
        })
    }

    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        let Content::View(view) = content else {
            return QualityReport::default();
        };
        let cam = self.novel_camera(view.width);
        let gt = self.gt_view(frame, &cam);
        QualityReport { psnr_db: Some(psnr(&gt, view)), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (48, 36),
            camera_count: 2,
            ..Default::default()
        };
        SceneSource::new(&config, 0.3)
    }

    fn pipeline() -> ImagePipeline {
        ImagePipeline::new(
            ImageConfig { pretrain_steps: 120, finetune_steps: 8, ..Default::default() },
            5,
        )
    }

    #[test]
    fn encode_emits_compressed_views() {
        let scene = scene();
        let mut p = pipeline();
        let enc = p.encode(&scene.frame(0)).unwrap();
        // 2 views at 12x12 (low rung since no bandwidth hint -> inf -> top rung).
        assert!(enc.payload.len() > 50);
        assert!(enc.payload.len() < 10_000, "payload {} B", enc.payload.len());
    }

    #[test]
    fn abr_rung_tracks_bandwidth() {
        let mut p = pipeline();
        p.set_bandwidth_hint(1e3); // almost nothing
        assert_eq!(p.pick_rung(30.0), 0);
        p.set_bandwidth_hint(1e9);
        assert_eq!(p.pick_rung(30.0), p.config.ladder.len() - 1);
    }

    #[test]
    fn decode_trains_and_renders_novel_view() {
        let scene = scene();
        let mut p = pipeline();
        let frame = scene.frame(0);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::View(view) = &rec.content else { panic!("expected view") };
        assert!(view.width >= 12);
        assert!(p.total_queries > 0);
        let q = p.quality(&frame, &rec.content);
        assert!(q.psnr_db.unwrap() > 5.0, "novel-view PSNR {:?}", q.psnr_db);
    }

    #[test]
    fn finetune_frames_cheaper_than_cold_start() {
        let scene = scene();
        let mut p = pipeline();
        let f0 = scene.frame(0);
        let enc0 = p.encode(&f0).unwrap();
        let _ = p.decode(&enc0.payload).unwrap();
        let cold_queries = p.total_queries;
        let f1 = scene.frame(1);
        let enc1 = p.encode(&f1).unwrap();
        let _ = p.decode(&enc1.payload).unwrap();
        let warm_queries = p.total_queries - cold_queries;
        assert!(
            warm_queries * 5 < cold_queries,
            "fine-tune {warm_queries} vs cold {cold_queries} queries"
        );
    }

    #[test]
    fn quality_improves_over_frames() {
        let scene = scene();
        let mut p = pipeline();
        let mut last_psnr = 0.0;
        for i in 0..3 {
            let frame = scene.frame(i);
            let enc = p.encode(&frame).unwrap();
            let rec = p.decode(&enc.payload).unwrap();
            last_psnr = p.quality(&frame, &rec.content).psnr_db.unwrap();
        }
        assert!(last_psnr > 8.0, "PSNR after warm-up {last_psnr:.1}");
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut p = pipeline();
        assert!(p.decode(&[0xFF, 0xFF]).is_err() || p.decode(&[0xFF, 0xFF]).is_ok());
        // Specifically a truncated view body:
        let mut payload = Vec::new();
        write_varint(&mut payload, 0);
        write_varint(&mut payload, 1);
        write_varint(&mut payload, 1000);
        payload.push(1);
        assert!(p.decode(&payload).is_err());
    }
}
