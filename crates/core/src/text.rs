//! Text-based semantics (§3.3).
//!
//! Sender: fuse the RGB-D captures into a point cloud, caption it into VQ
//! tokens (cold-starting the codebook on the first frame), and ship
//! either the full caption or — exploiting the continuity of human
//! motion — only the token *deltas* against the previous frame. A
//! dedicated global channel carries coarse per-region centroids so the
//! receiver can restore the overall body pose that cell-wise coding
//! loses (the paper's two-step encoding).

use crate::error::{reject_decode, Result, SemHoloError};
use crate::scene::SceneFrame;
use crate::semantics::{cloud_quality, Content, EncodedFrame, QualityReport, Reconstructed, SemanticKind, SemanticPipeline, StageCost};
use holo_runtime::bytes::Bytes;
use holo_compress::primitives::{read_varint, write_varint};
use holo_gpu::Workload;
use holo_math::Pcg32;
use holo_textsem::caption::{Caption, Captioner};
use holo_textsem::cells::CellPartition;
use holo_textsem::channels::{GlobalChannel, GlobalLocalCodec};
use holo_textsem::decode::TextToCloud;
use holo_textsem::delta::DeltaCoder;
use holo_textsem::vq::Codebook;
use std::time::Instant;

/// Text pipeline configuration.
#[derive(Debug, Clone)]
pub struct TextConfig {
    /// Fine partition cells per axis.
    pub cells: u32,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Send token deltas instead of full captions after the first frame.
    pub use_delta: bool,
    /// Send the global (coarse centroid) channel.
    pub use_global_channel: bool,
    /// Token stickiness slack for delta coding (dead-zone quantization;
    /// 1.0 disables, ~1.6 suppresses most noise-driven churn).
    pub token_stickiness: f32,
}

impl Default for TextConfig {
    fn default() -> Self {
        Self { cells: 16, vocabulary: 256, use_delta: true, use_global_channel: true, token_stickiness: 1.6 }
    }
}

/// The text-semantics pipeline.
pub struct TextPipeline {
    /// Configuration.
    pub config: TextConfig,
    codec: Option<GlobalLocalCodec>,
    sender_delta: DeltaCoder,
    receiver_delta: DeltaCoder,
    seed: u64,
    /// Ground-truth reference resolution for quality metrics.
    pub quality_reference_resolution: u32,
}

impl TextPipeline {
    /// Build the pipeline.
    pub fn new(config: TextConfig, seed: u64) -> Self {
        Self {
            config,
            codec: None,
            sender_delta: DeltaCoder::new(),
            receiver_delta: DeltaCoder::new(),
            seed,
            quality_reference_resolution: 96,
        }
    }

    /// Cold start: train the codebook on the first frame's features
    /// (both endpoints derive it identically from the calibration
    /// handshake, so it never crosses the per-frame wire).
    fn ensure_codec(&mut self, frame: &SceneFrame) -> &GlobalLocalCodec {
        if self.codec.is_none() {
            let partition = CellPartition::body_volume(self.config.cells);
            let cloud = frame.captured_cloud();
            let corpus: Vec<_> = partition.features(&cloud.points).into_iter().map(|(_, f)| f).collect();
            let mut rng = Pcg32::with_stream(self.seed, 0x7C);
            let codebook = if corpus.is_empty() {
                Codebook { centers: vec![[0.0; holo_textsem::cells::FEATURE_DIM]] }
            } else {
                Codebook::train(&corpus, self.config.vocabulary, 10, &mut rng)
            };
            self.codec = Some(GlobalLocalCodec {
                global_partition: CellPartition::body_volume(4),
                captioner: Captioner { partition: partition.clone(), codebook: codebook.clone() },
                decoder: TextToCloud::new(partition, codebook),
            });
        }
        self.codec.as_ref().unwrap()
    }
}

/// Payload flags.
const FLAG_DELTA: u32 = 1;
const FLAG_GLOBAL: u32 = 2;

impl SemanticPipeline for TextPipeline {
    fn kind(&self) -> SemanticKind {
        SemanticKind::Text
    }

    fn encode(&mut self, frame: &SceneFrame) -> Result<EncodedFrame> {
        let t0 = Instant::now();
        self.ensure_codec(frame);
        let codec = self.codec.as_ref().unwrap();
        let cloud = frame.captured_cloud();
        let (global, caption) = codec.encode(&cloud.points);
        let is_delta = self.config.use_delta && frame.index > 0;
        // Dead-zone re-quantization against the receiver's current state
        // suppresses noise-driven token churn (worth ~an order of
        // magnitude on delta sizes; see ablation C).
        let caption = if is_delta && self.config.token_stickiness > 1.0 {
            let prev: std::collections::BTreeMap<u32, u16> =
                self.sender_delta.current().tokens.iter().copied().collect();
            codec.captioner.caption_with_reference(&cloud.points, &prev, self.config.token_stickiness)
        } else {
            caption
        };
        let body = if is_delta {
            DeltaCoder::ops_to_bytes(&self.sender_delta.encode(&caption))
        } else {
            self.sender_delta.encode(&caption); // keep state in sync
            caption.to_bytes()
        };
        let mut payload = Vec::new();
        let mut flags = 0u32;
        if is_delta {
            flags |= FLAG_DELTA;
        }
        if self.config.use_global_channel {
            flags |= FLAG_GLOBAL;
        }
        write_varint(&mut payload, flags);
        if self.config.use_global_channel {
            let gb = global.to_bytes();
            write_varint(&mut payload, gb.len() as u32);
            payload.extend_from_slice(&gb);
        }
        payload.extend_from_slice(&body);
        // Extraction: dense-captioning-model class inference (Scan2Cap /
        // Vote2Cap-DETR scale: a 3D backbone plus a caption decoder — the
        // paper grades text extraction H).
        let flops = 1.5e12 + caption.len() as f64 * 2e8;
        Ok(EncodedFrame {
            payload: Bytes::from(payload),
            extract: StageCost {
                cpu_wall: t0.elapsed(),
                gpu: Some(Workload { flops, bytes: flops * 0.02, peak_memory: 3 * (1u64 << 30) }),
            },
        })
    }

    fn decode(&mut self, payload: &[u8]) -> Result<Reconstructed> {
        let t0 = Instant::now();
        let codec = self.codec.as_ref().ok_or_else(|| {
            SemHoloError::Reconstruction("codec not cold-started (decode before first encode)".into())
        })?;
        let (flags, mut pos) =
            read_varint(payload).ok_or_else(|| SemHoloError::Codec("no flags".into()))?;
        let global = if flags & FLAG_GLOBAL != 0 {
            let (len, used) =
                read_varint(&payload[pos..]).ok_or_else(|| SemHoloError::Codec("no global len".into()))?;
            pos += used;
            let end = pos + len as usize;
            if end > payload.len() {
                return Err(SemHoloError::Codec("truncated global channel".into()));
            }
            let g = GlobalChannel::from_bytes(&payload[pos..end]).map_err(reject_decode)?;
            pos = end;
            Some(g)
        } else {
            None
        };
        let caption = if flags & FLAG_DELTA != 0 {
            let ops = DeltaCoder::ops_from_bytes(&payload[pos..]).map_err(reject_decode)?;
            self.receiver_delta.apply(&ops);
            self.receiver_delta.current()
        } else {
            let c = Caption::from_bytes(&payload[pos..]).map_err(reject_decode)?;
            // Resync receiver delta state.
            self.receiver_delta = DeltaCoder::new();
            self.receiver_delta.apply(
                &c.tokens.iter().map(|&(cell, t)| holo_textsem::delta::DeltaOp::Set(cell, t)).collect::<Vec<_>>(),
            );
            c
        };
        let cloud = codec.decode(global.as_ref(), &caption);
        // Reconstruction: text-to-3D generative model class inference
        // (Point-E / Shap-E scale: a diffusion sampler over the point
        // set — seconds per frame on an A100, the paper's H grade).
        let points = codec.decoder.decode_cost(&caption);
        let flops = 2.0e13 + points as f64 * 5e7;
        Ok(Reconstructed {
            content: Content::Cloud(cloud),
            recon: StageCost {
                cpu_wall: t0.elapsed(),
                gpu: Some(Workload { flops, bytes: flops * 0.02, peak_memory: 4 * (1u64 << 30) }),
            },
        })
    }

    fn quality(&mut self, frame: &SceneFrame, content: &Content) -> QualityReport {
        let Content::Cloud(cloud) = content else {
            return QualityReport::default();
        };
        let gt = frame.ground_truth_mesh(self.quality_reference_resolution);
        cloud_quality(&gt, cloud, frame.context.config.seed ^ frame.index as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SemHoloConfig;
    use crate::scene::SceneSource;

    fn scene() -> SceneSource {
        let config = SemHoloConfig {
            capture_resolution: (64, 48),
            camera_count: 3,
            ..Default::default()
        };
        SceneSource::new(&config, 0.4)
    }

    #[test]
    fn roundtrip_reconstructs_cloud() {
        let scene = scene();
        let mut p = TextPipeline::new(TextConfig::default(), 3);
        let frame = scene.frame(0);
        let enc = p.encode(&frame).unwrap();
        let rec = p.decode(&enc.payload).unwrap();
        let Content::Cloud(cloud) = &rec.content else { panic!("expected cloud") };
        assert!(cloud.len() > 200, "reconstructed {} points", cloud.len());
        let q = p.quality(&frame, &rec.content);
        assert!(q.chamfer.unwrap() < 0.15, "text chamfer {}", q.chamfer.unwrap());
    }

    #[test]
    fn payload_is_tiny() {
        let scene = scene();
        let mut p = TextPipeline::new(TextConfig::default(), 4);
        let enc = p.encode(&scene.frame(0)).unwrap();
        // Full first-frame caption still far below even the pose payload
        // class; later deltas are smaller still.
        assert!(enc.payload.len() < 4000, "text payload {} B", enc.payload.len());
    }

    #[test]
    fn deltas_shrink_subsequent_frames() {
        let scene = scene();
        let mut p = TextPipeline::new(TextConfig::default(), 5);
        let first = p.encode(&scene.frame(0)).unwrap().payload.len();
        let mut delta_sizes = Vec::new();
        for i in 1..4 {
            let e = p.encode(&scene.frame(i)).unwrap();
            let _ = p.decode(&e.payload).unwrap();
            delta_sizes.push(e.payload.len());
        }
        let mean_delta = delta_sizes.iter().sum::<usize>() / delta_sizes.len();
        assert!(
            mean_delta < first,
            "delta frames ({mean_delta} B) should be smaller than the full frame ({first} B)"
        );
    }

    #[test]
    fn sender_receiver_stay_in_sync_over_deltas() {
        let scene = scene();
        let mut p = TextPipeline::new(TextConfig::default(), 6);
        for i in 0..5 {
            let frame = scene.frame(i);
            let enc = p.encode(&frame).unwrap();
            let rec = p.decode(&enc.payload).unwrap();
            let Content::Cloud(cloud) = &rec.content else { panic!() };
            assert!(!cloud.is_empty(), "frame {i} reconstructed empty");
        }
        // Receiver state must equal sender state.
        assert_eq!(p.sender_delta.current(), p.receiver_delta.current());
    }

    #[test]
    fn global_channel_toggle_works() {
        let scene = scene();
        let frame = scene.frame(0);
        let mut with = TextPipeline::new(TextConfig { use_global_channel: true, ..Default::default() }, 7);
        let mut without = TextPipeline::new(TextConfig { use_global_channel: false, ..Default::default() }, 7);
        let ew = with.encode(&frame).unwrap();
        let eo = without.encode(&frame).unwrap();
        assert!(ew.payload.len() > eo.payload.len(), "global channel adds bytes");
        assert!(with.decode(&ew.payload).is_ok());
        assert!(without.decode(&eo.payload).is_ok());
    }

    #[test]
    fn decode_before_encode_errors() {
        let mut p = TextPipeline::new(TextConfig::default(), 8);
        assert!(p.decode(&[0]).is_err());
    }
}
