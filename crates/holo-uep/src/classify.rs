//! Deriving an importance class for every frame.
//!
//! Classification is a pure function of facts both endpoints already
//! share (frame index, keyframe cadence, stream length, payload kind),
//! so sender and receiver agree on every frame's class without any
//! extra signalling — the wire header ([`holo_net::wire::UepHeader`])
//! carries the class only so middleboxes and the chaos harness can
//! check the two derivations never diverge.

use holo_conf::frame::{gop_descendants, FrameTag};
use holo_net::wire::{ImportanceClass, PayloadKind};

/// Importance class of frame `index` in a stream of `total` frames
/// under a keyframe cadence of `gop`.
///
/// The rules, most to least important:
///
/// * **Critical** — keyframes. Losing one poisons its entire GOP; it
///   is the only frame that can re-seed a broken chain. Critical is
///   *structural*: only keyframes get it, regardless of payload kind.
/// * **High** — early deltas, where more than half the GOP still
///   depends on them (`2 * descendants > gop`), plus any semantic
///   payload (keypoints, control) that would otherwise rank lower:
///   those bytes steer the avatar and are bumped one class.
/// * **Medium** — mid-GOP deltas with at least one descendant.
/// * **Low** — the last delta before the next key. Nothing depends on
///   it; once its own render deadline passes it is worthless.
pub fn classify(index: usize, total: usize, gop: usize, kind: PayloadKind) -> ImportanceClass {
    if FrameTag::for_index(index, gop).is_key() {
        return ImportanceClass::Critical;
    }
    let descendants = gop_descendants(index, gop, total);
    let base = if 2 * descendants > gop {
        ImportanceClass::High
    } else if descendants == 0 {
        ImportanceClass::Low
    } else {
        ImportanceClass::Medium
    };
    if matches!(kind, PayloadKind::Keypoints | PayloadKind::Control) {
        bump(base)
    } else {
        base
    }
}

/// One class more important, saturating at [`ImportanceClass::High`]:
/// Critical is reserved for keyframes (it buys duplication, which only
/// a chain-seeding frame earns), so a bumped delta tops out at High.
fn bump(class: ImportanceClass) -> ImportanceClass {
    match class {
        ImportanceClass::Critical | ImportanceClass::High => ImportanceClass::High,
        ImportanceClass::Medium => ImportanceClass::High,
        ImportanceClass::Low => ImportanceClass::Medium,
    }
}

/// Frame count per class over a whole stream, indexed by
/// `ImportanceClass as usize`. This is the denominator of every
/// budget-accounting computation in [`crate::policy`].
pub fn class_histogram(total: usize, gop: usize, kind: PayloadKind) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for index in 0..total {
        counts[classify(index, total, gop, kind) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gop_positions_map_to_the_documented_classes() {
        // gop=10, total=150, mesh payload (no bump): position 0 is the
        // key, 1-3 carry more than half the GOP, 4-8 are mid, 9 last.
        let classes: Vec<ImportanceClass> =
            (0..10).map(|i| classify(i, 150, 10, PayloadKind::Mesh)).collect();
        use ImportanceClass::{Critical, High, Low, Medium};
        assert_eq!(
            classes,
            [Critical, High, High, High, Medium, Medium, Medium, Medium, Medium, Low]
        );
        // The next GOP repeats the pattern exactly.
        for (i, &class) in classes.iter().enumerate() {
            assert_eq!(class, classify(10 + i, 150, 10, PayloadKind::Mesh), "position {i}");
        }
    }

    #[test]
    fn semantic_payloads_are_bumped_one_class_but_never_into_critical() {
        for kind in [PayloadKind::Keypoints, PayloadKind::Control] {
            assert_eq!(classify(0, 150, 10, kind), ImportanceClass::Critical, "keys stay keys");
            assert_eq!(classify(1, 150, 10, kind), ImportanceClass::High, "High saturates");
            assert_eq!(classify(5, 150, 10, kind), ImportanceClass::High, "Medium -> High");
            assert_eq!(classify(9, 150, 10, kind), ImportanceClass::Medium, "Low -> Medium");
        }
        // Non-semantic payloads are untouched.
        for kind in [PayloadKind::Mesh, PayloadKind::Image, PayloadKind::Text, PayloadKind::GaussianUpdate] {
            assert_eq!(classify(5, 150, 10, kind), ImportanceClass::Medium);
        }
    }

    #[test]
    fn all_key_streams_are_all_critical() {
        for gop in [0, 1] {
            for i in 0..20 {
                assert_eq!(classify(i, 20, gop, PayloadKind::Image), ImportanceClass::Critical);
            }
        }
    }

    #[test]
    fn truncated_final_gop_loses_importance() {
        // Stream ends at 145: frame 141 has only 4 descendants left
        // (2*4 <= 10), so it is Medium, not High as in a full GOP.
        assert_eq!(classify(141, 145, 10, PayloadKind::Mesh), ImportanceClass::Medium);
        assert_eq!(classify(144, 145, 10, PayloadKind::Mesh), ImportanceClass::Low);
        // In a full-length stream the same position is High.
        assert_eq!(classify(141, 150, 10, PayloadKind::Mesh), ImportanceClass::High);
    }

    #[test]
    fn histogram_matches_per_frame_classification() {
        let h = class_histogram(150, 10, PayloadKind::Mesh);
        // 15 GOPs of [1 key, 3 high, 5 medium, 1 low].
        assert_eq!(h, [15, 45, 75, 15]);
        assert_eq!(h.iter().sum::<usize>(), 150);
        // Bumped payloads shift the histogram up, total preserved.
        let h = class_histogram(150, 10, PayloadKind::Keypoints);
        assert_eq!(h, [15, 120, 15, 0]);
        assert_eq!(h.iter().sum::<usize>(), 150);
    }
}
