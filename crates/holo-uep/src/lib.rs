//! Semantic-importance unequal protection (UEP).
//!
//! The paper's core claim is that telepresence traffic is not opaque
//! bytes: a keyframe that re-seeds a dependency chain, a keypoint
//! payload that drives an avatar, and the ninth delta of a GOP that
//! nothing depends on are *semantically* different, and a transport
//! that spends its redundancy budget uniformly across them wastes most
//! of it. This crate is the policy layer of that argument:
//!
//! * [`classify`] derives an [`ImportanceClass`] for every frame,
//!   deterministically, from facts the sender already knows — its
//!   keyframe/delta role ([`holo_conf::frame::FrameTag`]), how many
//!   frames transitively depend on it
//!   ([`holo_conf::frame::gop_descendants`]), and its payload kind.
//! * [`UepPolicy`] maps classes to concrete protection: per-class FEC
//!   stripe strength, per-class retransmit aggressiveness, and a
//!   deadline-aware *abandonment* rule that stops retransmitting a
//!   delta once no frame that depends on it can still render in time.
//!
//! The crate deliberately contains no I/O and no event loop: it is the
//! pure decision layer. `holo-chaos` owns the scheduler that executes
//! these decisions over a fault-injected link, and its sweeps hold the
//! redundancy budget *equal* between [`UepPolicy::uniform`] and
//! [`UepPolicy::weighted`] — the accounting functions
//! ([`UepPolicy::parity_frames`], [`UepPolicy::scheduled_retries`])
//! exist so that equality is checked in bytes and retry slots, not
//! asserted in prose.

pub mod classify;
pub mod policy;

pub use classify::{class_histogram, classify};
pub use holo_net::wire::ImportanceClass;
pub use policy::{last_useful_instant, ClassProtection, PolicyError, StripeSpec, UepPolicy};
