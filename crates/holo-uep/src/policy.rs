//! Protection policy: how each importance class spends the budget.
//!
//! A policy answers three questions per class under ONE shared
//! redundancy budget:
//!
//! 1. **FEC** — how strong is the stripe? Stronger protection means a
//!    smaller `k` per parity frame (more overhead per frame).
//! 2. **Retransmit** — how eagerly do we retry? A tighter RTO and more
//!    attempts for frames whose loss poisons a chain.
//! 3. **Abandonment** — when do we stop? A delta whose every dependent
//!    frame has already missed its render deadline is dead weight in
//!    the retransmit queue; abandoning it frees the link for frames
//!    that still matter.
//!
//! The two built-in policies, [`UepPolicy::uniform`] and
//! [`UepPolicy::weighted`], are budget twins: over the canonical
//! 150-frame / GOP-10 stream they emit exactly the same number of
//! parity frames and schedule exactly the same number of retry slots
//! ([`UepPolicy::parity_frames`], [`UepPolicy::scheduled_retries`]
//! prove it in tests). Any quality difference between them is
//! therefore pure *allocation*, not extra spend.

use std::time::Duration;

use holo_net::time::SimTime;
use holo_net::wire::{ImportanceClass, PayloadKind};
use holo_runtime::ser::{JsonValue, ToJson};

use crate::classify::classify;

/// One XOR-parity interleaved stripe configuration: `r` parity frames
/// protect each full group of `k` data frames (the same shape as
/// `holo-chaos::fec::FecConfig`, restated here because the dependency
/// arrow points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSpec {
    /// Data frames per group.
    pub k: u8,
    /// Parity frames per group (`1..=k`).
    pub r: u8,
}

impl StripeSpec {
    /// Redundancy overhead fraction, `r / k`.
    pub fn overhead(&self) -> f64 {
        f64::from(self.r) / f64::from(self.k.max(1))
    }
}

impl ToJson for StripeSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([("k", self.k.to_json()), ("r", self.r.to_json())])
    }
}

/// Why a [`UepPolicy`] failed [`UepPolicy::validate`]. Same taxonomy
/// shape as `holo_runtime::ser::DecodeError`: typed variants, a stable
/// [`kind`](PolicyError::kind), `Display`, `std::error::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// A class stripe with `k == 0` data frames.
    ZeroStripeData {
        /// Offending class.
        class: ImportanceClass,
    },
    /// A class stripe with `r == 0`: use `stripe: None` instead, so
    /// "unprotected" has exactly one representation.
    ZeroParity {
        /// Offending class.
        class: ImportanceClass,
    },
    /// More parity than data in one stripe group.
    ParityExceedsData {
        /// Offending class.
        class: ImportanceClass,
        /// Data frames per group.
        k: u8,
        /// Parity frames per group.
        r: u8,
    },
    /// The render deadline is zero — every frame would be born dead.
    ZeroDeadline,
    /// A class retransmit RTO of zero would busy-loop the scheduler.
    ZeroRto {
        /// Offending class.
        class: ImportanceClass,
    },
    /// A non-finite retransmit backoff multiplier.
    NonFiniteBackoff {
        /// Offending class.
        class: ImportanceClass,
    },
    /// A single-lane (non-per-class) policy whose classes disagree on
    /// the stripe: with one FEC lane there is one stripe config.
    MixedUniformStripes,
}

impl PolicyError {
    /// Stable lowercase tag (report keys, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            PolicyError::ZeroStripeData { .. } => "zero_stripe_data",
            PolicyError::ZeroParity { .. } => "zero_parity",
            PolicyError::ParityExceedsData { .. } => "parity_exceeds_data",
            PolicyError::ZeroDeadline => "zero_deadline",
            PolicyError::ZeroRto { .. } => "zero_rto",
            PolicyError::NonFiniteBackoff { .. } => "non_finite_backoff",
            PolicyError::MixedUniformStripes => "mixed_uniform_stripes",
        }
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::ZeroStripeData { class } => {
                write!(f, "class {} FEC stripe needs k >= 1 data frames per group", class.name())
            }
            PolicyError::ZeroParity { class } => {
                write!(f, "class {} FEC stripe has r = 0; use no stripe instead", class.name())
            }
            PolicyError::ParityExceedsData { class, k, r } => {
                write!(f, "class {} FEC parity r={r} must be in 1..=k={k}", class.name())
            }
            PolicyError::ZeroDeadline => write!(f, "render deadline must be positive"),
            PolicyError::ZeroRto { class } => {
                write!(f, "class {} retransmit RTO must be positive", class.name())
            }
            PolicyError::NonFiniteBackoff { class } => {
                write!(f, "class {} retransmit backoff must be finite", class.name())
            }
            PolicyError::MixedUniformStripes => {
                write!(f, "single-lane policy must use one stripe config for every class")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Protection parameters for one importance class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProtection {
    /// FEC stripe, or `None` for unprotected.
    pub stripe: Option<StripeSpec>,
    /// Retransmit timeout before the first retry.
    pub rto: Duration,
    /// Exponential backoff multiplier between retries.
    pub backoff: f64,
    /// Retry attempts after the initial send.
    pub max_retries: u32,
    /// Whether retries past the last useful instant are abandoned
    /// (see [`last_useful_instant`]). Classes that seed chains keep
    /// retrying: a late keyframe still rescues every later delta.
    pub abandon: bool,
}

impl ToJson for ClassProtection {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("fec", self.stripe.to_json()),
            ("rto_ms", JsonValue::Num(self.rto.as_secs_f64() * 1e3)),
            ("backoff", self.backoff.to_json()),
            ("max_retries", self.max_retries.to_json()),
            ("abandon", self.abandon.to_json()),
        ])
    }
}

/// A complete unequal-protection policy: one [`ClassProtection`] per
/// [`ImportanceClass`], plus the shared render deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct UepPolicy {
    /// Stable policy name (report keys).
    pub name: &'static str,
    /// Whether frames carry a `UepHeader` on the wire (+19 bytes per
    /// frame, charged honestly against the sender's link).
    pub tagged: bool,
    /// Whether FEC stripes run per class (`true`) or over the whole
    /// frame sequence as one lane (`false`).
    pub per_class_fec: bool,
    /// Render deadline: a frame arriving later than `capture +
    /// deadline` is decodable but no longer *usable*.
    pub deadline: Duration,
    /// Per-class protection, indexed by `ImportanceClass as usize`.
    pub classes: [ClassProtection; 4],
}

impl UepPolicy {
    /// The class-blind baseline: every frame gets the same (4, 1)
    /// stripe and the same 50 ms / 2.0x / 3-retry schedule, nothing is
    /// ever abandoned, and no UEP header is spent on the wire. This is
    /// exactly the protection the pre-UEP chaos harness applied.
    pub fn uniform() -> Self {
        let everyone = ClassProtection {
            stripe: Some(StripeSpec { k: 4, r: 1 }),
            rto: Duration::from_millis(50),
            backoff: 2.0,
            max_retries: 3,
            abandon: false,
        };
        UepPolicy {
            name: "uniform",
            tagged: false,
            per_class_fec: false,
            deadline: Duration::from_millis(150),
            classes: [everyone; 4],
        }
    }

    /// The importance-weighted policy. Budget twin of
    /// [`UepPolicy::uniform`] over the canonical 150-frame / GOP-10
    /// stream (37 parity frames, 450 scheduled retries — the tests
    /// pin both), allocated where loss actually hurts:
    ///
    /// * **Critical** (keyframes): (1, 1) duplication — the parity
    ///   frame IS a copy, shipped immediately, so a lost key rebuilds
    ///   in milliseconds instead of waiting out a stripe. Tight 30 ms
    ///   RTO, 4 retries, never abandoned.
    /// * **High** (early deltas): (3, 1) stripes, 40 ms RTO with 2.5x
    ///   backoff, never abandoned — more than half the GOP rides on
    ///   these frames.
    /// * **Medium** (mid deltas): (10, 1) stripes — thin protection —
    ///   and retries that give up once every dependent frame has
    ///   missed its deadline.
    /// * **Low** (last delta of the GOP): no FEC at all, two lazy
    ///   retries, abandoned at its own deadline. Nothing depends on
    ///   it; the budget it gives up pays for the keyframe copies.
    pub fn weighted() -> Self {
        UepPolicy {
            name: "weighted",
            tagged: true,
            per_class_fec: true,
            deadline: Duration::from_millis(150),
            classes: [
                // Critical
                ClassProtection {
                    stripe: Some(StripeSpec { k: 1, r: 1 }),
                    rto: Duration::from_millis(30),
                    backoff: 2.0,
                    max_retries: 4,
                    abandon: false,
                },
                // High
                ClassProtection {
                    stripe: Some(StripeSpec { k: 3, r: 1 }),
                    rto: Duration::from_millis(40),
                    backoff: 2.5,
                    max_retries: 3,
                    abandon: false,
                },
                // Medium
                ClassProtection {
                    stripe: Some(StripeSpec { k: 10, r: 1 }),
                    rto: Duration::from_millis(40),
                    backoff: 2.5,
                    max_retries: 3,
                    abandon: true,
                },
                // Low
                ClassProtection {
                    stripe: None,
                    rto: Duration::from_millis(50),
                    backoff: 2.0,
                    max_retries: 2,
                    abandon: true,
                },
            ],
        }
    }

    /// Validate every class and the cross-class invariants.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.deadline.is_zero() {
            return Err(PolicyError::ZeroDeadline);
        }
        for class in ImportanceClass::ALL {
            let p = &self.classes[class as usize];
            if let Some(s) = p.stripe {
                if s.k == 0 {
                    return Err(PolicyError::ZeroStripeData { class });
                }
                if s.r == 0 {
                    return Err(PolicyError::ZeroParity { class });
                }
                if s.r > s.k {
                    return Err(PolicyError::ParityExceedsData { class, k: s.k, r: s.r });
                }
            }
            if p.rto.is_zero() {
                return Err(PolicyError::ZeroRto { class });
            }
            if !p.backoff.is_finite() {
                return Err(PolicyError::NonFiniteBackoff { class });
            }
        }
        if !self.per_class_fec {
            let first = self.classes[0].stripe;
            if self.classes.iter().any(|p| p.stripe != first) {
                return Err(PolicyError::MixedUniformStripes);
            }
        }
        Ok(())
    }

    /// The protection parameters for one class.
    pub fn protection(&self, class: ImportanceClass) -> &ClassProtection {
        &self.classes[class as usize]
    }

    /// Which FEC lane a class stripes in: its own lane under per-class
    /// FEC, lane 0 otherwise.
    pub fn fec_lane(&self, class: ImportanceClass) -> usize {
        if self.per_class_fec {
            class as usize
        } else {
            0
        }
    }

    /// The stripe configuration of one lane (validated policies with a
    /// single lane have identical stripes across classes, so lane 0
    /// can read any of them).
    pub fn lane_stripe(&self, lane: usize) -> Option<StripeSpec> {
        if self.per_class_fec {
            self.classes[lane].stripe
        } else {
            self.classes[0].stripe
        }
    }

    /// Exact number of parity frames this policy emits over a stream:
    /// frames are dealt into lanes in index order, each **full** group
    /// of `k` lane frames earns `r` parity frames, trailing partial
    /// groups earn none. This is the byte half of the budget — the
    /// sweep harness asserts weighted == uniform before comparing
    /// anything else.
    pub fn parity_frames(&self, total: usize, gop: usize, kind: PayloadKind) -> usize {
        let mut lane_frames = [0usize; 4];
        for index in 0..total {
            lane_frames[self.fec_lane(classify(index, total, gop, kind))] += 1;
        }
        let mut parity = 0;
        for (lane, &n) in lane_frames.iter().enumerate() {
            if let Some(s) = self.lane_stripe(lane) {
                parity += (n / s.k as usize) * s.r as usize;
            }
        }
        parity
    }

    /// Exact number of retry slots this policy may schedule over a
    /// stream (`max_retries` summed per frame) — the retransmit half
    /// of the budget. Abandonment can only *decline* to use a slot;
    /// it never adds one.
    pub fn scheduled_retries(&self, total: usize, gop: usize, kind: PayloadKind) -> u64 {
        (0..total)
            .map(|i| u64::from(self.protection(classify(i, total, gop, kind)).max_retries))
            .sum()
    }

    /// Whether a retry of `class` scheduled at `retry_at` should be
    /// abandoned: the class opted in, and the retry cannot make any
    /// frame usable anymore (see [`last_useful_instant`]).
    pub fn should_abandon(
        &self,
        class: ImportanceClass,
        retry_at: SimTime,
        capture: SimTime,
        descendants: usize,
        frame_period: Duration,
    ) -> bool {
        self.protection(class).abandon
            && retry_at >= last_useful_instant(capture, self.deadline, descendants, frame_period)
    }
}

impl ToJson for UepPolicy {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name", self.name.to_json()),
            ("tagged", self.tagged.to_json()),
            ("per_class_fec", self.per_class_fec.to_json()),
            ("deadline_ms", JsonValue::Num(self.deadline.as_secs_f64() * 1e3)),
            (
                "classes",
                JsonValue::obj(
                    ImportanceClass::ALL
                        .iter()
                        .map(|c| (c.name(), self.classes[*c as usize].to_json())),
                ),
            ),
        ])
    }
}

/// The last instant at which delivering a frame could still render
/// something: its furthest descendant is captured `descendants` frame
/// periods later and misses its own render deadline at `capture +
/// descendants * period + deadline`. Dependency chains never cross a
/// keyframe, so a retry scheduled at or after this instant cannot make
/// ANY frame usable — abandoning it is provably harmless to quality
/// and frees link time for frames that still have a future.
pub fn last_useful_instant(
    capture: SimTime,
    deadline: Duration,
    descendants: usize,
    frame_period: Duration,
) -> SimTime {
    capture + deadline + frame_period * descendants as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL: usize = 150;
    const GOP: usize = 10;

    #[test]
    fn policies_are_budget_twins_in_parity_frames() {
        let uniform = UepPolicy::uniform();
        let weighted = UepPolicy::weighted();
        // Uniform: one lane of 150 frames, (4,1) -> 37 full groups.
        assert_eq!(uniform.parity_frames(TOTAL, GOP, PayloadKind::Mesh), 37);
        // Weighted: 15 keys duplicated + 45 high / 3 + 75 medium / 10.
        assert_eq!(weighted.parity_frames(TOTAL, GOP, PayloadKind::Mesh), 15 + 15 + 7);
        assert_eq!(
            uniform.parity_frames(TOTAL, GOP, PayloadKind::Mesh),
            weighted.parity_frames(TOTAL, GOP, PayloadKind::Mesh),
            "equal-budget comparison requires equal parity spend"
        );
    }

    #[test]
    fn policies_are_budget_twins_in_retry_slots() {
        let uniform = UepPolicy::uniform();
        let weighted = UepPolicy::weighted();
        // Uniform: 150 * 3. Weighted per GOP: 1*4 + 3*3 + 5*3 + 1*2 = 30.
        assert_eq!(uniform.scheduled_retries(TOTAL, GOP, PayloadKind::Mesh), 450);
        assert_eq!(weighted.scheduled_retries(TOTAL, GOP, PayloadKind::Mesh), 450);
    }

    #[test]
    fn builtin_policies_validate() {
        assert_eq!(UepPolicy::uniform().validate(), Ok(()));
        assert_eq!(UepPolicy::weighted().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_each_misconfiguration() {
        let mut p = UepPolicy::weighted();
        p.deadline = Duration::ZERO;
        assert_eq!(p.validate().unwrap_err(), PolicyError::ZeroDeadline);

        let mut p = UepPolicy::weighted();
        p.classes[1].stripe = Some(StripeSpec { k: 0, r: 1 });
        let err = p.validate().unwrap_err();
        assert_eq!(err, PolicyError::ZeroStripeData { class: ImportanceClass::High });
        assert_eq!(err.kind(), "zero_stripe_data");
        assert!(err.to_string().contains("high"));

        let mut p = UepPolicy::weighted();
        p.classes[2].stripe = Some(StripeSpec { k: 10, r: 0 });
        assert_eq!(
            p.validate().unwrap_err(),
            PolicyError::ZeroParity { class: ImportanceClass::Medium }
        );

        let mut p = UepPolicy::weighted();
        p.classes[0].stripe = Some(StripeSpec { k: 2, r: 3 });
        let err = p.validate().unwrap_err();
        assert_eq!(
            err,
            PolicyError::ParityExceedsData { class: ImportanceClass::Critical, k: 2, r: 3 }
        );
        assert!(err.to_string().contains("r=3"), "{err}");

        let mut p = UepPolicy::weighted();
        p.classes[3].rto = Duration::ZERO;
        assert_eq!(p.validate().unwrap_err(), PolicyError::ZeroRto { class: ImportanceClass::Low });

        let mut p = UepPolicy::weighted();
        p.classes[1].backoff = f64::NAN;
        assert_eq!(
            p.validate().unwrap_err(),
            PolicyError::NonFiniteBackoff { class: ImportanceClass::High }
        );

        // A single-lane policy with divergent stripes is incoherent.
        let mut p = UepPolicy::uniform();
        p.classes[2].stripe = Some(StripeSpec { k: 8, r: 1 });
        let err = p.validate().unwrap_err();
        assert_eq!(err, PolicyError::MixedUniformStripes);
        assert_eq!(err.kind(), "mixed_uniform_stripes");
        // std::error::Error is implemented (taxonomy parity).
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn lanes_collapse_without_per_class_fec() {
        let uniform = UepPolicy::uniform();
        let weighted = UepPolicy::weighted();
        for class in ImportanceClass::ALL {
            assert_eq!(uniform.fec_lane(class), 0);
            assert_eq!(weighted.fec_lane(class), class as usize);
        }
        assert_eq!(uniform.lane_stripe(0), Some(StripeSpec { k: 4, r: 1 }));
        assert_eq!(weighted.lane_stripe(3), None, "low is unprotected");
    }

    #[test]
    fn abandonment_respects_the_dependency_horizon() {
        let p = UepPolicy::weighted();
        let capture = SimTime::from_millis(1_000);
        let period = Duration::from_millis(20);
        // Medium frame with 4 descendants: last useful instant is
        // capture + 150ms + 4*20ms = capture + 230ms.
        let horizon = last_useful_instant(capture, p.deadline, 4, period);
        assert_eq!(horizon, SimTime::from_millis(1_230));
        let just_before = SimTime::from_millis(1_229);
        assert!(!p.should_abandon(ImportanceClass::Medium, just_before, capture, 4, period));
        assert!(p.should_abandon(ImportanceClass::Medium, horizon, capture, 4, period));
        // A Low frame (no descendants) dies at its own deadline.
        assert!(p.should_abandon(
            ImportanceClass::Low,
            SimTime::from_millis(1_150),
            capture,
            0,
            period
        ));
        // Chain-seeding classes never abandon, however late.
        for class in [ImportanceClass::Critical, ImportanceClass::High] {
            assert!(!p.should_abandon(class, SimTime::from_millis(999_000), capture, 9, period));
        }
        // Uniform never abandons anything: parity with the old harness.
        let u = UepPolicy::uniform();
        for class in ImportanceClass::ALL {
            assert!(!u.should_abandon(class, SimTime::from_millis(999_000), capture, 0, period));
        }
    }

    #[test]
    fn stripe_overhead_is_r_over_k() {
        assert!((StripeSpec { k: 4, r: 1 }.overhead() - 0.25).abs() < 1e-12);
        assert!((StripeSpec { k: 1, r: 1 }.overhead() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policy_spec_serializes_with_class_names() {
        let json = UepPolicy::weighted().to_json();
        let classes = json.get("classes").expect("classes key");
        let critical = classes.get("critical").expect("critical class");
        assert_eq!(critical.get("max_retries"), Some(&JsonValue::Num(4.0)));
        assert_eq!(critical.get("abandon"), Some(&JsonValue::Bool(false)));
        let low = classes.get("low").expect("low class");
        assert_eq!(low.get("fec"), Some(&JsonValue::Null));
        assert_eq!(low.get("abandon"), Some(&JsonValue::Bool(true)));
        assert_eq!(json.get("name"), Some(&JsonValue::Str("weighted".into())));
    }
}
