//! Smoke test for the bench harness itself: run one benchmark at 3
//! iterations, write the report file, and assert the emitted
//! `BENCH_*.json` parses and carries the keys the perf trajectory
//! relies on (`median_ns`, `p95_ns`).

use holo_runtime::bench::{BenchConfig, Criterion};
use holo_runtime::ser;
use std::time::Duration;

fn three_iter_config() -> BenchConfig {
    BenchConfig {
        sample_size: 3,
        iters_per_sample: Some(3),
        warmup: Duration::from_micros(50),
        target_sample_time: Duration::from_micros(100),
        quick: true,
    }
}

#[test]
fn one_bench_at_three_iters_emits_valid_report() {
    let mut c = Criterion::with_config(three_iter_config());
    let mut group = c.benchmark_group("smoke");
    group.bench_function("fib_baseline", |b| {
        b.iter(|| {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..20 {
                (a, b) = (b, a + b);
            }
            a
        })
    });
    group.finish();

    let out_dir = std::env::temp_dir().join(format!("holo_bench_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = c.write_report(&out_dir, "smoke_test").unwrap();
    assert_eq!(path.file_name().unwrap(), "BENCH_smoke_test.json");

    let text = std::fs::read_to_string(&path).unwrap();
    let report = ser::parse(&text).expect("emitted JSON must parse");
    assert_eq!(report.get("bench").unwrap().as_str(), Some("smoke_test"));

    let results = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r.get("group").unwrap().as_str(), Some("smoke"));
    assert_eq!(r.get("name").unwrap().as_str(), Some("fib_baseline"));
    assert_eq!(r.get("samples").unwrap().as_f64(), Some(3.0));
    assert_eq!(r.get("iters_per_sample").unwrap().as_f64(), Some(3.0));
    let median = r.get("median_ns").unwrap().as_f64().expect("median_ns must be a number");
    let p95 = r.get("p95_ns").unwrap().as_f64().expect("p95_ns must be a number");
    assert!(median > 0.0 && median.is_finite());
    assert!(p95 >= median, "p95 {p95} must not undercut median {median}");

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn group_sample_size_capped_in_quick_mode() {
    let mut c = Criterion::with_config(three_iter_config());
    let mut group = c.benchmark_group("g");
    // A paper bench asking for 20 samples must be capped at the quick
    // profile's 3, not stretch the run.
    group.sample_size(20);
    group.bench_function("capped", |b| b.iter(|| 1 + 1));
    group.finish();
    assert_eq!(c.results()[0].samples, 3);
}
