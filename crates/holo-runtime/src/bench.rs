//! Criterion-compatible micro-bench harness.
//!
//! Each `[[bench]]` target (with `harness = false`) builds a `main`
//! via [`bench_main!`](crate::bench_main) / groups via
//! [`bench_group!`](crate::bench_group). A benchmark closure receives a
//! [`Bencher`]; `b.iter(..)` warms the routine up, auto-calibrates an
//! inner iteration count, times a set of samples, and records
//! median/p95/mean/min/max wall-clock per iteration.
//!
//! When the binary exits, the harness writes `BENCH_<target>.json` at
//! the repo root (one file per bench target) so successive PRs can
//! track the perf trajectory, and prints one summary line per
//! benchmark to stderr.
//!
//! Knobs:
//! - `--quick` CLI flag (as in `cargo bench -- --quick`): fewer
//!   samples, shorter warmup.
//! - `HOLO_BENCH_ITERS`: fixed inner iteration count (skips
//!   calibration) — used by the harness smoke test.
//! - `HOLO_BENCH_SAMPLES`: fixed sample count.
//! - `HOLO_BENCH_OUT_DIR`: override the output directory.

use crate::ser::{JsonValue, ToJson};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Measurement configuration for one harness run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Samples (timed batches) per benchmark.
    pub sample_size: usize,
    /// Fixed iterations per sample; `None` auto-calibrates so one
    /// sample takes roughly [`BenchConfig::target_sample_time`].
    pub iters_per_sample: Option<u64>,
    /// Warmup budget before sampling starts.
    pub warmup: Duration,
    /// Auto-calibration aims for one sample of roughly this length.
    pub target_sample_time: Duration,
    /// Quick mode: group-level `sample_size` overrides are capped at
    /// the profile's sample count instead of replacing it.
    pub quick: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let mut cfg = Self {
            sample_size: 20,
            iters_per_sample: None,
            warmup: Duration::from_millis(100),
            target_sample_time: Duration::from_millis(20),
            quick: false,
        };
        if let Some(n) = env_u64("HOLO_BENCH_SAMPLES") {
            cfg.sample_size = (n as usize).max(1);
        }
        if let Some(n) = env_u64("HOLO_BENCH_ITERS") {
            cfg.iters_per_sample = Some(n.max(1));
        }
        cfg
    }
}

impl BenchConfig {
    /// The `--quick` profile: enough samples for a stable median, small
    /// enough that all nine paper benches finish in CI.
    pub fn quick() -> Self {
        let mut cfg = Self {
            sample_size: 5,
            iters_per_sample: None,
            warmup: Duration::from_millis(10),
            target_sample_time: Duration::from_millis(5),
            quick: true,
        };
        // Env overrides still win over the profile.
        if let Some(n) = env_u64("HOLO_BENCH_SAMPLES") {
            cfg.sample_size = (n as usize).max(1);
        }
        if let Some(n) = env_u64("HOLO_BENCH_ITERS") {
            cfg.iters_per_sample = Some(n.max(1));
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (`c.benchmark_group(..)`), empty for ungrouped.
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations inside each sample.
    pub iters_per_sample: u64,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("group", self.group.to_json()),
            ("name", self.name.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
        ])
    }
}

/// Passed to each benchmark closure; `iter` runs the measurement.
pub struct Bencher<'a> {
    config: &'a BenchConfig,
    /// Per-iteration nanoseconds for each sample, filled by `iter`.
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl<'a> Bencher<'a> {
    /// Warm up, calibrate, and time the routine. Results are collected
    /// by the enclosing [`Criterion`].
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let cfg = self.config;
        // Warmup: run until the budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= cfg.warmup {
                break;
            }
        }
        // Calibrate inner iterations so a sample is long enough to
        // time reliably.
        let iters = cfg.iters_per_sample.unwrap_or_else(|| {
            let probe_start = Instant::now();
            std::hint::black_box(routine());
            let once = probe_start.elapsed().max(Duration::from_nanos(1));
            let target = cfg.target_sample_time.as_nanos() as u64;
            (target / once.as_nanos().max(1) as u64).clamp(1, 1_000_000)
        });
        self.iters_per_sample = iters;
        self.sample_ns.clear();
        for _ in 0..cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The harness entry point; drop-in for `criterion::Criterion` at the
/// API surface this workspace uses.
pub struct Criterion {
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::with_config(BenchConfig::default())
    }
}

impl Criterion {
    /// Harness with an explicit configuration (tests use this).
    pub fn with_config(config: BenchConfig) -> Self {
        Self { config, results: Vec::new() }
    }

    /// Harness configured from the CLI arguments `cargo bench` passes
    /// through: `--quick` selects the quick profile; everything else
    /// (`--bench`, filters) is accepted and ignored.
    pub fn from_args() -> Self {
        let quick = std::env::args().skip(1).any(|a| a == "--quick");
        if quick {
            Self::with_config(BenchConfig::quick())
        } else {
            Self::with_config(BenchConfig::default())
        }
    }

    /// Open a named group; benchmarks registered through it share the
    /// group label in the report.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into(), sample_size: None }
    }

    /// Register and run an ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.run_bench(String::new(), name.into(), None, f);
    }

    fn run_bench(
        &mut self,
        group: String,
        name: String,
        sample_size: Option<usize>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut config = self.config.clone();
        if let Some(n) = sample_size {
            // Group-level sample_size, unless the env var pinned it;
            // --quick caps it at the profile count instead.
            if std::env::var("HOLO_BENCH_SAMPLES").is_err() {
                config.sample_size = if config.quick { n.min(config.sample_size) } else { n };
            }
        }
        let mut bencher = Bencher { config: &config, sample_ns: Vec::new(), iters_per_sample: 0 };
        f(&mut bencher);
        if bencher.sample_ns.is_empty() {
            // Closure never called iter(); nothing to record.
            return;
        }
        let mut sorted = bencher.sample_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            group,
            name,
            samples: sorted.len(),
            iters_per_sample: bencher.iters_per_sample,
            median_ns: percentile(&sorted, 0.5),
            p95_ns: percentile(&sorted, 0.95),
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        };
        let label = if result.group.is_empty() {
            result.name.clone()
        } else {
            format!("{}/{}", result.group, result.name)
        };
        eprintln!(
            "[bench] {label}: median {} p95 {} ({} samples x {} iters)",
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialize the whole run as a JSON tree.
    pub fn report_json(&self, bench_name: &str) -> JsonValue {
        JsonValue::obj([
            ("bench", bench_name.to_json()),
            ("results", self.results.to_json()),
        ])
    }

    /// Write `BENCH_<bench_name>.json` into `out_dir`; returns the
    /// written path.
    pub fn write_report(&self, out_dir: &Path, bench_name: &str) -> std::io::Result<PathBuf> {
        let path = out_dir.join(format!("BENCH_{bench_name}.json"));
        std::fs::write(&path, self.report_json(bench_name).render() + "\n")?;
        Ok(path)
    }

    /// Called by [`bench_main!`](crate::bench_main) after all groups
    /// ran: resolve the bench target name and repo root, write the
    /// report.
    pub fn finalize(&self, manifest_dir: &str) {
        let name = bench_target_name();
        let out_dir = std::env::var("HOLO_BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| repo_root(manifest_dir));
        match self.write_report(&out_dir, &name) {
            Ok(path) => eprintln!("[bench] report: {}", path.display()),
            Err(e) => eprintln!("[bench] report write failed for {name}: {e}"),
        }
    }
}

/// The bench target name, recovered from the executable path by
/// stripping the `-<metadata hash>` suffix cargo appends.
fn bench_target_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

/// Repo root from a crate manifest dir: hop out of `crates/<name>`,
/// otherwise use the manifest dir itself.
fn repo_root(manifest_dir: &str) -> PathBuf {
    let dir = Path::new(manifest_dir);
    match dir.parent() {
        Some(parent) if parent.file_name().is_some_and(|n| n == "crates") => {
            parent.parent().unwrap_or(dir).to_path_buf()
        }
        _ => dir.to_path_buf(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing an optional sample-size
/// override; mirrors criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Register and run a benchmark in this group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.criterion.run_bench(self.group.clone(), name.into(), self.sample_size, f);
    }

    /// End the group (results are recorded eagerly; this exists for
    /// criterion source-compatibility).
    pub fn finish(self) {}
}

/// Define a bench group function: `bench_group!(benches, fn_a, fn_b)`
/// creates `fn benches(&mut Criterion)` running each target in order.
/// Alias: `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main()` for a `harness = false` bench target: parses CLI
/// args, runs the groups, writes `BENCH_<target>.json` at the repo
/// root. Alias: `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.finalize(env!("CARGO_MANIFEST_DIR"));
        }
    };
}

/// Criterion-compatible alias for [`bench_group!`](crate::bench_group).
#[macro_export]
macro_rules! criterion_group {
    ($($tt:tt)+) => { $crate::bench_group!($($tt)+); };
}

/// Criterion-compatible alias for [`bench_main!`](crate::bench_main).
#[macro_export]
macro_rules! criterion_main {
    ($($tt:tt)+) => { $crate::bench_main!($($tt)+); };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig {
            sample_size: 3,
            iters_per_sample: Some(3),
            warmup: Duration::from_micros(10),
            target_sample_time: Duration::from_micros(100),
            quick: false,
        }
    }

    #[test]
    fn records_stats_per_benchmark() {
        let mut c = Criterion::with_config(tiny_config());
        let mut group = c.benchmark_group("g");
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 2);
        let r = &c.results()[0];
        assert_eq!((r.group.as_str(), r.name.as_str()), ("g", "sum"));
        assert_eq!(r.samples, 3);
        assert_eq!(r.iters_per_sample, 3);
        assert!(r.median_ns > 0.0 && r.median_ns.is_finite());
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn report_json_contains_required_keys() {
        let mut c = Criterion::with_config(tiny_config());
        c.bench_function("x", |b| b.iter(|| 2 * 2));
        let json = c.report_json("smoke");
        let text = json.render();
        let parsed = crate::ser::parse(&text).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some("smoke"));
        let results = parsed.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].get("median_ns").unwrap().as_f64().unwrap() > 0.0);
        assert!(results[0].get("p95_ns").unwrap().as_f64().is_some());
    }

    #[test]
    fn bench_name_strips_metadata_hash() {
        assert!(!super::bench_target_name().is_empty());
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
