//! Zero-dependency runtime substrate for the SemHolo workspace.
//!
//! Everything the workspace previously pulled from crates.io lives here,
//! so a cold-cache `cargo build --offline` succeeds with no network:
//!
//! - [`bytes`] — cheap-clone, Arc-backed byte buffers compatible with
//!   the `bytes` crate surface the workspace uses (`Bytes`, `BytesMut`,
//!   `slice`, `freeze`, `put_*`/`get_*`).
//! - [`check`] — a deterministic property-testing mini-framework:
//!   seeded shrinking generators driven by the [`holo_prop!`] macro.
//!   Override the base seed with the `HOLO_PROP_SEED` env var.
//! - [`bench`] — a criterion-compatible micro-bench harness (warmup,
//!   per-sample timing, median/p95) that writes `BENCH_<name>.json` at
//!   the repo root for the perf trajectory.
//! - [`ser`] — a minimal derive-free JSON emitter ([`ser::ToJson`]) and
//!   parser, used for bench reports and structured test assertions,
//!   plus the hostile-input decode primitives every wire-facing decoder
//!   shares: the typed [`ser::DecodeError`] taxonomy and the
//!   bounds-checked [`ser::ByteReader`] cursor.
//! - [`par`] — the deterministic fork-join pool (`par_map`/`scope`):
//!   fixed index partitioning, canonical-order merge, panic
//!   propagation, and observer hooks so `holo-trace` can merge worker
//!   recorders byte-identically across `SEMHOLO_THREADS=1..N`.

pub mod bench;
pub mod bytes;
pub mod check;
pub mod par;
pub mod ser;
