//! Deterministic property testing: seeded shrinking generators driven
//! by the [`holo_prop!`](crate::holo_prop) macro.
//!
//! Each property runs a fixed number of cases from a seed derived from
//! the property's name, so a failure reproduces bit-for-bit on every
//! machine and every run. Override the base seed with the
//! `HOLO_PROP_SEED` environment variable (decimal or `0x`-hex) to
//! re-explore the input space or replay a reported failure.
//!
//! On failure, the framework shrinks the counterexample: it repeatedly
//! asks the generator for smaller candidate inputs and keeps the
//! smallest one that still fails, then panics with the minimal input,
//! the seed, and the failure message.

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------
// RNG (splitmix64: tiny, fast, full-period, no external deps)
// ---------------------------------------------------------------------

/// Deterministic generator RNG. Not for cryptography or statistics —
/// only for reproducible test-input generation.
pub struct PropRng {
    state: u64,
}

impl PropRng {
    /// Start a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Property outcome
// ---------------------------------------------------------------------

/// Why a single property case did not pass.
#[derive(Debug)]
pub enum PropFail {
    /// Input rejected by `prop_assume!` — does not count as a case.
    Discard,
    /// Assertion failure with its message.
    Fail(String),
}

impl PropFail {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        PropFail::Fail(msg.into())
    }
}

/// Result of one property-case execution.
pub type PropResult = Result<(), PropFail>;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A seeded, shrinkable input generator.
pub trait Gen {
    /// The value type this generator produces.
    type Value: Clone + Debug;
    /// Draw one value from the RNG stream.
    fn generate(&self, rng: &mut PropRng) -> Self::Value;
    /// Candidate "smaller" values to try during shrinking. Candidates
    /// must stay inside the generator's domain; an empty vec ends
    /// shrinking along this axis.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Types with a canonical full-domain generator (`any::<T>()`).
pub trait Arbitrary: Clone + Debug {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut PropRng) -> Self;
    /// Smaller candidates for shrinking.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Full-domain generator for an [`Arbitrary`] type; mirrors proptest's
/// `any::<T>()` call-site syntax.
pub fn any<T: Arbitrary>() -> AnyGen<T> {
    AnyGen(std::marker::PhantomData)
}

/// Generator returned by [`any`].
pub struct AnyGen<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Gen for AnyGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut PropRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut PropRng) -> Self {
                // Bias toward small values and edge cases: full-range
                // uniform u64s almost never hit the interesting ends.
                match rng.next_u64() % 8 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v > 0 {
                    out.push(0);
                    if v / 2 > 0 { out.push(v / 2); }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )+};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut PropRng) -> Self {
                match rng.next_u64() % 8 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.next_u64() % 16) as $t - 8,
                    _ => rng.next_u64() as $t,
                }
            }
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 { out.push(v / 2); }
                    out.push(v - v.signum());
                }
                out.dedup();
                out
            }
        }
    )+};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut PropRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

macro_rules! gen_int_range {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut PropRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid > lo { out.push(mid); }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )+};
}
gen_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! gen_float_range {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut PropRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                // Toward the low bound, and toward zero if it is inside
                // the range (the usual "simplest" float).
                if (0.0 as $t) > lo && (0.0 as $t) < self.end && v != 0.0 {
                    out.push(0.0);
                }
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v { out.push(mid); }
                }
                out.retain(|c| *c != v);
                out.dedup();
                out
            }
        }
    )+};
}
gen_float_range!(f32, f64);

/// Collection generators (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Vec of `elem`-generated values with length drawn from `len`.
    pub fn vec<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
        VecGen { elem, len }
    }

    /// Generator returned by [`vec`].
    pub struct VecGen<G: Gen> {
        elem: G,
        len: Range<usize>,
    }

    impl<G: Gen> Gen for VecGen<G> {
        type Value = Vec<G::Value>;

        fn generate(&self, rng: &mut PropRng) -> Vec<G::Value> {
            let n = rng.range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
            let min = self.len.start;
            let n = value.len();
            let mut out: Vec<Vec<G::Value>> = Vec::new();
            // Length shrinks first: minimal, half, drop-last.
            if n > min {
                out.push(value[..min].to_vec());
                if n / 2 > min {
                    out.push(value[..n / 2].to_vec());
                }
                out.push(value[..n - 1].to_vec());
            }
            // Then one element-wise pass: every element replaced by its
            // first shrink candidate (length preserved).
            let mut elementwise = value.clone();
            let mut changed = false;
            for e in elementwise.iter_mut() {
                if let Some(c) = self.elem.shrink(e).into_iter().next() {
                    *e = c;
                    changed = true;
                }
            }
            if changed {
                out.push(elementwise);
            }
            out
        }
    }
}

macro_rules! gen_tuple {
    ($(($($g:ident / $v:ident / $i:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut PropRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}
gen_tuple! {
    (A/a/0)
    (A/a/0, B/b/1)
    (A/a/0, B/b/1, C/c/2)
    (A/a/0, B/b/1, C/c/2, D/d/3)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5)
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Environment variable overriding the per-property base seed.
pub const SEED_ENV: &str = "HOLO_PROP_SEED";

fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var(SEED_ENV) {
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            s.parse()
        };
        match parsed {
            Ok(seed) => return seed,
            Err(_) => panic!("{SEED_ENV}={s:?} is not a u64 (decimal or 0x-hex)"),
        }
    }
    // FNV-1a over the property name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_once<V, F: Fn(V) -> PropResult>(f: &F, value: V) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(PropFail::Discard)) => Outcome::Discard,
        Ok(Err(PropFail::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panicked (non-string payload)");
            Outcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// Execute a property: `cases` inputs from `gen`, shrinking the first
/// counterexample. Panics (test failure) with the minimal input, the
/// seed, and the message. Called by the [`holo_prop!`](crate::holo_prop)
/// macro; usable directly for one-off properties.
pub fn run_prop<G: Gen, F: Fn(G::Value) -> PropResult>(name: &str, cases: u32, gen: G, f: F) {
    let seed = base_seed(name);
    let mut rng = PropRng::new(seed);
    let max_discards = cases.saturating_mul(16).max(256);
    let mut discards = 0u32;
    let mut ran = 0u32;
    while ran < cases {
        let value = gen.generate(&mut rng);
        match run_once(&f, value.clone()) {
            Outcome::Pass => ran += 1,
            Outcome::Discard => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "[holo_prop] property '{name}': {discards} inputs discarded before \
                     {cases} cases ran — loosen the generator or the prop_assume!"
                );
            }
            Outcome::Fail(first_msg) => {
                let (min_value, min_msg, steps) = shrink_failure(&gen, &f, value, first_msg);
                panic!(
                    "[holo_prop] property '{name}' failed after {ran} passing cases \
                     ({steps} shrink steps)\n  minimal input: {min_value:?}\n  cause: {min_msg}\n  \
                     reproduce: {SEED_ENV}={seed:#x}"
                );
            }
        }
    }
}

fn shrink_failure<G: Gen, F: Fn(G::Value) -> PropResult>(
    gen: &G,
    f: &F,
    mut current: G::Value,
    mut msg: String,
) -> (G::Value, String, u32) {
    let budget = 512u32;
    let mut steps = 0u32;
    'outer: while steps < budget {
        for candidate in gen.shrink(&current) {
            if steps >= budget {
                break 'outer;
            }
            steps += 1;
            if let Outcome::Fail(m) = run_once(f, candidate.clone()) {
                current = candidate;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (current, msg, steps)
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define deterministic property tests.
///
/// ```ignore
/// holo_prop! {
///     #![cases(64)]
///
///     /// Doubling then halving is the identity.
///     fn double_halve(x in 0u32..10_000) {
///         prop_assert_eq!(x * 2 / 2, x);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` running `cases` inputs (default 64)
/// drawn from the generators after `in`. Inside the body,
/// [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq) and
/// [`prop_assume!`](crate::prop_assume) report failures/discards to the
/// shrinking runner. Set `HOLO_PROP_SEED` to replay a failure.
#[macro_export]
macro_rules! holo_prop {
    ( #![cases($cases:expr)] $($rest:tt)* ) => {
        $crate::__holo_prop_fns!($cases; $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__holo_prop_fns!(64; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __holo_prop_fns {
    ( $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check::run_prop(
                stringify!($name),
                $cases as u32,
                ( $($gen,)+ ),
                |__holo_prop_input| {
                    let ( $($arg,)+ ) = __holo_prop_input;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
}

/// Property-body assertion: reports to the shrinking runner instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::PropFail::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::PropFail::fail(format!($($fmt)+)));
        }
    };
}

/// Property-body equality assertion with Debug output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::check::PropFail::fail(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::check::PropFail::fail(format!(
                "{}\n    left: {:?}\n   right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Property-body inequality assertion with Debug output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::check::PropFail::fail(format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Discard inputs that don't satisfy a precondition; discarded inputs
/// don't count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::PropFail::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = PropRng::new(7);
        let mut b = PropRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = PropRng::new(3);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f32..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&n.len()));
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        // Fails for x >= 100; shrinking must land exactly on 100.
        let gen = (0u32..10_000,);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("shrink_to_minimal", 200, gen, |(x,)| {
                if x >= 100 {
                    return Err(PropFail::fail("too big"));
                }
                Ok(())
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("minimal input: (100,)"), "got: {msg}");
        assert!(msg.contains("reproduce"), "got: {msg}");
    }

    #[test]
    fn vec_shrinks_toward_empty() {
        let gen = collection::vec(any::<u8>(), 0..64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("vec_shrink", 200, (gen,), |(v,): (Vec<u8>,)| {
                if !v.is_empty() {
                    return Err(PropFail::fail("non-empty"));
                }
                Ok(())
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property should have failed"),
        };
        // Minimal non-empty vec is a single shrunk element.
        assert!(msg.contains("minimal input: ([0],)"), "got: {msg}");
    }

    #[test]
    fn discard_does_not_consume_cases() {
        // Every odd input is discarded; the property must still complete
        // 64 cases on evens only.
        let mut even_seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_prop("assume_discards", 64, (any::<u32>(),), |(x,)| {
            if x % 2 == 1 {
                return Err(PropFail::Discard);
            }
            counter.set(counter.get() + 1);
            Ok(())
        });
        even_seen += counter.get();
        assert_eq!(even_seen, 64);
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("panic_shrink", 100, (0u32..1000,), |(x,)| {
                assert!(x < 50, "boom at {x}");
                Ok(())
            });
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("minimal input: (50,)"), "got: {msg}");
        assert!(msg.contains("panic: boom at 50"), "got: {msg}");
    }

    holo_prop! {
        #![cases(32)]

        /// The macro itself: bindings, multiple generators, assertions.
        fn macro_smoke(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a + b < 200);
            prop_assert!(a + b <= 198, "sum {}", a + b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a + b + 1, a + b);
        }
    }
}
