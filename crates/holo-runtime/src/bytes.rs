//! Cheap-clone byte buffers, compatible with the subset of the `bytes`
//! crate surface this workspace uses.
//!
//! [`Bytes`] is an immutable, reference-counted view into a shared
//! allocation: `clone()` and `slice()` are O(1) and never copy.
//! [`BytesMut`] is a growable builder with `put_*` writers that
//! [`BytesMut::freeze`]s into a `Bytes` (one copy into the shared
//! allocation, then free sharing).
//!
//! Semantics intentionally match the documented `bytes` crate behaviour
//! (see `tests/runtime_conformance.rs`): out-of-range `slice`/`split_*`
//! panic, `get_*` panics on underflow, big-endian is the unsuffixed
//! byte order, `_le` variants are little-endian.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable reference-counted byte buffer. Cloning and slicing are
/// O(1): both share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared until data exists).
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]), offset: 0, len: 0 }
    }

    /// Copy a slice into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let len = data.len();
        Self { data: Arc::from(data), offset: 0, len }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn resolve(&self, range: impl RangeBounds<usize>) -> (usize, usize) {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        (start, end)
    }

    /// O(1) sub-view sharing the same allocation. Panics if the range
    /// is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (start, end) = self.resolve(range);
        Bytes { data: Arc::clone(&self.data), offset: self.offset + start, len: end - start }
    }

    /// Split off and return the first `at` bytes; `self` keeps the
    /// rest. O(1). Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to({at}) out of bounds for length {}", self.len);
        let head = Bytes { data: Arc::clone(&self.data), offset: self.offset, len: at };
        self.offset += at;
        self.len -= at;
        head
    }

    /// Split off and return everything from `at` on; `self` keeps the
    /// prefix. O(1). Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_off({at}) out of bounds for length {}", self.len);
        let tail =
            Bytes { data: Arc::clone(&self.data), offset: self.offset + at, len: self.len - at };
        self.len = at;
        tail
    }

    /// Shorten the view to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Drop the first `n` bytes. Panics if `n > len`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance({n}) out of bounds for length {}", self.len);
        self.offset += n;
        self.len -= n;
    }

    /// Reset to an empty view.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Remaining readable bytes (`Buf`-style name).
    pub fn remaining(&self) -> usize {
        self.len
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len, "buffer underflow: need {n} bytes, have {}", self.len);
        let s = &self.data[self.offset..self.offset + n];
        self.offset += n;
        self.len -= n;
        s
    }

    /// Read one byte, advancing the view. Panics on underflow.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a big-endian u16, advancing the view.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a little-endian u16, advancing the view.
    pub fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a big-endian u32, advancing the view.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a little-endian u32, advancing the view.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a big-endian u64, advancing the view.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a little-endian u64, advancing the view.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a big-endian f32, advancing the view.
    pub fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a little-endian f32, advancing the view.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Copy the view out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self { data: Arc::from(v.into_boxed_slice()), offset: 0, len }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Self { data: Arc::from(v), offset: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if b == b'"' || b == b'\\' {
                write!(f, "\\{}", b as char)?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte builder with `put_*` writers; `freeze()` converts to a
/// shareable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Resize, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Append a slice.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Append a slice (`Vec`-style name).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u16.
    pub fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a big-endian f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian f32.
    pub fn put_f32_le(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Split off and return the first `at` bytes as a new builder;
    /// `self` keeps the rest. Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to({at}) out of bounds for length {}", self.len());
        let tail = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, tail) }
    }

    /// Split off and return everything from `at` on. Panics if
    /// `at > len`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_off({at}) out of bounds for length {}", self.len());
        BytesMut { buf: self.buf.split_off(at) }
    }

    /// Convert to an immutable, cheaply-shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { buf: s.to_vec() }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[3, 4, 5]);
        assert_eq!(Arc::as_ptr(&b.data), Arc::as_ptr(&s.data));
        let c = b.clone();
        assert_eq!(Arc::as_ptr(&b.data), Arc::as_ptr(&c.data));
    }

    #[test]
    fn slice_of_slice_composes_offsets() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let s = b.slice(10..50).slice(5..10);
        assert_eq!(&s[..], &[15, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1u8, 2, 3]).slice(1..5);
    }

    #[test]
    fn split_to_and_off() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[3]);
        assert_eq!(&tail[..], &[4, 5]);
    }

    #[test]
    fn put_get_roundtrip_all_widths() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u16_le(0x0304);
        m.put_u32(0xDEAD_BEEF);
        m.put_u32_le(0xFEED_FACE);
        m.put_u64(0x0102_0304_0506_0708);
        m.put_u64_le(42);
        m.put_f32(1.5);
        m.put_f32_le(-2.25);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u16_le(), 0x0304);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u32_le(), 0xFEED_FACE);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_f32(), 1.5);
        assert_eq!(b.get_f32_le(), -2.25);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_underflow_panics() {
        Bytes::from(vec![1u8]).get_u32();
    }

    #[test]
    fn equality_across_representations() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(b, &[1u8, 2, 3][..]);
        assert_eq!(b, Bytes::from(vec![0u8, 1, 2, 3, 4]).slice(1..4));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', b'i', 0, 0xff]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\\xff\"");
    }
}
