//! Deterministic fork-join parallelism.
//!
//! Everything in this workspace is built on seeded virtual time and
//! byte-identical reports, which rules out ordinary thread pools: work
//! stealing makes the set of items a worker runs — and therefore any
//! per-thread side effects — depend on scheduling. This module provides
//! the one parallelism primitive the simulators are allowed to use:
//!
//! * **Fixed partitioning.** [`par_map`] splits the input into
//!   contiguous chunks by index ([`partition`]), one chunk per worker.
//!   The chunk map is a pure function of `(len, workers)` — no
//!   stealing, no dynamic scheduling, nothing observable depends on
//!   which worker finished first.
//! * **Canonical merge.** Results come back in input-index order, and
//!   per-chunk payload concatenation (worker 0's items, then worker
//!   1's, …) reproduces exactly the sequential item order, so any
//!   order-sensitive side channel can be merged deterministically.
//! * **Scope hooks.** Thread-local state (the `holo-trace` recorder)
//!   would silently die with the worker threads. A process-wide
//!   [`ScopeHooks`] installation lets an observer snapshot each
//!   worker's state at chunk completion and merge the snapshots — in
//!   worker index order — on the parent thread at scope exit.
//!   `holo-trace` installs hooks that re-sort merged spans by
//!   `(start_us, lane, seq)` so traces are byte-identical across
//!   thread counts.
//! * **Panic propagation.** A panicking worker does not hang or abort
//!   the process: every worker is joined, then the first panic payload
//!   (in worker index order) is re-raised on the caller.
//! * **Nested calls run sequentially.** A `par_map` inside a worker
//!   falls back to a plain in-place map, so parallelism never
//!   multiplies and nested scopes cannot deadlock or tear recorders.
//!
//! Worker count resolution: [`set_thread_override`] (tests and
//! benches) beats the `SEMHOLO_THREADS` environment variable, which
//! beats [`std::thread::available_parallelism`]. **Every thread count
//! produces the same bytes** — `SEMHOLO_THREADS` only trades wall
//! clock, never results; `scripts/verify.sh` enforces this by running
//! the chaos matrix and fuzz sweep at 1 and 8 threads and
//! byte-comparing the reports.

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on workers: beyond this, coordination costs dwarf any
/// speedup on the workloads this repo runs.
pub const MAX_WORKERS: usize = 64;

/// Opaque token produced on the parent thread when a scope opens.
pub type ScopeToken = Box<dyn Any + Send>;
/// Opaque payload captured on a worker thread when its chunk completes.
pub type ScopePayload = Box<dyn Any + Send>;

/// Observer hooks for a fork-join scope (see module docs). All three
/// are plain `fn` pointers so the registration is `Copy` and the hot
/// path stays allocation-free when no observer is installed.
#[derive(Clone, Copy)]
pub struct ScopeHooks {
    /// Runs on the parent thread before any worker starts.
    pub begin: fn() -> ScopeToken,
    /// Runs on each worker thread after its chunk completes.
    pub collect: fn() -> ScopePayload,
    /// Runs on the parent thread after all workers joined; payloads
    /// arrive in worker index order (empty for the sequential path).
    pub end: fn(ScopeToken, Vec<ScopePayload>),
}

static HOOKS: OnceLock<ScopeHooks> = OnceLock::new();

/// Install the process-wide scope hooks. First caller wins; returns
/// whether this call installed them. (`holo-trace` is the intended —
/// and in this workspace, only — installer.)
pub fn set_scope_hooks(hooks: ScopeHooks) -> bool {
    HOOKS.set(hooks).is_ok()
}

/// Programmatic worker-count override: `Some(n)` pins the count,
/// `None` restores env/auto resolution. Used by tests and the scaling
/// bench to sweep thread counts inside one process.
pub fn set_thread_override(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolve the worker count: override, then `SEMHOLO_THREADS`, then
/// [`std::thread::available_parallelism`]; always in
/// `1..=`[`MAX_WORKERS`]. Deliberately **not** cached: the env read is
/// trivia next to any scope worth parallelizing, and tests sweep it.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o.clamp(1, MAX_WORKERS);
    }
    if let Ok(v) = std::env::var("SEMHOLO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.clamp(1, MAX_WORKERS);
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, MAX_WORKERS)
}

/// The fixed partition map: `len` items over at most `workers`
/// contiguous chunks. The first `len % w` chunks get one extra item;
/// no chunk is empty. A pure function of `(len, workers)` — this is
/// the "no observable work stealing" contract in one place.
pub fn partition(len: usize, workers: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let w = workers.clamp(1, len);
    let base = len / w;
    let extra = len % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

thread_local! {
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// True while the current thread is executing inside a fork-join
/// scope (worker chunk or sequential fallback).
pub fn in_scope() -> bool {
    IN_SCOPE.with(|c| c.get())
}

/// Clears `IN_SCOPE` even when the guarded map panics.
struct ScopeFlagGuard;

impl ScopeFlagGuard {
    fn enter() -> Self {
        IN_SCOPE.with(|c| c.set(true));
        ScopeFlagGuard
    }
}

impl Drop for ScopeFlagGuard {
    fn drop(&mut self) {
        IN_SCOPE.with(|c| c.set(false));
    }
}

/// Map `f` over `items` on the fork-join pool. Results return in input
/// order; see the module docs for the determinism contract.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // Nested scope: plain sequential map on this worker, no hooks —
    // the enclosing scope's collect/merge handles this thread's state.
    if in_scope() {
        return items.into_iter().map(f).collect();
    }
    let workers = threads().min(items.len()).max(1);
    let hooks = HOOKS.get();
    let token = hooks.map(|h| (h.begin)());

    if workers <= 1 {
        // Sequential leg of the same contract: run on the calling
        // thread (side effects land in the caller's thread-locals
        // directly), then let `end` canonicalize the scope exactly as
        // it would a merged one.
        let out: Vec<R> = {
            let _flag = ScopeFlagGuard::enter();
            items.into_iter().map(&f).collect()
        };
        if let (Some(h), Some(token)) = (hooks, token) {
            (h.end)(token, Vec::new());
        }
        return out;
    }

    // Fixed partitioning: carve `items` into contiguous chunks.
    let ranges = partition(items.len(), workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    for r in ranges.iter().rev() {
        chunks.push(rest.split_off(r.start));
    }
    chunks.reverse();

    let f = &f;
    let mut results: Vec<R> = Vec::new();
    let mut payloads: Vec<ScopePayload> = Vec::new();
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let _flag = ScopeFlagGuard::enter();
                    let out: Vec<R> = chunk.into_iter().map(f).collect();
                    let payload = HOOKS.get().map(|h| (h.collect)());
                    (out, payload)
                })
            })
            .collect();
        // Join in spawn (= partition index) order: results concatenate
        // back to input order, payloads merge in worker index order.
        for handle in handles {
            match handle.join() {
                Ok((out, payload)) => {
                    results.extend(out);
                    if let Some(p) = payload {
                        payloads.push(p);
                    }
                }
                Err(p) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(p);
                    }
                }
            }
        }
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    if let (Some(h), Some(token)) = (hooks, token) {
        (h.end)(token, payloads);
    }
    results
}

/// Run heterogeneous tasks on the fork-join pool: each boxed closure
/// is one work item, results return in task order. Sugar over
/// [`par_map`]; same determinism and panic contract.
pub fn scope<R: Send>(tasks: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
    par_map(tasks, |t| t())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The override is process-wide; serialize tests that touch it.
    fn override_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let _g = override_lock();
        for t in [1, 4] {
            set_thread_override(Some(t));
            let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x + 1);
            assert!(out.is_empty());
        }
        set_thread_override(None);
    }

    #[test]
    fn single_item_maps_in_place() {
        let _g = override_lock();
        set_thread_override(Some(8));
        assert_eq!(par_map(vec![21], |x: u64| x * 2), vec![42]);
        set_thread_override(None);
    }

    #[test]
    fn many_items_preserve_input_order_at_every_thread_count() {
        let _g = override_lock();
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for t in [1, 2, 3, 8, 64] {
            set_thread_override(Some(t));
            assert_eq!(par_map(items.clone(), |x| x * x), expected, "threads={t}");
        }
        set_thread_override(None);
    }

    #[test]
    fn partition_is_stable_contiguous_and_balanced() {
        // Same (len, workers) must always produce the same map.
        assert_eq!(partition(10, 3), partition(10, 3));
        assert_eq!(partition(10, 3), vec![0..4, 4..7, 7..10]);
        // More workers than items: one chunk per item, none empty.
        assert_eq!(partition(2, 8), vec![0..1, 1..2]);
        assert_eq!(partition(0, 4), Vec::<Range<usize>>::new());
        for (len, w) in [(1, 1), (7, 2), (100, 7), (64, 64), (65, 64)] {
            let p = partition(len, w);
            assert!(p.len() <= w);
            assert_eq!(p.first().unwrap().start, 0);
            assert_eq!(p.last().unwrap().end, len);
            for pair in p.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap at ({len},{w})");
                // Balanced: sizes differ by at most one, larger first.
                assert!(pair[0].len() >= pair[1].len());
                assert!(pair[0].len() - pair[1].len() <= 1);
            }
            assert!(p.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let _g = override_lock();
        set_thread_override(Some(4));
        let caught = std::panic::catch_unwind(|| {
            par_map((0..16).collect::<Vec<u32>>(), |x| {
                assert!(x != 11, "worker boom");
                x
            })
        });
        set_thread_override(None);
        let err = caught.expect_err("panic must cross the scope");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker boom"), "wrong payload: {msg:?}");
    }

    #[test]
    fn nested_par_map_falls_back_to_sequential() {
        let _g = override_lock();
        set_thread_override(Some(4));
        static PEAK_NESTED: AtomicU32 = AtomicU32::new(0);
        let out = par_map((0..8).collect::<Vec<u32>>(), |x| {
            assert!(in_scope(), "worker must know it is inside a scope");
            // The inner call must run inline on this worker thread.
            let tid = std::thread::current().id();
            let inner = par_map((0..4).collect::<Vec<u32>>(), |y| {
                assert_eq!(std::thread::current().id(), tid, "nested map left its worker");
                PEAK_NESTED.fetch_add(1, Ordering::Relaxed);
                x * 10 + y
            });
            inner.into_iter().sum::<u32>()
        });
        assert!(!in_scope(), "scope flag must clear at exit");
        assert_eq!(out.len(), 8);
        assert_eq!(PEAK_NESTED.load(Ordering::Relaxed), 32);
        set_thread_override(None);
    }

    #[test]
    fn scope_runs_heterogeneous_tasks_in_order() {
        let _g = override_lock();
        set_thread_override(Some(3));
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| 2), Box::new(|| 3)];
        assert_eq!(scope(tasks), vec![1, 2, 3]);
        set_thread_override(None);
    }

    #[test]
    fn threads_respects_override_and_clamps() {
        let _g = override_lock();
        set_thread_override(Some(3));
        assert_eq!(threads(), 3);
        set_thread_override(Some(10_000));
        assert_eq!(threads(), MAX_WORKERS);
        set_thread_override(None);
        assert!(threads() >= 1);
    }
}
