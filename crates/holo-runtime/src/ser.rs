//! Minimal derive-free serialization: a JSON value tree, an emitter, a
//! parser, a [`ToJson`] trait for report output — and the hostile-input
//! primitives every wire-facing decoder shares: the [`DecodeError`]
//! taxonomy and the bounds-checked [`ByteReader`] cursor.
//!
//! This replaces the `serde` derives the workspace previously carried:
//! the only serialization the repo performs is structured report output
//! (bench JSON, experiment tables), which a hand-rolled value tree
//! covers without proc-macros or external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Hostile-input decode primitives
// ---------------------------------------------------------------------

/// Why a decoder rejected its input. Shared by every byte-level decode
/// surface in the workspace (compression codecs, pose payloads, text
/// semantics, the wire envelope) so callers can count and classify
/// rejections instead of pattern-matching strings.
///
/// The taxonomy is deliberately small: every hostile input is one of a
/// stream that ends too early, a frame that is not ours, a frame that
/// fails its checksum, a header that asks for more than the decoder is
/// willing to allocate, or bytes that are structurally impossible.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The stream ended before the decoder had what it needed.
    Truncated {
        /// Bytes the decoder needed at the failing read.
        needed: usize,
        /// Bytes actually available there.
        available: usize,
    },
    /// The magic/tag at the head of the stream is not this decoder's.
    BadMagic {
        /// The magic this decoder accepts.
        expected: u32,
        /// The magic found on the wire.
        found: u32,
    },
    /// A checksum over the payload did not match.
    BadChecksum {
        /// Checksum declared on the wire.
        expected: u32,
        /// Checksum computed over the received bytes.
        found: u32,
    },
    /// A header-declared size exceeds the decoder's allocation cap.
    /// Raised *before* any allocation happens — the cap is the
    /// contract the fuzz harness enforces.
    LimitExceeded {
        /// What was being sized (stable, lowercase, e.g. `"lzma output"`).
        what: &'static str,
        /// The size the input asked for.
        requested: u64,
        /// The decoder's declared cap.
        limit: u64,
    },
    /// Bytes that are structurally impossible for the format.
    Corrupt {
        /// Which decoder/field rejected the input (stable label).
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl DecodeError {
    /// Build a [`DecodeError::Corrupt`] with a formatted detail.
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        DecodeError::Corrupt { context, detail: detail.into() }
    }

    /// Stable lowercase label for counters and report keys.
    pub fn kind(&self) -> &'static str {
        match self {
            DecodeError::Truncated { .. } => "truncated",
            DecodeError::BadMagic { .. } => "bad_magic",
            DecodeError::BadChecksum { .. } => "bad_checksum",
            DecodeError::LimitExceeded { .. } => "limit_exceeded",
            DecodeError::Corrupt { .. } => "corrupt",
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated stream: needed {needed} bytes, had {available}")
            }
            DecodeError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:#010x}, found {found:#010x}")
            }
            DecodeError::BadChecksum { expected, found } => {
                write!(f, "bad checksum: wire says {expected:#010x}, payload hashes to {found:#010x}")
            }
            DecodeError::LimitExceeded { what, requested, limit } => {
                write!(f, "{what}: input asks for {requested} bytes, cap is {limit}")
            }
            DecodeError::Corrupt { context, detail } => write!(f, "corrupt {context}: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked forward cursor over untrusted bytes. Every read
/// either returns the value or a typed [`DecodeError::Truncated`] —
/// there is no panicking path, so decoders built on it survive any
/// truncation of their input.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start a cursor at the head of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the cursor has consumed everything.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unread tail, without consuming it.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Consume the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { needed: n, available: self.remaining() });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16_le(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `u32`.
    pub fn u32_le(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `f32`.
    pub fn f32_le(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    /// Consume a LEB128 varint (at most 5 bytes; rejects overlong and
    /// truncated encodings). Matches `holo-compress`'s wire varints.
    pub fn varint(&mut self) -> Result<u32, DecodeError> {
        let mut value: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 28 && byte > 0x0F {
                return Err(DecodeError::corrupt("varint", "value overflows u32"));
            }
            value |= ((byte & 0x7F) as u32) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 28 {
                return Err(DecodeError::corrupt("varint", "continuation past 5 bytes"));
            }
        }
    }

    /// Consume a little-endian `u32` and require it to equal `expected`.
    pub fn expect_magic(&mut self, expected: u32) -> Result<(), DecodeError> {
        let found = self.u32_le()?;
        if found != expected {
            return Err(DecodeError::BadMagic { expected, found });
        }
        Ok(())
    }
}

/// A JSON value. Object keys keep insertion order via a Vec of pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Convert to a [`JsonValue`] tree.
    fn to_json(&self) -> JsonValue;
}

macro_rules! to_json_num {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue { JsonValue::Num(*self as f64) }
        }
    )+};
}
to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

/// Parse JSON text into a [`JsonValue`] tree. Errors carry a byte
/// offset and a short description.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("table1".into())),
            ("median_ns", JsonValue::Num(1234.5)),
            ("iters", JsonValue::Num(3.0)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "series",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("median_ns").unwrap().as_f64(), Some(1234.5));
        assert_eq!(back.get("iters").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(3.5).render(), "3.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn to_json_impls() {
        assert_eq!(3u32.to_json().render(), "3");
        assert_eq!("hi".to_json().render(), "\"hi\"");
        assert_eq!(vec![1u8, 2].to_json().render(), "[1,2]");
        assert_eq!(Option::<u32>::None.to_json().render(), "null");
    }

    #[test]
    fn byte_reader_reads_and_rejects_truncation() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16_le().unwrap(), 0x0302);
        assert_eq!(r.remaining(), 2);
        assert_eq!(
            r.u32_le(),
            Err(DecodeError::Truncated { needed: 4, available: 2 })
        );
        // A failed read consumes nothing.
        assert_eq!(r.take(2).unwrap(), &[0x04, 0x05]);
        assert!(r.is_empty());
    }

    #[test]
    fn byte_reader_varint_matches_leb128() {
        // 300 = 0xAC 0x02 in LEB128.
        let mut r = ByteReader::new(&[0xAC, 0x02, 0x7F]);
        assert_eq!(r.varint().unwrap(), 300);
        assert_eq!(r.varint().unwrap(), 0x7F);
        // Truncated continuation.
        assert!(matches!(
            ByteReader::new(&[0x80]).varint(),
            Err(DecodeError::Truncated { .. })
        ));
        // Overlong: 6 continuation bytes cannot encode a u32.
        assert!(matches!(
            ByteReader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]).varint(),
            Err(DecodeError::Corrupt { .. })
        ));
        // High bits past 32 rejected.
        assert!(matches!(
            ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0x1F]).varint(),
            Err(DecodeError::Corrupt { .. })
        ));
        assert_eq!(
            ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]).varint().unwrap(),
            u32::MAX
        );
    }

    #[test]
    fn byte_reader_magic() {
        let bytes = 0xDEAD_BEEFu32.to_le_bytes();
        assert!(ByteReader::new(&bytes).expect_magic(0xDEAD_BEEF).is_ok());
        assert_eq!(
            ByteReader::new(&bytes).expect_magic(0x0BAD_F00D),
            Err(DecodeError::BadMagic { expected: 0x0BAD_F00D, found: 0xDEAD_BEEF })
        );
    }

    #[test]
    fn decode_error_kinds_and_display() {
        let errors = [
            DecodeError::Truncated { needed: 4, available: 1 },
            DecodeError::BadMagic { expected: 1, found: 2 },
            DecodeError::BadChecksum { expected: 3, found: 4 },
            DecodeError::LimitExceeded { what: "lzma output", requested: 10, limit: 5 },
            DecodeError::corrupt("mesh", "impossible backref"),
        ];
        let kinds: Vec<&str> = errors.iter().map(DecodeError::kind).collect();
        assert_eq!(
            kinds,
            ["truncated", "bad_magic", "bad_checksum", "limit_exceeded", "corrupt"]
        );
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
