//! Minimal derive-free JSON: a value tree, an emitter, a parser, and a
//! [`ToJson`] trait for report output.
//!
//! This replaces the `serde` derives the workspace previously carried:
//! the only serialization the repo performs is structured report output
//! (bench JSON, experiment tables), which a hand-rolled value tree
//! covers without proc-macros or external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order via a Vec of pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Convert to a [`JsonValue`] tree.
    fn to_json(&self) -> JsonValue;
}

macro_rules! to_json_num {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue { JsonValue::Num(*self as f64) }
        }
    )+};
}
to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

/// Parse JSON text into a [`JsonValue`] tree. Errors carry a byte
/// offset and a short description.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("table1".into())),
            ("median_ns", JsonValue::Num(1234.5)),
            ("iters", JsonValue::Num(3.0)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "series",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("median_ns").unwrap().as_f64(), Some(1234.5));
        assert_eq!(back.get("iters").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(3.5).render(), "3.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn to_json_impls() {
        assert_eq!(3u32.to_json().render(), "3");
        assert_eq!("hi".to_json().render(), "\"hi\"");
        assert_eq!(vec![1u8, 2].to_json().render(), "[1,2]");
        assert_eq!(Option::<u32>::None.to_json().render(), "null");
    }
}
