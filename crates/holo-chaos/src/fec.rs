//! XOR-parity forward error correction over semantic frames.
//!
//! Frames are grouped `k` data + `r` parity. Parity block `p` is the
//! XOR of the data frames whose in-group index `i` satisfies
//! `i % r == p` (interleaved stripes), zero-padded to the longest frame
//! in its stripe. XOR parity recovers **one** missing block per
//! stripe — so a group survives up to `r` losses if they land in
//! distinct stripes, which is exactly what makes interleaving the
//! right shape for burst loss: consecutive frames belong to different
//! stripes.
//!
//! Two layers live here: the *byte codec* ([`parity_blocks`] /
//! [`recover_stripe`]) proving the math on real payloads, and the
//! *group accounting* ([`recoverable`]) the size-only chaos harness
//! uses to decide which lost frames parity brings back.

/// FEC rate: `k` data frames protected by `r` parity frames per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecConfig {
    /// Data frames per group.
    pub k: usize,
    /// Parity frames per group.
    pub r: usize,
}

/// Why a [`FecConfig`] failed [`FecConfig::validate`]: the typed
/// taxonomy (variants, a stable [`kind`](FecError::kind), `Display`,
/// `std::error::Error` — same shape as `holo_runtime::ser::DecodeError`
/// and `holo_uep::PolicyError`) that replaced the stringly
/// `Result<(), String>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FecError {
    /// `k == 0`: a group with no data frames protects nothing.
    NoDataFrames,
    /// `r` outside `1..=k`: zero parity is "no FEC", and more parity
    /// than data cannot form the interleaved stripes.
    ParityOutOfRange {
        /// Data frames per group.
        k: usize,
        /// Parity frames per group.
        r: usize,
    },
}

impl FecError {
    /// Stable lowercase tag (report keys, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            FecError::NoDataFrames => "no_data_frames",
            FecError::ParityOutOfRange { .. } => "parity_out_of_range",
        }
    }
}

impl std::fmt::Display for FecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FecError::NoDataFrames => write!(f, "FEC needs k >= 1 data frames per group"),
            FecError::ParityOutOfRange { k, r } => {
                write!(f, "FEC parity count r={r} must be in 1..=k={k}")
            }
        }
    }
}

impl std::error::Error for FecError {}

impl FecConfig {
    /// The classic light-overhead rate from the acceptance criteria.
    pub fn k4r1() -> Self {
        Self { k: 4, r: 1 }
    }

    /// Bandwidth overhead fraction (`r / k`).
    pub fn overhead(&self) -> f64 {
        self.r as f64 / self.k.max(1) as f64
    }

    /// Structural checks: at least one data frame, `1 <= r <= k`.
    pub fn validate(&self) -> Result<(), FecError> {
        if self.k == 0 {
            return Err(FecError::NoDataFrames);
        }
        if self.r == 0 || self.r > self.k {
            return Err(FecError::ParityOutOfRange { k: self.k, r: self.r });
        }
        Ok(())
    }
}

/// Compute the `r` parity blocks for one group of data blocks.
/// Parity `p` XORs data blocks with in-group index `i % r == p`,
/// zero-padded to the longest block in the stripe.
pub fn parity_blocks(data: &[&[u8]], r: usize) -> Vec<Vec<u8>> {
    let r = r.max(1);
    let mut parities = Vec::with_capacity(r);
    for p in 0..r {
        let len = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % r == p)
            .map(|(_, d)| d.len())
            .max()
            .unwrap_or(0);
        let mut parity = vec![0u8; len];
        for (_, d) in data.iter().enumerate().filter(|(i, _)| i % r == p) {
            for (b, x) in parity.iter_mut().zip(d.iter()) {
                *b ^= x;
            }
        }
        parities.push(parity);
    }
    parities
}

/// Rebuild the single missing block of one stripe: XOR the parity with
/// every surviving block. `present` holds the stripe's surviving data
/// blocks; the result is padded to the parity length (the caller knows
/// the original length if it needs to trim).
pub fn recover_stripe(present: &[&[u8]], parity: &[u8]) -> Vec<u8> {
    let mut out = parity.to_vec();
    for d in present {
        for (b, x) in out.iter_mut().zip(d.iter()) {
            *b ^= x;
        }
    }
    out
}

/// Group accounting: given which data and parity frames of one group
/// arrived, return for each data frame whether it is available after
/// FEC (delivered, or lost but recoverable). A stripe recovers its
/// loss iff it lost exactly one data block and its parity arrived.
pub fn recoverable(delivered_data: &[bool], delivered_parity: &[bool], r: usize) -> Vec<bool> {
    let r = r.max(1);
    let mut out = delivered_data.to_vec();
    for (p, parity_ok) in delivered_parity.iter().enumerate().take(r) {
        if !parity_ok {
            continue;
        }
        let missing: Vec<usize> = delivered_data
            .iter()
            .enumerate()
            .filter(|(i, d)| i % r == p && !**d)
            .map(|(i, _)| i)
            .collect();
        if missing.len() == 1 {
            out[missing[0]] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates() {
        assert!(FecConfig::k4r1().validate().is_ok());
        assert_eq!(FecConfig { k: 0, r: 1 }.validate().unwrap_err(), FecError::NoDataFrames);
        assert_eq!(
            FecConfig { k: 4, r: 0 }.validate().unwrap_err(),
            FecError::ParityOutOfRange { k: 4, r: 0 }
        );
        let err = FecConfig { k: 4, r: 5 }.validate().unwrap_err();
        assert_eq!(err, FecError::ParityOutOfRange { k: 4, r: 5 });
        // Display keeps the historical message; kind() is the stable tag.
        assert_eq!(err.to_string(), "FEC parity count r=5 must be in 1..=k=4");
        assert_eq!(err.kind(), "parity_out_of_range");
        assert_eq!(FecError::NoDataFrames.kind(), "no_data_frames");
        let _: &dyn std::error::Error = &err;
        assert!((FecConfig::k4r1().overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_r_clamps_to_one_stripe_everywhere() {
        // Both the codec and the accounting clamp r=0 to 1 rather than
        // dividing by zero: one parity, one stripe.
        let blocks: Vec<Vec<u8>> = (0u8..4).map(|i| vec![i; 4]).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        assert_eq!(parity_blocks(&refs, 0), parity_blocks(&refs, 1));
        assert_eq!(
            recoverable(&[true, false, true, true], &[true], 0),
            recoverable(&[true, false, true, true], &[true], 1)
        );
    }

    #[test]
    fn all_lost_stripe_recovers_nothing() {
        // Every data frame of the stripe is gone: parity alone cannot
        // disambiguate k >= 2 losses.
        let out = recoverable(&[false, false, false, false], &[true], 1);
        assert_eq!(out, vec![false, false, false, false]);
        // Same with interleaving: both stripes doubly lost.
        let out = recoverable(&[false, false, false, false], &[true, true], 2);
        assert_eq!(out, vec![false, false, false, false]);
    }

    #[test]
    fn parity_only_delivery_recovers_a_singleton_stripe() {
        // k=1, r=1 is duplication: the stripe's single data frame is
        // "exactly one loss", so the surviving parity copy rebuilds it.
        // This is what holo-uep's Critical class (keyframe duplication)
        // rides on.
        assert_eq!(recoverable(&[false], &[true], 1), vec![true]);
        // The byte codec agrees: parity of a singleton IS the block.
        let block = [7u8, 11, 13];
        let parity = parity_blocks(&[&block], 1);
        assert_eq!(parity[0], block.to_vec());
        assert_eq!(recover_stripe(&[], &parity[0]), block.to_vec());
        // With k=2 the same "only parity arrived" situation is dead.
        assert_eq!(recoverable(&[false, false], &[true], 1), vec![false, false]);
    }

    #[test]
    fn empty_group_is_a_noop() {
        assert_eq!(recoverable(&[], &[true], 1), Vec::<bool>::new());
        assert!(parity_blocks(&[], 1)[0].is_empty());
    }

    #[test]
    fn single_parity_recovers_any_one_block() {
        let blocks: Vec<Vec<u8>> =
            vec![vec![1, 2, 3, 4], vec![5, 6, 7], vec![8, 9, 10, 11, 12], vec![13]];
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let parity = parity_blocks(&refs, 1);
        assert_eq!(parity.len(), 1);
        assert_eq!(parity[0].len(), 5, "parity spans the longest block");
        for lost in 0..blocks.len() {
            let present: Vec<&[u8]> = refs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, d)| *d)
                .collect();
            let rebuilt = recover_stripe(&present, &parity[0]);
            // Padded with zeros past the original length.
            assert_eq!(&rebuilt[..blocks[lost].len()], blocks[lost].as_slice());
            assert!(rebuilt[blocks[lost].len()..].iter().all(|b| *b == 0));
        }
    }

    #[test]
    fn interleaved_stripes_survive_adjacent_losses() {
        // r=2: even-index frames in stripe 0, odd in stripe 1. Losing
        // two *consecutive* frames hits both stripes once — both come
        // back; losing two frames of the same stripe does not.
        let blocks: Vec<Vec<u8>> = (0u8..6).map(|i| vec![i; 8]).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let parity = parity_blocks(&refs, 2);
        assert_eq!(parity.len(), 2);

        let adjacent = recoverable(&[true, false, false, true, true, true], &[true, true], 2);
        assert!(adjacent.iter().all(|a| *a), "adjacent pair spans both stripes");

        let same_stripe = recoverable(&[false, true, false, true, true, true], &[true, true], 2);
        assert_eq!(same_stripe, vec![false, true, false, true, true, true]);
    }

    #[test]
    fn lost_parity_recovers_nothing() {
        let out = recoverable(&[true, false, true, true], &[false], 1);
        assert_eq!(out, vec![true, false, true, true]);
    }

    #[test]
    fn double_loss_in_one_stripe_is_unrecoverable_with_r1() {
        let out = recoverable(&[false, false, true, true], &[true], 1);
        assert_eq!(out, vec![false, false, true, true]);
    }

    #[test]
    fn byte_codec_matches_group_accounting() {
        // If recoverable() says a frame comes back, the byte codec must
        // actually rebuild it.
        let blocks: Vec<Vec<u8>> = (0u8..4).map(|i| vec![i * 17; 16]).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let parity = parity_blocks(&refs, 1);
        let delivered = [true, true, false, true];
        let after = recoverable(&delivered, &[true], 1);
        assert!(after[2]);
        let present: Vec<&[u8]> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| delivered[*i])
            .map(|(_, d)| *d)
            .collect();
        assert_eq!(recover_stripe(&present, &parity[0]), blocks[2]);
    }
}
