//! The `FaultPlan` DSL: named, seeded, virtual-time fault scenarios.
//!
//! A plan is the *description* of an impairment campaign — a loss
//! process, a set of timed effect windows, and (for rooms) participant
//! churn. It compiles to per-link [`FaultClock`]s: each lane (uplink 0,
//! downlink 0, uplink 1, …) gets its own derived seed, so two links
//! under the same plan fail independently yet the whole scenario
//! replays bit-identically from `(plan.seed, plan)`.

use holo_net::fault::{FaultClock, FaultEffect, FaultSegment, LossModel};
use holo_net::time::SimTime;
use std::time::Duration;

/// A participant presence window for room churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Which participant the window applies to.
    pub participant: usize,
    /// Join time, seconds of room time.
    pub join_s: f64,
    /// Leave time, seconds of room time (half-open window).
    pub leave_s: f64,
}

/// A named, seeded fault scenario.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Scenario name (stable; keys reports and bench output).
    pub name: String,
    /// The packet-loss process, if any.
    pub loss: Option<LossModel>,
    /// Timed effect windows (shared by every compiled clock).
    pub segments: Vec<FaultSegment>,
    /// Participant presence windows (rooms only).
    pub churn: Vec<ChurnEvent>,
    /// Master seed; per-lane clock seeds derive from it.
    pub seed: u64,
}

/// Derive a per-lane seed (splitmix-style odd multiplier keeps
/// distinct lanes decorrelated — same recipe as `holo-conf`'s rooms).
fn derive_seed(seed: u64, lane: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane.wrapping_mul(2).wrapping_add(1))
}

impl FaultPlan {
    /// An empty plan (no impairments) — the matrix baseline.
    pub fn clean(seed: u64) -> Self {
        Self { name: "clean".into(), loss: None, segments: Vec::new(), churn: Vec::new(), seed }
    }

    /// Gilbert–Elliott ~5% burst loss on every packet, whole run.
    pub fn burst5(seed: u64) -> Self {
        Self { name: "burst5".into(), loss: Some(LossModel::burst5()), ..Self::clean(seed) }
    }

    /// Two hard link flaps: 300 ms outages starting at 1.0 s and 2.5 s.
    pub fn flapping(seed: u64) -> Self {
        Self::clean(seed).named("flapping").down(1.0, 1.3).down(2.5, 2.8)
    }

    /// Capacity collapses to 0.2% between 1.0 s and 3.0 s — the
    /// scenario the semantic degradation ladder exists for.
    pub fn bandwidth_collapse(seed: u64) -> Self {
        Self::clean(seed).named("bandwidth_collapse").bandwidth(1.0, 3.0, 0.002)
    }

    /// A 150 ms one-way delay spike between 1.0 s and 2.0 s
    /// (bufferbloat / reroute).
    pub fn delay_spike(seed: u64) -> Self {
        Self::clean(seed).named("delay_spike").delay(1.0, 2.0, Duration::from_millis(150))
    }

    /// Burst loss plus on-the-wire payload corruption: the burst5 loss
    /// process with ~3% of surviving frames corrupted whole-run. The
    /// scenario the `WireFrame` CRC exists for — every corrupted frame
    /// must be detected-and-dropped, never decoded.
    pub fn burst5_corrupt(seed: u64) -> Self {
        Self::burst5(seed).named("burst5_corrupt").corrupt(0.0, f64::MAX, 0.03)
    }

    /// Burst loss on a link that also loses most of its headroom:
    /// burst5's loss process plus capacity squeezed to 18% between
    /// 1.0 s and 3.0 s. At the default stream config (~4.8 Mbps media
    /// on 50 Mbps) the squeeze leaves ~9 Mbps — steady media plus
    /// parity still fits, but every burst of losses triggers a storm
    /// of retransmissions that transiently overloads the queue and
    /// pushes *live* frames past their deadline. This is the scenario
    /// deadline-aware abandonment exists for: retries of already-dead
    /// deltas are pure queue poison here.
    pub fn burst5_squeeze(seed: u64) -> Self {
        Self::burst5(seed).named("burst5_squeeze").bandwidth(1.0, 3.0, 0.18)
    }

    /// Room churn: participant `n-1` of an `n`-party room joins late
    /// and leaves early (window `[0.15, 0.35)` of a ~0.5 s run).
    pub fn churny(seed: u64, n: usize) -> Self {
        let mut plan = Self::clean(seed).named("churny");
        if n > 0 {
            plan.churn.push(ChurnEvent { participant: n - 1, join_s: 0.15, leave_s: 0.35 });
        }
        plan
    }

    /// Rename the plan (builder).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Set the loss process (builder).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Add a hard outage window (builder).
    pub fn down(mut self, from_s: f64, until_s: f64) -> Self {
        self.segments.push(FaultSegment {
            from: SimTime::from_secs_f64(from_s),
            until: SimTime::from_secs_f64(until_s),
            effect: FaultEffect::LinkDown,
        });
        self
    }

    /// Add a bandwidth-scale window (builder).
    pub fn bandwidth(mut self, from_s: f64, until_s: f64, scale: f64) -> Self {
        self.segments.push(FaultSegment {
            from: SimTime::from_secs_f64(from_s),
            until: SimTime::from_secs_f64(until_s),
            effect: FaultEffect::BandwidthScale(scale),
        });
        self
    }

    /// Add a one-way delay-spike window (builder).
    pub fn delay(mut self, from_s: f64, until_s: f64, extra: Duration) -> Self {
        self.segments.push(FaultSegment {
            from: SimTime::from_secs_f64(from_s),
            until: SimTime::from_secs_f64(until_s),
            effect: FaultEffect::ExtraDelay(extra),
        });
        self
    }

    /// Add a payload-corruption window (builder): each frame completing
    /// delivery inside `[from_s, until_s)` is independently corrupted
    /// with probability `rate`.
    pub fn corrupt(mut self, from_s: f64, until_s: f64, rate: f64) -> Self {
        self.segments.push(FaultSegment {
            from: SimTime::from_secs_f64(from_s),
            until: if until_s == f64::MAX {
                SimTime::from_micros(u64::MAX)
            } else {
                SimTime::from_secs_f64(until_s)
            },
            effect: FaultEffect::PayloadCorrupt(rate as f32),
        });
        self
    }

    /// Add a participant presence window (builder).
    pub fn with_churn(mut self, participant: usize, join_s: f64, leave_s: f64) -> Self {
        self.churn.push(ChurnEvent { participant, join_s, leave_s });
        self
    }

    /// Compile the plan into the clock for one lane. Lanes number the
    /// links of a scenario (point-to-point: lane 0; rooms: uplink `i`
    /// is lane `2i`, downlink `i` is lane `2i+1`).
    pub fn compile(&self, lane: u64) -> FaultClock {
        FaultClock::new(self.loss.clone(), self.segments.clone(), derive_seed(self.seed, lane))
    }

    /// The presence window for `participant`, if the plan churns it.
    pub fn churn_window(&self, participant: usize) -> Option<(f64, f64)> {
        self.churn
            .iter()
            .find(|c| c.participant == participant)
            .map(|c| (c.join_s, c.leave_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_stable_names() {
        assert_eq!(FaultPlan::clean(1).name, "clean");
        assert_eq!(FaultPlan::burst5(1).name, "burst5");
        assert_eq!(FaultPlan::flapping(1).name, "flapping");
        assert_eq!(FaultPlan::bandwidth_collapse(1).name, "bandwidth_collapse");
        assert_eq!(FaultPlan::delay_spike(1).name, "delay_spike");
        assert_eq!(FaultPlan::burst5_squeeze(1).name, "burst5_squeeze");
        assert_eq!(FaultPlan::churny(1, 3).name, "churny");
    }

    #[test]
    fn lanes_get_independent_but_reproducible_clocks() {
        let plan = FaultPlan::burst5(42);
        let mut a1 = plan.compile(0);
        let mut a2 = plan.compile(0);
        let mut b = plan.compile(1);
        let mut same = 0;
        let mut diverged = false;
        for i in 0..2000 {
            let at = SimTime::from_micros(i);
            let ra = a1.loss_roll(at);
            assert_eq!(ra, a2.loss_roll(at), "same lane must replay identically");
            if ra == b.loss_roll(at) {
                same += 1;
            } else {
                diverged = true;
            }
        }
        assert!(diverged, "different lanes must not be clones ({same} identical rolls)");
    }

    #[test]
    fn builders_stack_segments() {
        let plan = FaultPlan::clean(7)
            .down(1.0, 1.2)
            .bandwidth(0.5, 2.0, 0.1)
            .delay(0.9, 1.1, Duration::from_millis(40));
        assert_eq!(plan.segments.len(), 3);
        let clock = plan.compile(0);
        assert!(clock.is_down(SimTime::from_millis(1100)));
        assert!((clock.bandwidth_scale(SimTime::from_millis(600)) - 0.1).abs() < 1e-12);
        assert_eq!(clock.extra_delay(SimTime::from_millis(1000)), Duration::from_millis(40));
    }

    #[test]
    fn churn_windows_resolve_by_participant() {
        let plan = FaultPlan::churny(3, 4).with_churn(1, 0.0, 0.2);
        assert_eq!(plan.churn_window(3), Some((0.15, 0.35)));
        assert_eq!(plan.churn_window(1), Some((0.0, 0.2)));
        assert_eq!(plan.churn_window(0), None);
    }
}
