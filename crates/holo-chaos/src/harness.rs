//! The chaos harness: sweep fault plans × resilience mechanisms and
//! measure what survives.
//!
//! Three scenario families, mirroring the three places the resilience
//! layer hooks in:
//!
//! * **streams** — a size-only 30 fps frame stream over one faulted
//!   [`Link`], protected by nothing, FEC, retransmission, or both.
//!   This isolates the recovery mechanisms from codec behaviour.
//! * **sessions** — the full `semholo` capture→encode→transport
//!   pipeline under a fault plan, comparing transport loss policies.
//! * **rooms** — a `holo-conf` room where the semantic degradation
//!   ladder (and churn accounting) is the resilience mechanism.
//!
//! Everything runs in seeded virtual time; [`run_scenarios`] produces a
//! [`ResilienceReport`] that renders byte-identically per seed.

use crate::fec::{self, FecConfig};
use crate::plan::FaultPlan;
use crate::report::{
    GaussianRoomOutcome, ResilienceReport, RoomOutcome, SessionOutcome, StreamOutcome,
};
use crate::retransmit::RetransmitConfig;
use holo_conf::degrade::DegradationLadder;
use holo_conf::frame::{DependencyTracker, FrameTag};
use holo_conf::participant::ParticipantConfig;
use holo_conf::room::{Room, RoomConfig};
use holo_net::link::{Link, LinkConfig};
use holo_net::time::SimTime;
use holo_net::trace::BandwidthTrace;
use holo_net::transport::{FrameTransport, LossPolicy};
use holo_net::wire::WIRE_HEADER_BYTES;
use semholo::config::SemHoloConfig;
use semholo::keypoint::{KeypointConfig, KeypointPipeline};
use semholo::scene::SceneSource;
use semholo::session::{Session, SessionConfig};
use std::time::Duration;

/// The synthetic stream the mechanism matrix runs over.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Frames offered.
    pub frames: usize,
    /// Capture rate.
    pub fps: f64,
    /// Payload per frame, bytes (all frames equal — parity sizing is
    /// then exact).
    pub payload_bytes: usize,
    /// Keyframe cadence for the usability pass.
    pub keyframe_interval: usize,
    /// Quiet-link capacity, bps.
    pub link_bps: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            frames: 150,
            fps: 30.0,
            payload_bytes: 20_000,
            keyframe_interval: 10,
            // ~4.8 Mbps of media on a 50 Mbps link: protection needs
            // headroom — retransmission bursts on a near-saturated link
            // queue-drop and cascade.
            link_bps: 50e6,
        }
    }
}

/// Which resilience mechanisms protect a stream scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mechanisms {
    /// XOR-parity FEC, if any.
    pub fec: Option<FecConfig>,
    /// RTO-scheduled whole-frame retransmission, if any.
    pub retransmit: Option<RetransmitConfig>,
}

impl Mechanisms {
    /// No protection at all.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// FEC(4,1) only.
    pub fn fec() -> Self {
        Self { fec: Some(FecConfig::k4r1()), retransmit: None }
    }

    /// Retransmission only.
    pub fn retransmit() -> Self {
        Self { fec: None, retransmit: Some(RetransmitConfig::default()) }
    }

    /// FEC(4,1) + retransmission — the acceptance-criteria pairing.
    pub fn full() -> Self {
        Self { fec: Some(FecConfig::k4r1()), retransmit: Some(RetransmitConfig::default()) }
    }

    /// Stable label used in reports and bench names.
    pub fn label(&self) -> String {
        match (self.fec, self.retransmit.is_some()) {
            (None, false) => "baseline".into(),
            (Some(f), false) => format!("fec({},{})", f.k, f.r),
            (None, true) => "retransmit".into(),
            (Some(f), true) => format!("fec({},{})+retransmit", f.k, f.r),
        }
    }
}

/// Per-frame bookkeeping for the stream sweep.
#[derive(Clone, Copy)]
struct Slot {
    offered_at: SimTime,
    available_at: Option<SimTime>,
    recovered_retx: bool,
    recovered_fec: bool,
}

/// One scheduled transmission in the stream sweep's event loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OfferKind {
    /// Data frame `frame`, attempt number (0 = first try).
    Data { frame: usize, attempt: u32 },
    /// Parity frame `index` of FEC group `group`.
    Parity { group: usize, index: usize },
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Offer {
    at: SimTime,
    seq: u64,
    kind: OfferKind,
}

impl Ord for Offer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest first; insertion order breaks ties deterministically.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Offer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Run one stream scenario: `cfg.frames` equal-sized frames over a
/// quiet link impaired by `plan`, protected by `mechanisms`. Parity
/// frames for a FEC group ship right after the group's last data frame;
/// a trailing partial group goes unprotected.
pub fn run_stream_scenario(
    plan: &FaultPlan,
    mechanisms: &Mechanisms,
    cfg: &StreamConfig,
) -> StreamOutcome {
    let link_cfg = LinkConfig { jitter_max: Duration::ZERO, ..Default::default() };
    let mut link =
        Link::new(link_cfg, BandwidthTrace::Constant { bps: cfg.link_bps }, plan.seed ^ 0x57A6);
    link.set_fault(plan.compile(0));
    // Recovery is owned by this layer, so the transport itself drops.
    let mut transport = FrameTransport::new(link, LossPolicy::DropFrame);

    let tracing = holo_trace::enabled();
    if tracing {
        for seg in &plan.segments {
            if matches!(seg.effect, holo_net::fault::FaultEffect::LinkDown) {
                holo_trace::span_enter("chaos.outage", seg.from.0);
                holo_trace::span_exit(seg.until.0);
            }
        }
    }

    // Build the offer schedule: every data frame at its capture tick,
    // and (under FEC) each full group's parity frames right after the
    // group's last data frame. A trailing partial group goes
    // unprotected. Everything then runs through ONE event loop in
    // virtual-time order — retransmissions interleave with later
    // frames on the shared link instead of jumping the queue.
    let mut seq = 0u64;
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Offer>> =
        std::collections::BinaryHeap::new();
    let mut push = |heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<Offer>>,
                    at: SimTime,
                    kind: OfferKind| {
        heap.push(std::cmp::Reverse(Offer { at, seq, kind }));
        seq += 1;
    };
    let full_groups = mechanisms.fec.map_or(0, |f| cfg.frames / f.k);
    for i in 0..cfg.frames {
        let at = SimTime::from_secs_f64(i as f64 / cfg.fps);
        push(&mut heap, at, OfferKind::Data { frame: i, attempt: 0 });
        if let Some(fec_cfg) = mechanisms.fec {
            if (i + 1) % fec_cfg.k == 0 {
                let group = i / fec_cfg.k;
                for p in 0..fec_cfg.r {
                    push(&mut heap, at, OfferKind::Parity { group, index: p });
                }
            }
        }
    }

    let mut slots: Vec<Slot> = (0..cfg.frames)
        .map(|i| Slot {
            offered_at: SimTime::from_secs_f64(i as f64 / cfg.fps),
            available_at: None,
            recovered_retx: false,
            recovered_fec: false,
        })
        .collect();
    let mut wire_bytes = 0u64;
    let mut corrupt_detected = 0usize;
    let parity_r = mechanisms.fec.map_or(0, |f| f.r);
    let mut parity_delivered: Vec<Vec<bool>> = vec![vec![false; parity_r]; full_groups];
    let mut parity_at: Vec<Option<SimTime>> = vec![None; full_groups];
    while let Some(std::cmp::Reverse(offer)) = heap.pop() {
        // Every frame ships inside a `WireFrame` envelope; a frame that
        // completes delivery can still arrive corrupted, in which case
        // the CRC detects it and the receiver drops it — same recovery
        // paths as a loss.
        let result = transport.send_frame_sized(cfg.payload_bytes + WIRE_HEADER_BYTES, offer.at);
        wire_bytes += result.wire_bytes;
        let corrupted = result.complete
            && result
                .completed_at
                .is_some_and(|t| transport.link.corrupt_roll(t).is_some());
        if corrupted {
            corrupt_detected += 1;
            if tracing {
                holo_trace::counter("chaos.corrupt_detected", 1);
            }
        }
        let arrived = result.complete && !corrupted;
        match offer.kind {
            OfferKind::Data { frame, attempt } => {
                if arrived {
                    slots[frame].available_at = result.completed_at;
                    slots[frame].recovered_retx = attempt > 0;
                } else if let Some(rc) = &mechanisms.retransmit {
                    if attempt < rc.max_retries {
                        let retry_at = offer.at + crate::retransmit::backoff_delay(rc, attempt);
                        heap.push(std::cmp::Reverse(Offer {
                            at: retry_at,
                            seq,
                            kind: OfferKind::Data { frame, attempt: attempt + 1 },
                        }));
                        seq += 1;
                    }
                }
            }
            OfferKind::Parity { group, index } => {
                parity_delivered[group][index] = arrived;
                if arrived {
                    parity_at[group] = parity_at[group].max(result.completed_at);
                }
            }
        }
    }

    // FEC pass, after every retransmission has resolved: per group,
    // rebuild what the interleaved parity stripes can.
    if let Some(fec_cfg) = mechanisms.fec {
        for g in 0..full_groups {
            let members: Vec<usize> = (g * fec_cfg.k..(g + 1) * fec_cfg.k).collect();
            let data_delivered: Vec<bool> =
                members.iter().map(|&m| slots[m].available_at.is_some()).collect();
            let after = fec::recoverable(&data_delivered, &parity_delivered[g], fec_cfg.r);
            // A rebuilt frame becomes available once its whole stripe
            // is in: after the group's last arriving data frame and
            // its parity.
            let group_last = members.iter().filter_map(|&m| slots[m].available_at).max();
            let rebuilt_at = match (parity_at[g], group_last) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            for (j, &m) in members.iter().enumerate() {
                if after[j] && slots[m].available_at.is_none() {
                    slots[m].available_at = rebuilt_at;
                    slots[m].recovered_fec = true;
                    if tracing {
                        holo_trace::counter("chaos.recovered_fec", 1);
                    }
                }
            }
        }
    }
    if tracing {
        holo_trace::counter("chaos.frames_offered", cfg.frames as u64);
        let retx = slots.iter().filter(|s| s.recovered_retx).count();
        holo_trace::counter("chaos.recovered_retx", retx as u64);
    }

    // Usability pass: keyframe/delta dependency rules over what is
    // available after recovery.
    let mut chain = DependencyTracker::new();
    let mut delivered = 0usize;
    let mut usable = 0usize;
    let mut poisoned = 0usize;
    let mut recovered_fec = 0usize;
    let mut recovered_retx = 0usize;
    let mut recovery_ms_sum = 0.0f64;
    let mut recovery_count = 0usize;
    for (i, slot) in slots.iter().enumerate() {
        let available = slot.available_at.is_some();
        if available {
            delivered += 1;
        }
        if slot.recovered_fec {
            recovered_fec += 1;
        }
        if slot.recovered_retx {
            recovered_retx += 1;
        }
        if slot.recovered_fec || slot.recovered_retx {
            let dt = slot.available_at.expect("recovered frames are available");
            recovery_ms_sum += dt.saturating_since(slot.offered_at).as_secs_f64() * 1e3;
            recovery_count += 1;
        }
        let tag = FrameTag::for_index(i, cfg.keyframe_interval);
        if chain.advance(i, tag, available) {
            usable += 1;
        } else if available {
            poisoned += 1;
            if tracing {
                holo_trace::counter("chaos.poisoned", 1);
            }
        }
    }
    if tracing {
        holo_trace::counter("chaos.frames_lost", (cfg.frames - delivered) as u64);
    }

    StreamOutcome {
        plan: plan.name.clone(),
        mechanism: mechanisms.label(),
        frames: cfg.frames,
        delivered,
        recovered_fec,
        recovered_retx,
        corrupt_detected,
        usable,
        usable_rate: usable as f64 / cfg.frames.max(1) as f64,
        poisoned,
        wire_bytes,
        overhead: wire_bytes as f64 / (cfg.frames * cfg.payload_bytes).max(1) as f64,
        mean_recovery_ms: if recovery_count > 0 {
            recovery_ms_sum / recovery_count as f64
        } else {
            0.0
        },
    }
}

fn tiny_scene() -> SceneSource {
    let config =
        SemHoloConfig { capture_resolution: (48, 36), camera_count: 2, ..Default::default() };
    SceneSource::new(&config, 0.5)
}

fn policy_label(policy: LossPolicy) -> &'static str {
    match policy {
        LossPolicy::DropFrame => "drop",
        LossPolicy::RetransmitOnce => "retransmit_once",
    }
}

/// Run one `Session` scenario: the keypoint pipeline end to end over a
/// link impaired by `plan`, under the given transport loss policy.
pub fn run_session_scenario(plan: &FaultPlan, policy: LossPolicy) -> SessionOutcome {
    let scene = tiny_scene();
    let mut pipeline = KeypointPipeline::new(KeypointConfig { resolution: 24, ..Default::default() }, 7);
    let fault = if plan.loss.is_some() || !plan.segments.is_empty() {
        Some(plan.compile(0))
    } else {
        None
    };
    let mut session = Session::new(SessionConfig {
        trace: BandwidthTrace::Constant { bps: 25e6 },
        seed: plan.seed,
        loss_policy: policy,
        fault,
        ..Default::default()
    });
    let frames = 10;
    let report = session
        .run(&mut pipeline, &scene, frames)
        .expect("chaos session scenario must run");
    SessionOutcome {
        plan: plan.name.clone(),
        policy: policy_label(policy).into(),
        frames,
        delivered: report.delivered,
        recovered: report.recovered,
    }
}

/// Run one room scenario: `participants` parties, the degradation
/// ladder enabled, `plan`'s link impairments installed on the
/// `starved` participant's downlink and `plan`'s churn windows applied
/// to participant presence.
pub fn run_room_scenario(
    plan: &FaultPlan,
    participants: usize,
    frames: usize,
    starved: usize,
) -> RoomOutcome {
    let mut parts = ParticipantConfig::uniform_room(participants, 25e6);
    if plan.loss.is_some() || !plan.segments.is_empty() {
        // Rooms lane convention: downlink of participant i is lane 2i+1.
        parts[starved].downlink_fault = Some(plan.compile(starved as u64 * 2 + 1));
    }
    for c in &plan.churn {
        parts[c.participant].active = Some((c.join_s, c.leave_s));
    }
    let cfg = RoomConfig {
        participants: parts,
        frames,
        degrade: Some(DegradationLadder::standard()),
        share_encoder: true,
        seed: plan.seed,
        ..Default::default()
    };
    let mut room = Room::new(cfg).expect("chaos room scenario must be valid");
    let mut pipelines: Vec<Box<dyn semholo::semantics::SemanticPipeline>> = vec![Box::new(
        KeypointPipeline::new(KeypointConfig { resolution: 24, ..Default::default() }, 7),
    )];
    let report = room.run(&tiny_scene(), &mut pipelines).expect("chaos room scenario must run");
    let min_usable_rate = report
        .subscribers
        .iter()
        .map(|s| s.usable_rate)
        .fold(f64::INFINITY, f64::min);
    let s = &report.subscribers[starved];
    RoomOutcome {
        plan: plan.name.clone(),
        participants,
        min_usable_rate,
        starved_usable_rate: s.usable_rate,
        degraded: s.degraded,
        ladder_downgrades: s.ladder_downgrades,
        ladder_upgrades: s.ladder_upgrades,
        kept_flowing: s.usable > 0 && s.usable_rate > 0.5,
    }
}

/// The plan the room sweep uses for the ladder: the starved downlink
/// collapses to 0.2% capacity for the whole run.
pub fn room_collapse_plan(seed: u64) -> FaultPlan {
    FaultPlan::clean(seed).named("room_collapse").bandwidth(0.0, 1e6, 0.002)
}

/// The plan the gaussian sweep uses: the starved downlink squeezes to
/// 3% capacity (~750 kbps on the uniform 25 Mbps room — 375 kbps per
/// stream), which sits between the gaussian floor (160 kbps) and the
/// mesh floor (4 Mbps): the amortized rung is the richest feasible
/// tier, *if* the subscriber holds the prebuild.
pub fn gaussian_squeeze_plan(seed: u64) -> FaultPlan {
    FaultPlan::clean(seed).named("gaussian_squeeze").bandwidth(0.0, 1e6, 0.03)
}

/// Run one amortized-ladder room scenario: like [`run_room_scenario`]
/// but with the 4-tier gaussian ladder, and the starved subscriber's
/// prebuild blob either announced (`prebuilt`) or absent. The outcome
/// records which rung actually carried the starved port's traffic.
pub fn run_gaussian_room_scenario(
    plan: &FaultPlan,
    participants: usize,
    frames: usize,
    starved: usize,
    prebuilt: bool,
) -> GaussianRoomOutcome {
    let mut parts = ParticipantConfig::uniform_room(participants, 25e6);
    if plan.loss.is_some() || !plan.segments.is_empty() {
        parts[starved].downlink_fault = Some(plan.compile(starved as u64 * 2 + 1));
    }
    for c in &plan.churn {
        parts[c.participant].active = Some((c.join_s, c.leave_s));
    }
    let mut ready = vec![false; participants];
    ready[starved] = prebuilt;
    let cfg = RoomConfig {
        participants: parts,
        frames,
        degrade: Some(DegradationLadder::amortized()),
        prebuild_ready: Some(ready),
        share_encoder: true,
        seed: plan.seed,
        ..Default::default()
    };
    let mut room = Room::new(cfg).expect("gaussian room scenario must be valid");
    let mut pipelines: Vec<Box<dyn semholo::semantics::SemanticPipeline>> = vec![Box::new(
        KeypointPipeline::new(KeypointConfig { resolution: 24, ..Default::default() }, 7),
    )];
    let report =
        room.run(&tiny_scene(), &mut pipelines).expect("gaussian room scenario must run");
    let s = &report.subscribers[starved];
    let count = |name: &str| {
        s.tier_counts.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or(0)
    };
    let total: u64 = s.tier_counts.iter().map(|(_, c)| c).sum();
    GaussianRoomOutcome {
        plan: plan.name.clone(),
        participants,
        prebuilt,
        starved_usable_rate: s.usable_rate,
        gaussian_delivered: count("gaussian"),
        keypoints_delivered: count("keypoints"),
        gaussian_fraction: if total > 0 {
            count("gaussian") as f64 / total as f64
        } else {
            0.0
        },
        ladder_downgrades: s.ladder_downgrades,
        ladder_upgrades: s.ladder_upgrades,
        kept_flowing: s.usable > 0 && s.usable_rate > 0.5,
    }
}

/// The two-cell gaussian sweep ([`gaussian_squeeze_plan`] with and
/// without the prebuild), ready to append to a [`ResilienceReport`]'s
/// `gaussian` section.
pub fn run_gaussian_scenarios(seed: u64) -> Vec<GaussianRoomOutcome> {
    let plan = gaussian_squeeze_plan(seed);
    holo_trace::parallel::par_map(vec![true, false], |prebuilt| {
        run_gaussian_room_scenario(&plan, 3, 12, 2, prebuilt)
    })
}

/// One cell of the scenario matrix: plain data, so the whole matrix
/// can ship to the fork-join pool and run in any worker layout.
enum ScenarioItem {
    Stream { plan: FaultPlan, mech: Mechanisms, cfg: StreamConfig },
    Session { plan: FaultPlan, policy: LossPolicy },
    Room { plan: FaultPlan, participants: usize, frames: usize, starved: usize },
}

/// The matching outcome, demuxed back into the report by family.
enum ScenarioOut {
    Stream(StreamOutcome),
    Session(SessionOutcome),
    Room(RoomOutcome),
}

/// Run the full scenario matrix and assemble the canonical report:
/// stream plans × mechanism sets, session plans × loss policies, and
/// the two room scenarios (ladder collapse, churn).
///
/// The cells are independent seeded simulations, so the whole matrix
/// fans out over the deterministic fork-join pool
/// ([`holo_trace::parallel::par_map`]): fixed partitioning by cell
/// index, outcomes merged back in matrix order, worker-side spans and
/// counters (`chaos.*`) folded into the caller's recorder at scope
/// exit. The report — and any trace taken around it — is byte-identical
/// across `SEMHOLO_THREADS=1..N`.
pub fn run_scenarios(seed: u64) -> ResilienceReport {
    let cfg = StreamConfig::default();
    let stream_plans = [
        FaultPlan::clean(seed),
        FaultPlan::burst5(seed),
        FaultPlan::flapping(seed),
        FaultPlan::bandwidth_collapse(seed),
        FaultPlan::delay_spike(seed),
        FaultPlan::burst5_corrupt(seed),
    ];
    let mechanism_sets =
        [Mechanisms::baseline(), Mechanisms::fec(), Mechanisms::retransmit(), Mechanisms::full()];
    let mut items: Vec<ScenarioItem> = Vec::with_capacity(30);
    for plan in &stream_plans {
        for mech in &mechanism_sets {
            items.push(ScenarioItem::Stream { plan: plan.clone(), mech: *mech, cfg });
        }
    }
    for plan in [FaultPlan::clean(seed), FaultPlan::burst5(seed)] {
        for policy in [LossPolicy::DropFrame, LossPolicy::RetransmitOnce] {
            items.push(ScenarioItem::Session { plan: plan.clone(), policy });
        }
    }
    items.push(ScenarioItem::Room {
        plan: room_collapse_plan(seed),
        participants: 3,
        frames: 12,
        starved: 2,
    });
    items.push(ScenarioItem::Room {
        plan: FaultPlan::churny(seed, 3),
        participants: 3,
        frames: 10,
        starved: 2,
    });

    let outcomes = holo_trace::parallel::par_map(items, |item| match item {
        ScenarioItem::Stream { plan, mech, cfg } => {
            ScenarioOut::Stream(run_stream_scenario(&plan, &mech, &cfg))
        }
        ScenarioItem::Session { plan, policy } => {
            ScenarioOut::Session(run_session_scenario(&plan, policy))
        }
        ScenarioItem::Room { plan, participants, frames, starved } => {
            ScenarioOut::Room(run_room_scenario(&plan, participants, frames, starved))
        }
    });

    let mut report = ResilienceReport { seed, ..Default::default() };
    for out in outcomes {
        match out {
            ScenarioOut::Stream(s) => report.streams.push(s),
            ScenarioOut::Session(s) => report.sessions.push(s),
            ScenarioOut::Room(r) => report.rooms.push(r),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_needs_no_recovery() {
        let out = run_stream_scenario(
            &FaultPlan::clean(3),
            &Mechanisms::baseline(),
            &StreamConfig::default(),
        );
        assert_eq!(out.delivered, out.frames);
        assert_eq!(out.usable, out.frames);
        assert_eq!(out.recovered_fec + out.recovered_retx, 0);
        assert_eq!(out.poisoned, 0);
        assert!((out.overhead - 1.0).abs() < 0.1, "headers only, got {}", out.overhead);
    }

    #[test]
    fn fec_rebuilds_frames_under_burst_loss() {
        let out =
            run_stream_scenario(&FaultPlan::burst5(11), &Mechanisms::fec(), &StreamConfig::default());
        assert!(out.recovered_fec > 0, "FEC never engaged: {out:?}");
        assert!(out.mean_recovery_ms >= 0.0);
        // FEC(4,1) costs 25% parity plus per-packet headers.
        assert!(out.overhead > 1.2, "parity overhead missing, got {}", out.overhead);
    }

    #[test]
    fn full_protection_doubles_usable_rate_under_burst_loss() {
        // The acceptance criterion: FEC(4,1)+retransmit retains at
        // least 2x the usable frame rate of the unprotected baseline
        // under ~5% Gilbert-Elliott burst loss.
        let cfg = StreamConfig::default();
        let plan = FaultPlan::burst5(11);
        let base = run_stream_scenario(&plan, &Mechanisms::baseline(), &cfg);
        let full = run_stream_scenario(&plan, &Mechanisms::full(), &cfg);
        assert!(
            full.usable as f64 >= 2.0 * base.usable as f64,
            "protected {} vs baseline {} usable frames",
            full.usable,
            base.usable
        );
        assert!(full.usable_rate > 0.5, "protected stream unusable: {}", full.usable_rate);
        assert!(full.recovered_retx > 0);
    }

    #[test]
    fn retransmission_rides_out_a_flap_fec_does_not() {
        let cfg = StreamConfig::default();
        let plan = FaultPlan::flapping(5);
        let retx = run_stream_scenario(&plan, &Mechanisms::retransmit(), &cfg);
        let fec_only = run_stream_scenario(&plan, &Mechanisms::fec(), &cfg);
        // A 300 ms outage kills whole FEC groups (parity dies with the
        // data), but the backoff schedule reaches past it.
        assert!(
            retx.delivered > fec_only.delivered,
            "retx {} <= fec {}",
            retx.delivered,
            fec_only.delivered
        );
    }

    #[test]
    fn session_sweep_shows_retransmit_recovering() {
        let drop = run_session_scenario(&FaultPlan::burst5(11), LossPolicy::DropFrame);
        let retx = run_session_scenario(&FaultPlan::burst5(11), LossPolicy::RetransmitOnce);
        assert_eq!(drop.recovered, 0, "DropFrame cannot recover");
        assert!(retx.delivered >= drop.delivered);
    }

    #[test]
    fn room_collapse_engages_the_ladder_and_keeps_flowing() {
        let out = run_room_scenario(&room_collapse_plan(7), 3, 12, 2);
        assert!(out.ladder_downgrades >= 1, "ladder never engaged: {out:?}");
        assert!(out.degraded > 0);
        assert!(out.kept_flowing, "text tier must keep frames flowing: {out:?}");
    }

    #[test]
    fn churny_room_keeps_everyone_usable() {
        let out = run_room_scenario(&FaultPlan::churny(7, 3), 3, 10, 2);
        assert!(out.kept_flowing);
        assert!(out.min_usable_rate > 0.9, "clean churny room should stay usable: {out:?}");
    }

    #[test]
    fn corruption_is_detected_dropped_and_recovered() {
        // The PR 5 acceptance criterion: with PayloadCorrupt faults in
        // the plan, corrupted frames are CRC-detected and dropped, and
        // the full mechanism set recovers to a usable rate no worse
        // than the unprotected baseline under the same loss plan.
        let cfg = StreamConfig::default();
        let corrupt =
            run_stream_scenario(&FaultPlan::burst5_corrupt(11), &Mechanisms::full(), &cfg);
        assert!(corrupt.corrupt_detected > 0, "corruption never injected: {corrupt:?}");
        let base =
            run_stream_scenario(&FaultPlan::burst5(11), &Mechanisms::baseline(), &cfg);
        assert!(
            corrupt.usable_rate >= base.usable_rate,
            "protected-under-corruption {} fell below unprotected baseline {}",
            corrupt.usable_rate,
            base.usable_rate
        );
        // Plans without PayloadCorrupt windows must draw nothing from
        // the corruption stream — existing scenarios replay unchanged.
        let clean =
            run_stream_scenario(&FaultPlan::clean(11), &Mechanisms::baseline(), &cfg);
        assert_eq!(clean.corrupt_detected, 0);
    }

    #[test]
    fn gaussian_squeeze_rides_the_rung_only_when_prebuilt() {
        let plan = gaussian_squeeze_plan(7);
        let warm = run_gaussian_room_scenario(&plan, 3, 12, 2, true);
        assert!(warm.ladder_downgrades >= 1, "ladder never engaged: {warm:?}");
        assert!(warm.gaussian_delivered > 0, "rung never carried traffic: {warm:?}");
        assert!(
            warm.gaussian_fraction > 0.5,
            "prebuilt port should mostly ride gaussian: {warm:?}"
        );
        assert!(warm.kept_flowing);

        let cold = run_gaussian_room_scenario(&plan, 3, 12, 2, false);
        assert_eq!(cold.gaussian_delivered, 0, "gated rung opened without the blob");
        assert!(cold.keypoints_delivered > 0, "cold port must fall through: {cold:?}");
        assert!(cold.kept_flowing, "keypoints keep the cold port flowing");
    }

    #[test]
    fn gaussian_sweep_is_deterministic() {
        use holo_runtime::ser::ToJson;
        let a = run_gaussian_scenarios(7);
        let b = run_gaussian_scenarios(7);
        assert_eq!(a.len(), 2);
        assert_eq!(a.to_json().render(), b.to_json().render());
        // Appending the sweep leaves the base matrix bytes untouched.
        let mut report = run_scenarios(7);
        let base = report.render();
        report.gaussian = a;
        assert!(report.render().starts_with(&base[..base.len() - 1]));
    }

    #[test]
    fn the_matrix_is_deterministic() {
        let a = run_scenarios(7);
        let b = run_scenarios(7);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.streams.len(), 24);
        assert_eq!(a.sessions.len(), 4);
        assert_eq!(a.rooms.len(), 2);
        let c = run_scenarios(8);
        assert_ne!(a.render(), c.render(), "seed must be observable");
    }

    #[test]
    fn the_matrix_is_thread_count_independent() {
        // Safe to flip the process-wide override mid-suite precisely
        // because of what this test asserts: no result depends on it.
        use holo_runtime::par;
        par::set_thread_override(Some(1));
        let one = run_scenarios(7).render();
        par::set_thread_override(Some(8));
        let eight = run_scenarios(7).render();
        par::set_thread_override(None);
        assert_eq!(one, eight, "report bytes diverged across thread counts");
    }
}
