//! The `ResilienceReport`: canonical, byte-identical per seed.
//!
//! One report covers the whole scenario matrix: point-to-point streams
//! under plans × mechanisms, `Session` runs under both loss policies,
//! and `Room` runs exercising the degradation ladder and churn. Every
//! number comes out of seeded virtual time, and the JSON rendering
//! uses `holo_runtime::ser`'s deterministic field order and float
//! formatting — two runs with the same seed render identical bytes
//! (what `scripts/verify.sh` byte-compares).

use holo_runtime::ser::{JsonValue, ToJson};

/// One point-to-point stream scenario: a fault plan × a mechanism set.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Fault plan name.
    pub plan: String,
    /// Mechanism label (`baseline`, `fec(4,1)`, `retransmit`,
    /// `fec(4,1)+retransmit`).
    pub mechanism: String,
    /// Frames offered.
    pub frames: usize,
    /// Frames available after recovery (delivered or rebuilt).
    pub delivered: usize,
    /// Lost frames rebuilt from FEC parity.
    pub recovered_fec: usize,
    /// Frames delivered only thanks to retransmission.
    pub recovered_retx: usize,
    /// Frames (data or parity) that arrived corrupted and were
    /// detected-and-dropped by the envelope CRC — eligible for the
    /// same recovery paths as losses.
    pub corrupt_detected: usize,
    /// Frames decodable under the keyframe/delta rules.
    pub usable: usize,
    /// `usable / frames`.
    pub usable_rate: f64,
    /// Frames available but undecodable (poisoned delta chains).
    pub poisoned: usize,
    /// Total wire bytes (payloads, headers, parity, retransmissions).
    pub wire_bytes: u64,
    /// `wire_bytes / (frames × payload)` — the protection overhead.
    pub overhead: f64,
    /// Mean capture→availability latency of recovered frames, ms
    /// (0 when nothing needed recovery).
    pub mean_recovery_ms: f64,
}

impl ToJson for StreamOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("mechanism", self.mechanism.to_json()),
            ("frames", self.frames.to_json()),
            ("delivered", self.delivered.to_json()),
            ("recovered_fec", self.recovered_fec.to_json()),
            ("recovered_retx", self.recovered_retx.to_json()),
            ("corrupt_detected", self.corrupt_detected.to_json()),
            ("usable", self.usable.to_json()),
            ("usable_rate", self.usable_rate.to_json()),
            ("poisoned", self.poisoned.to_json()),
            ("wire_bytes", self.wire_bytes.to_json()),
            ("overhead", self.overhead.to_json()),
            ("mean_recovery_ms", self.mean_recovery_ms.to_json()),
        ])
    }
}

/// One `core::session` run under a fault plan.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Fault plan name.
    pub plan: String,
    /// Transport loss policy (`drop` or `retransmit_once`).
    pub policy: String,
    /// Frames offered.
    pub frames: usize,
    /// Frames delivered complete.
    pub delivered: usize,
    /// Frames delivered only thanks to fragment retransmission.
    pub recovered: usize,
}

impl ToJson for SessionOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("policy", self.policy.to_json()),
            ("frames", self.frames.to_json()),
            ("delivered", self.delivered.to_json()),
            ("recovered", self.recovered.to_json()),
        ])
    }
}

/// One `holo-conf` room run under a fault plan (ladder and/or churn).
#[derive(Debug, Clone)]
pub struct RoomOutcome {
    /// Fault plan name.
    pub plan: String,
    /// Room size.
    pub participants: usize,
    /// Worst subscriber usable rate.
    pub min_usable_rate: f64,
    /// Usable rate of the faulted/churned participant.
    pub starved_usable_rate: f64,
    /// Degraded (below-top-tier) usable frames at the starved port.
    pub degraded: usize,
    /// Ladder downgrades at the starved port.
    pub ladder_downgrades: u64,
    /// Ladder upgrades at the starved port.
    pub ladder_upgrades: u64,
    /// Whether frames kept flowing to the starved subscriber (the
    /// ladder's no-stall guarantee: usable rate stayed above half).
    pub kept_flowing: bool,
}

impl ToJson for RoomOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("participants", self.participants.to_json()),
            ("min_usable_rate", self.min_usable_rate.to_json()),
            ("starved_usable_rate", self.starved_usable_rate.to_json()),
            ("degraded", self.degraded.to_json()),
            ("ladder_downgrades", self.ladder_downgrades.to_json()),
            ("ladder_upgrades", self.ladder_upgrades.to_json()),
            ("kept_flowing", self.kept_flowing.to_json()),
        ])
    }
}

/// One amortized-ladder room run: the 4-tier ladder (mesh → gaussian →
/// keypoints → text) under a fault plan, with the prebuild blob either
/// announced or absent at the starved port.
#[derive(Debug, Clone)]
pub struct GaussianRoomOutcome {
    /// Fault plan name.
    pub plan: String,
    /// Room size.
    pub participants: usize,
    /// Whether the starved subscriber held the prebuild blob.
    pub prebuilt: bool,
    /// Usable rate of the starved subscriber.
    pub starved_usable_rate: f64,
    /// Fan-outs delivered on the gaussian rung at the starved port.
    pub gaussian_delivered: u64,
    /// Fan-outs delivered on the keypoints rung at the starved port.
    pub keypoints_delivered: u64,
    /// Gaussian share of all delivered fan-outs at the starved port.
    pub gaussian_fraction: f64,
    /// Ladder downgrades at the starved port.
    pub ladder_downgrades: u64,
    /// Ladder upgrades at the starved port.
    pub ladder_upgrades: u64,
    /// Whether frames kept flowing to the starved subscriber.
    pub kept_flowing: bool,
}

impl ToJson for GaussianRoomOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("participants", self.participants.to_json()),
            ("prebuilt", self.prebuilt.to_json()),
            ("starved_usable_rate", self.starved_usable_rate.to_json()),
            ("gaussian_delivered", self.gaussian_delivered.to_json()),
            ("keypoints_delivered", self.keypoints_delivered.to_json()),
            ("gaussian_fraction", self.gaussian_fraction.to_json()),
            ("ladder_downgrades", self.ladder_downgrades.to_json()),
            ("ladder_upgrades", self.ladder_upgrades.to_json()),
            ("kept_flowing", self.kept_flowing.to_json()),
        ])
    }
}

/// Per-importance-class accounting inside one UEP sweep cell.
#[derive(Debug, Clone)]
pub struct UepClassStats {
    /// Class name (`critical`, `high`, `medium`, `low`).
    pub class: String,
    /// Frames of this class offered.
    pub frames: usize,
    /// Frames available after recovery (delivered, rebuilt, retried).
    pub delivered: usize,
    /// Frames usable: chain-decodable AND inside the render deadline.
    pub usable: usize,
    /// Frames whose remaining retries were abandoned past the
    /// dependency horizon and never arrived. Counted apart from
    /// `lost`: abandonment is a *decision*, not a failure.
    pub abandoned: usize,
    /// Frames that exhausted their schedule and never arrived.
    pub lost: usize,
}

impl ToJson for UepClassStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("class", self.class.to_json()),
            ("frames", self.frames.to_json()),
            ("delivered", self.delivered.to_json()),
            ("usable", self.usable.to_json()),
            ("abandoned", self.abandoned.to_json()),
            ("lost", self.lost.to_json()),
        ])
    }
}

/// One unequal-protection sweep cell: a fault plan × a
/// `holo_uep::UepPolicy`, run through the class-aware scheduler.
/// Deadlines matter here: `usable` demands timeliness, which the
/// class-blind `StreamOutcome.usable` never did.
#[derive(Debug, Clone)]
pub struct UepOutcome {
    /// Fault plan name.
    pub plan: String,
    /// Policy name (`uniform` or `weighted`).
    pub policy: String,
    /// Frames offered.
    pub frames: usize,
    /// Frames available after recovery.
    pub delivered: usize,
    /// Frames chain-decodable regardless of when they arrived.
    pub decodable: usize,
    /// Frames chain-decodable within the render deadline.
    pub usable: usize,
    /// `usable / frames`.
    pub usable_rate: f64,
    /// Decodable but past the deadline (`decodable - usable`).
    pub late: usize,
    /// Frames abandoned past the dependency horizon, never delivered.
    /// Always reported apart from `lost`; `delivered + abandoned +
    /// lost == frames` holds in every cell.
    pub abandoned: usize,
    /// Frames that exhausted their schedule and never arrived.
    pub lost: usize,
    /// Lost frames rebuilt from per-class FEC parity.
    pub recovered_fec: usize,
    /// Frames delivered only thanks to retransmission.
    pub recovered_retx: usize,
    /// Corrupted-and-dropped envelopes (CRC detections).
    pub corrupt_detected: usize,
    /// Parity frames actually emitted — the FEC half of the budget.
    pub parity_frames: usize,
    /// Retry slots the policy allowed — the retransmit half.
    pub retries_scheduled: u64,
    /// Retries actually offered to the wire.
    pub retries_sent: u64,
    /// Retry slots declined by deadline-aware abandonment.
    pub retries_abandoned: u64,
    /// Total wire bytes (payloads, envelopes, UEP tags, parity,
    /// retransmissions) — tagged policies pay their header tax here.
    pub wire_bytes: u64,
    /// Per-class breakdown, in class order.
    pub classes: Vec<UepClassStats>,
}

impl ToJson for UepOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("policy", self.policy.to_json()),
            ("frames", self.frames.to_json()),
            ("delivered", self.delivered.to_json()),
            ("decodable", self.decodable.to_json()),
            ("usable", self.usable.to_json()),
            ("usable_rate", self.usable_rate.to_json()),
            ("late", self.late.to_json()),
            ("abandoned", self.abandoned.to_json()),
            ("lost", self.lost.to_json()),
            ("recovered_fec", self.recovered_fec.to_json()),
            ("recovered_retx", self.recovered_retx.to_json()),
            ("corrupt_detected", self.corrupt_detected.to_json()),
            ("parity_frames", self.parity_frames.to_json()),
            ("retries_scheduled", self.retries_scheduled.to_json()),
            ("retries_sent", self.retries_sent.to_json()),
            ("retries_abandoned", self.retries_abandoned.to_json()),
            ("wire_bytes", self.wire_bytes.to_json()),
            ("classes", self.classes.to_json()),
        ])
    }
}

/// The full matrix outcome.
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Master seed the whole matrix derives from.
    pub seed: u64,
    /// Point-to-point stream scenarios, in sweep order.
    pub streams: Vec<StreamOutcome>,
    /// Session scenarios, in sweep order.
    pub sessions: Vec<SessionOutcome>,
    /// Room scenarios, in sweep order.
    pub rooms: Vec<RoomOutcome>,
    /// Amortized-ladder room scenarios, in sweep order. Empty unless
    /// the gaussian sweep ran; omitted from the JSON when empty, so
    /// the base matrix renders byte-for-byte as before.
    pub gaussian: Vec<GaussianRoomOutcome>,
    /// Unequal-protection sweep cells, in sweep order. Same
    /// append-only contract as `gaussian`: empty unless the UEP sweep
    /// ran, omitted from the JSON when empty.
    pub uep: Vec<UepOutcome>,
}

impl ResilienceReport {
    /// Find a stream outcome by plan and mechanism label.
    pub fn stream(&self, plan: &str, mechanism: &str) -> Option<&StreamOutcome> {
        self.streams.iter().find(|s| s.plan == plan && s.mechanism == mechanism)
    }

    /// Canonical JSON (deterministic field order and float formatting).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("seed", self.seed.to_json()),
            ("streams", self.streams.to_json()),
            ("sessions", self.sessions.to_json()),
            ("rooms", self.rooms.to_json()),
        ];
        if !self.gaussian.is_empty() {
            fields.push(("gaussian", self.gaussian.to_json()));
        }
        if !self.uep.is_empty() {
            fields.push(("uep", self.uep.to_json()));
        }
        JsonValue::obj(fields)
    }

    /// The canonical report bytes.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Evaluate `spec` against every matrix cell, from the aggregate
    /// counts each outcome retains. Stream and session cells carry
    /// frame counts; room cells only retain rates, so their summaries
    /// pass the worst subscriber's rate through
    /// [`holo_obs::SloSummary::usable_rate`]. Objectives the
    /// aggregates can't answer (latency, stalls, burn) come back
    /// *skipped* in the verdict, never silently passed.
    pub fn slo_verdicts(&self, spec: &holo_obs::SloSpec) -> Vec<(String, holo_obs::SloVerdict)> {
        let mut out = Vec::new();
        for s in &self.streams {
            let summary = holo_obs::SloSummary {
                frames_expected: s.frames as u64,
                frames_usable: s.usable as u64,
                ..Default::default()
            };
            out.push((
                format!("stream/{}/{}", s.plan, s.mechanism),
                spec.evaluate_summary(&summary),
            ));
        }
        for s in &self.sessions {
            let summary = holo_obs::SloSummary {
                frames_expected: s.frames as u64,
                frames_usable: s.delivered as u64,
                ..Default::default()
            };
            out.push((
                format!("session/{}/{}", s.plan, s.policy),
                spec.evaluate_summary(&summary),
            ));
        }
        for r in &self.rooms {
            let summary = holo_obs::SloSummary {
                usable_rate: Some(r.min_usable_rate),
                ..Default::default()
            };
            out.push((format!("room/{}", r.plan), spec.evaluate_summary(&summary)));
        }
        for g in &self.gaussian {
            // Only prebuilt cells carry a gaussian fraction: the cold
            // cell is *supposed* to fall through to keypoints, so the
            // amortized spec's rung floor is skipped there, not failed.
            let summary = holo_obs::SloSummary {
                usable_rate: Some(g.starved_usable_rate),
                tier_fractions: if g.prebuilt {
                    vec![("gaussian".to_string(), g.gaussian_fraction)]
                } else {
                    Vec::new()
                },
                ..Default::default()
            };
            out.push((
                format!(
                    "gaussian/{}/{}",
                    g.plan,
                    if g.prebuilt { "prebuilt" } else { "cold" }
                ),
                spec.evaluate_summary(&summary),
            ));
        }
        for u in &self.uep {
            // UEP cells already enforce timeliness in `usable`, so the
            // spec's usable-rate floor judges the deadline-aware count.
            let summary = holo_obs::SloSummary {
                frames_expected: u.frames as u64,
                frames_usable: u.usable as u64,
                ..Default::default()
            };
            out.push((format!("uep/{}/{}", u.plan, u.policy), spec.evaluate_summary(&summary)));
        }
        out
    }

    /// The machine-readable SLO document for the whole matrix (what
    /// `examples/chaos_recovery.rs` writes as `SLO_report.json`).
    /// Deterministic bytes per seed; [`render`](Self::render) stays
    /// byte-for-byte unchanged by this addition.
    pub fn slo_report(&self, spec: &holo_obs::SloSpec) -> JsonValue {
        let cells = self.slo_verdicts(spec);
        let pass = cells.iter().all(|(_, v)| v.pass());
        JsonValue::obj([
            ("seed", self.seed.to_json()),
            ("pass", pass.to_json()),
            (
                "cells",
                JsonValue::Arr(
                    cells
                        .iter()
                        .map(|(name, v)| {
                            JsonValue::obj([("cell", name.to_json()), ("verdict", v.to_json())])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_complete() {
        let report = ResilienceReport {
            seed: 9,
            streams: vec![StreamOutcome {
                plan: "burst5".into(),
                mechanism: "fec(4,1)+retransmit".into(),
                frames: 150,
                delivered: 140,
                recovered_fec: 4,
                recovered_retx: 30,
                corrupt_detected: 2,
                usable: 130,
                usable_rate: 130.0 / 150.0,
                poisoned: 5,
                wire_bytes: 4_000_000,
                overhead: 1.31,
                mean_recovery_ms: 61.25,
            }],
            sessions: vec![SessionOutcome {
                plan: "burst5".into(),
                policy: "retransmit_once".into(),
                frames: 10,
                delivered: 10,
                recovered: 2,
            }],
            rooms: vec![RoomOutcome {
                plan: "room_collapse".into(),
                participants: 3,
                min_usable_rate: 0.8,
                starved_usable_rate: 0.8,
                degraded: 6,
                ladder_downgrades: 1,
                ladder_upgrades: 1,
                kept_flowing: true,
            }],
            gaussian: Vec::new(),
            uep: Vec::new(),
        };
        let s = report.render();
        for key in [
            "seed",
            "streams",
            "mechanism",
            "recovered_fec",
            "recovered_retx",
            "poisoned",
            "sessions",
            "policy",
            "rooms",
            "ladder_downgrades",
            "kept_flowing",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert_eq!(s, report.render());
        assert!(report.stream("burst5", "fec(4,1)+retransmit").is_some());
        assert!(report.stream("burst5", "nope").is_none());
        holo_runtime::ser::parse(&s).expect("canonical JSON parses");

        // SLO verdicts cover every cell, ride on the retained
        // aggregates, and leave the canonical report bytes alone.
        let spec = holo_obs::SloSpec::telepresence();
        let verdicts = report.slo_verdicts(&spec);
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[0].0, "stream/burst5/fec(4,1)+retransmit");
        assert_eq!(verdicts[1].0, "session/burst5/retransmit_once");
        assert_eq!(verdicts[2].0, "room/room_collapse");
        // Stream cell: 130/150 usable < 0.90 floor -> fails.
        assert!(!verdicts[0].1.pass());
        // Session cell: 10/10 delivered -> passes the floor.
        assert!(verdicts[1].1.pass());
        // Room cell evaluates the retained min rate, 0.8 < 0.90.
        assert!(!verdicts[2].1.pass());
        // Latency/stall/burn objectives are skipped, not passed.
        assert!(!verdicts[0].1.skipped.is_empty());
        let doc = report.slo_report(&spec).render();
        holo_runtime::ser::parse(&doc).expect("SLO doc parses");
        assert_eq!(doc, report.slo_report(&spec).render());
        assert_eq!(s, report.render(), "slo_report leaves render() untouched");
    }

    #[test]
    fn gaussian_section_renders_only_when_present() {
        let mut report = ResilienceReport { seed: 9, ..Default::default() };
        let base = report.render();
        assert!(!base.contains("\"gaussian\""), "empty sweep must be invisible");

        let outcome = |prebuilt: bool, frac: f64| GaussianRoomOutcome {
            plan: "gaussian_squeeze".into(),
            participants: 3,
            prebuilt,
            starved_usable_rate: 0.95,
            gaussian_delivered: if prebuilt { 20 } else { 0 },
            keypoints_delivered: if prebuilt { 2 } else { 22 },
            gaussian_fraction: frac,
            ladder_downgrades: 1,
            ladder_upgrades: 0,
            kept_flowing: true,
        };
        report.gaussian.push(outcome(true, 0.9));
        report.gaussian.push(outcome(false, 0.0));
        let with = report.render();
        // The base fields render byte-for-byte as before; the gaussian
        // section is strictly appended.
        assert!(with.starts_with(&base[..base.len() - 1]));
        assert!(with.contains("gaussian_fraction"));
        holo_runtime::ser::parse(&with).expect("canonical JSON parses");

        // The amortized spec judges the prebuilt cell's rung floor and
        // skips it on the cold cell.
        let spec = holo_obs::SloSpec::telepresence_amortized();
        let verdicts = report.slo_verdicts(&spec);
        let (name, v) = &verdicts[verdicts.len() - 2];
        assert_eq!(name, "gaussian/gaussian_squeeze/prebuilt");
        assert!(v.checks.iter().any(|c| c.objective == "tier:gaussian" && c.pass));
        let (name, v) = &verdicts[verdicts.len() - 1];
        assert_eq!(name, "gaussian/gaussian_squeeze/cold");
        assert!(v.skipped.contains(&"tier:gaussian".to_string()));
    }

    #[test]
    fn uep_section_renders_only_when_present() {
        let mut report = ResilienceReport { seed: 9, ..Default::default() };
        let base = report.render();
        assert!(!base.contains("\"uep\""), "empty sweep must be invisible");

        report.uep.push(UepOutcome {
            plan: "burst5".into(),
            policy: "weighted".into(),
            frames: 150,
            delivered: 144,
            decodable: 141,
            usable: 138,
            usable_rate: 138.0 / 150.0,
            late: 3,
            abandoned: 4,
            lost: 2,
            recovered_fec: 5,
            recovered_retx: 11,
            corrupt_detected: 0,
            parity_frames: 37,
            retries_scheduled: 450,
            retries_sent: 19,
            retries_abandoned: 6,
            wire_bytes: 4_100_000,
            classes: vec![UepClassStats {
                class: "critical".into(),
                frames: 15,
                delivered: 15,
                usable: 15,
                abandoned: 0,
                lost: 0,
            }],
        });
        let with = report.render();
        // Strictly appended: base bytes untouched.
        assert!(with.starts_with(&base[..base.len() - 1]));
        assert!(with.contains("retries_abandoned"));
        holo_runtime::ser::parse(&with).expect("canonical JSON parses");

        // The accounting invariant the acceptance criteria demand:
        // abandoned frames live beside losses, never inside them.
        let u = &report.uep[0];
        assert_eq!(u.delivered + u.abandoned + u.lost, u.frames);

        // UEP cells join the SLO verdict sweep under their own names.
        let spec = holo_obs::SloSpec::telepresence();
        let verdicts = report.slo_verdicts(&spec);
        let (name, v) = verdicts.last().unwrap();
        assert_eq!(name, "uep/burst5/weighted");
        assert!(v.checks.iter().any(|c| c.objective == "usable_rate"));
    }
}
