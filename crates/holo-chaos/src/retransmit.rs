//! Selective whole-frame retransmission with RTO + exponential backoff.
//!
//! The transport's built-in `RetransmitOnce` resends lost fragments
//! immediately — fine for thin links, but it gives up after one round
//! and cannot outlast an outage. This layer re-offers the *frame* on a
//! retransmission-timeout schedule (`rto · backoff^attempt`), which is
//! what actually rides out a link flap: the first attempts die inside
//! the outage window, a later one lands after it.

use holo_net::time::SimTime;
use holo_net::transport::FrameTransport;
use std::time::Duration;

/// Retransmission schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransmitConfig {
    /// Base retransmission timeout (delay before the first retry).
    pub rto: Duration,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff: f64,
    /// Retries after the initial attempt (0 disables retransmission).
    pub max_retries: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        Self { rto: Duration::from_millis(50), backoff: 2.0, max_retries: 3 }
    }
}

/// Delay before retry number `attempt + 1`: `rto * backoff^attempt`,
/// clamped so the conversion to `Duration` can never panic. Backoff
/// multipliers below 1 are lifted to 1 (a shrinking schedule is a
/// typo, not a strategy), NaN lifts to 1 the same way, the exponent is
/// capped, and the delay saturates at one virtual hour — far beyond
/// any stream this workspace simulates, but finite, so a hostile
/// `backoff` or a large `max_retries` degrades to "retry hourly"
/// instead of `Duration::from_secs_f64` aborting the process.
pub fn backoff_delay(config: &RetransmitConfig, attempt: u32) -> Duration {
    const MAX_DELAY_SECS: f64 = 3600.0;
    let factor = config.backoff.max(1.0).powi(attempt.min(64) as i32);
    let secs = (config.rto.as_secs_f64() * factor).min(MAX_DELAY_SECS);
    Duration::from_secs_f64(secs)
}

/// Outcome of one frame offered under the retransmit schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendOutcome {
    /// Arrival of the first complete attempt, if any succeeded.
    pub delivered_at: Option<SimTime>,
    /// Attempts made (1 = clean first try).
    pub attempts: u32,
    /// Wire bytes across all attempts (headers + retransmissions).
    pub wire_bytes: u64,
}

impl SendOutcome {
    /// Delivered, but only thanks to at least one retry.
    pub fn recovered(&self) -> bool {
        self.delivered_at.is_some() && self.attempts > 1
    }
}

/// Offer a size-only frame at `at`, retrying on the RTO schedule until
/// it lands or the budget is spent. `config: None` sends exactly once
/// (the unprotected baseline). The transport should carry
/// `LossPolicy::DropFrame` — this layer owns recovery.
pub fn send_with_retransmit(
    transport: &mut FrameTransport,
    payload_bytes: usize,
    at: SimTime,
    config: Option<&RetransmitConfig>,
) -> SendOutcome {
    let max_attempts = 1 + config.map_or(0, |c| c.max_retries);
    let mut offer_at = at;
    let mut wire_bytes = 0u64;
    for attempt in 0..max_attempts {
        let result = transport.send_frame_sized(payload_bytes, offer_at);
        wire_bytes += result.wire_bytes;
        if result.complete {
            return SendOutcome {
                delivered_at: result.completed_at,
                attempts: attempt + 1,
                wire_bytes,
            };
        }
        if let Some(c) = config {
            offer_at += backoff_delay(c, attempt);
        }
    }
    SendOutcome { delivered_at: None, attempts: max_attempts, wire_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_net::fault::{FaultClock, FaultEffect, FaultSegment, LossModel};
    use holo_net::link::{Link, LinkConfig};
    use holo_net::trace::BandwidthTrace;
    use holo_net::transport::LossPolicy;

    fn quiet_link(bps: f64, seed: u64) -> Link {
        let cfg = LinkConfig { jitter_max: Duration::ZERO, ..Default::default() };
        Link::new(cfg, BandwidthTrace::Constant { bps }, seed)
    }

    #[test]
    fn clean_link_delivers_first_try() {
        let mut t = FrameTransport::new(quiet_link(100e6, 1), LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&Default::default()));
        assert_eq!(out.attempts, 1);
        assert!(out.delivered_at.is_some());
        assert!(!out.recovered());
    }

    #[test]
    fn backoff_outlasts_a_link_flap() {
        // Outage covers [0, 120) ms. Default schedule offers at 0, 50,
        // 150 ms — the third attempt clears the flap.
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(
            None,
            vec![FaultSegment {
                from: SimTime::ZERO,
                until: SimTime::from_millis(120),
                effect: FaultEffect::LinkDown,
            }],
            5,
        ));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&Default::default()));
        assert!(out.recovered(), "attempts {} delivered {:?}", out.attempts, out.delivered_at);
        assert_eq!(out.attempts, 3);
        assert!(out.delivered_at.unwrap() >= SimTime::from_millis(150));
    }

    #[test]
    fn without_config_there_is_exactly_one_attempt() {
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(Some(LossModel::Bernoulli { rate: 1.0 }), Vec::new(), 2));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, None);
        assert_eq!(out.attempts, 1);
        assert!(out.delivered_at.is_none());
    }

    #[test]
    fn budget_exhausts_on_a_dead_link() {
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(Some(LossModel::Bernoulli { rate: 1.0 }), Vec::new(), 2));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let cfg = RetransmitConfig { max_retries: 4, ..Default::default() };
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&cfg));
        assert_eq!(out.attempts, 5);
        assert!(out.delivered_at.is_none());
        assert!(out.wire_bytes > 0, "failed attempts still burned wire bytes");
    }

    #[test]
    fn backoff_saturates_instead_of_panicking() {
        // A 200-retry budget walks the exponent far past anything
        // rto * 2^attempt can represent; the schedule must saturate,
        // not abort in Duration::from_secs_f64.
        let mut link = quiet_link(100e6, 1);
        link.set_fault(FaultClock::new(Some(LossModel::Bernoulli { rate: 1.0 }), Vec::new(), 2));
        let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
        let cfg = RetransmitConfig { max_retries: 200, ..Default::default() };
        let out = send_with_retransmit(&mut t, 20_000, SimTime::ZERO, Some(&cfg));
        assert_eq!(out.attempts, 201);
        assert!(out.delivered_at.is_none());

        // Hostile configs degrade to the hourly cap, never to a panic.
        let hostile = [
            RetransmitConfig { backoff: f64::MAX, ..Default::default() },
            RetransmitConfig { backoff: f64::INFINITY, ..Default::default() },
            RetransmitConfig { backoff: f64::NAN, ..Default::default() },
            RetransmitConfig { backoff: -3.0, ..Default::default() },
            RetransmitConfig { rto: Duration::from_secs(u32::MAX as u64), ..Default::default() },
        ];
        for cfg in &hostile {
            for attempt in [0, 1, 31, 64, 65, u32::MAX] {
                let d = backoff_delay(cfg, attempt);
                assert!(d <= Duration::from_secs(3600), "{cfg:?} attempt {attempt} -> {d:?}");
            }
        }
        // NaN and sub-1 multipliers behave as backoff = 1 (flat RTO).
        let flat = RetransmitConfig { backoff: f64::NAN, ..Default::default() };
        assert_eq!(backoff_delay(&flat, 7), flat.rto);
        let shrink = RetransmitConfig { backoff: 0.5, ..Default::default() };
        assert_eq!(backoff_delay(&shrink, 3), shrink.rto);

        // The sane default schedule is untouched by the clamps.
        let dflt = RetransmitConfig::default();
        assert_eq!(backoff_delay(&dflt, 0), Duration::from_millis(50));
        assert_eq!(backoff_delay(&dflt, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(&dflt, 2), Duration::from_millis(200));
        // Monotone non-decreasing across the whole attempt range.
        let mut prev = Duration::ZERO;
        for attempt in 0..300 {
            let d = backoff_delay(&dflt, attempt);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = || {
            let mut link = quiet_link(10e6, 3);
            link.set_fault(FaultClock::new(Some(LossModel::burst5()), Vec::new(), 9));
            let mut t = FrameTransport::new(link, LossPolicy::DropFrame);
            (0..20)
                .map(|i| {
                    let at = SimTime::from_millis(i * 33);
                    send_with_retransmit(&mut t, 20_000, at, Some(&Default::default()))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
